"""A small SQL parser for the paper's query style.

Parses queries shaped like the paper's Q1/Q2::

    SELECT FLIGHTS.STATUS, WEATHER.FORECAST
    FROM FLIGHTS, WEATHER, CHECK-INS
    WHERE FLIGHTS.DEPARTING = 'ATLANTA'
      AND FLIGHTS.DESTN = WEATHER.CITY
      AND FLIGHTS.NUM = CHECK-INS.FLNUM
      AND FLIGHTS.DP-TIME - CURRENT_TIME < 12:00

into a :class:`repro.query.Query`.  Conditions comparing two stream
attributes become join predicates; everything else becomes a filter on
the stream it references.  Selectivities are not part of SQL text, so
the caller provides them via ``join_selectivities`` /
``filter_selectivities`` maps (with defaults for anything unlisted).

A trailing ``WINDOW <seconds>`` clause sets the query's sliding join
window (e.g. ``... WHERE A.k = B.k WINDOW 2.0``); without it the
canonical window applies (or the ``window`` argument).

This is intentionally a subset of SQL: one SELECT, comma FROM list,
AND-separated WHERE conjuncts, no aggregation/union (the paper leaves
those to future work too).
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.query.query import JoinPredicate, Query
from repro.query.stream import Filter

DEFAULT_JOIN_SELECTIVITY = 0.01
DEFAULT_FILTER_SELECTIVITY = 0.5

# Identifiers may contain '-' (the paper uses CHECK-INS, DP-TIME).
_IDENT = r"[A-Za-z_][A-Za-z0-9_\-]*"
_QUALIFIED = rf"({_IDENT})\.({_IDENT})"


class SqlError(ValueError):
    """Raised for malformed or unsupported query text."""


def _strip(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


def _split_top_level(text: str, sep: str) -> list[str]:
    """Split on a bare keyword/limit separator outside quotes."""
    parts: list[str] = []
    depth_quote = False
    cur: list[str] = []
    tokens = re.split(rf"(\s{sep}\s|')", f" {text} ", flags=re.IGNORECASE)
    for tok in tokens:
        if tok == "'":
            depth_quote = not depth_quote
            cur.append(tok)
        elif not depth_quote and tok.strip().upper() == sep.upper():
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(tok)
    parts.append("".join(cur).strip())
    return [p for p in parts if p]


def parse_query(
    sql: str,
    name: str,
    sink: int,
    join_selectivities: Mapping[frozenset[str], float] | None = None,
    filter_selectivities: Mapping[str, float] | None = None,
    window: float | None = None,
) -> Query:
    """Parse SQL text into a :class:`Query`.

    Args:
        sql: The query text (``SELECT ... FROM ... [WHERE ...]``).
        name: Name to give the query.
        sink: Physical node the results stream to.
        join_selectivities: Optional map ``frozenset({a, b}) ->
            selectivity`` for join predicates between streams ``a`` and
            ``b``; defaults to :data:`DEFAULT_JOIN_SELECTIVITY`.
        filter_selectivities: Optional map from the *normalized filter
            text* (see :func:`normalize_condition`) to its selectivity;
            defaults to :data:`DEFAULT_FILTER_SELECTIVITY`.
        window: Optional sliding-window length for the query's joins.

    Raises:
        SqlError: On malformed text, unknown streams in conditions, or
            unsupported constructs.
    """
    text = _strip(sql)
    window_match = re.search(r"(?i)\s+WINDOW\s+([0-9]*\.?[0-9]+)\s*$", text)
    if window_match:
        if window is not None:
            raise SqlError("window given both in SQL and as an argument")
        window = float(window_match.group(1))
        if window <= 0:
            raise SqlError("WINDOW must be positive")
        text = text[: window_match.start()].strip()
    match = re.match(
        r"(?is)^SELECT\s+(?P<select>.*?)\s+FROM\s+(?P<from>.*?)(?:\s+WHERE\s+(?P<where>.*))?$",
        text,
    )
    if not match:
        raise SqlError("expected 'SELECT ... FROM ... [WHERE ...]'")
    select_part = match.group("select").strip()
    from_part = match.group("from").strip()
    where_part = (match.group("where") or "").strip()

    projection = tuple(col.strip() for col in select_part.split(",") if col.strip())
    if not projection:
        raise SqlError("empty SELECT list")

    sources = tuple(s.strip() for s in from_part.split(",") if s.strip())
    if not sources:
        raise SqlError("empty FROM list")
    for src in sources:
        if not re.fullmatch(_IDENT, src):
            raise SqlError(f"invalid stream name {src!r} in FROM")
    source_set = set(sources)

    join_sel = dict(join_selectivities or {})
    filt_sel = dict(filter_selectivities or {})

    predicates: list[JoinPredicate] = []
    filters: list[Filter] = []
    if where_part:
        for conjunct in _split_top_level(where_part, "AND"):
            _parse_condition(
                conjunct, source_set, predicates, filters, join_sel, filt_sel
            )

    kwargs = {} if window is None else {"window": window}
    return Query(
        name=name,
        sources=sources,
        sink=sink,
        predicates=predicates,
        filters=filters,
        projection=projection,
        **kwargs,
    )


def normalize_condition(text: str) -> str:
    """Canonical single-spaced uppercase-keyword form of a condition."""
    return _strip(text)


def _parse_condition(
    text: str,
    sources: set[str],
    predicates: list[JoinPredicate],
    filters: list[Filter],
    join_sel: Mapping[frozenset[str], float],
    filt_sel: Mapping[str, float],
) -> None:
    cond = normalize_condition(text)
    if not cond:
        raise SqlError("empty condition in WHERE")

    # Equi-join: STREAM.ATTR = STREAM.ATTR (both streams in FROM).
    join_match = re.fullmatch(rf"{_QUALIFIED}\s*=\s*{_QUALIFIED}", cond)
    if join_match:
        ls, la, rs, ra = join_match.groups()
        if ls in sources and rs in sources:
            if ls == rs:
                raise SqlError(f"self-join condition not supported: {cond!r}")
            sel = join_sel.get(frozenset((ls, rs)), DEFAULT_JOIN_SELECTIVITY)
            predicates.append(
                JoinPredicate(left=ls, right=rs, selectivity=sel, left_attr=la, right_attr=ra)
            )
            return
        unknown = {ls, rs} - sources
        raise SqlError(f"condition {cond!r} references unknown stream(s) {sorted(unknown)}")

    # Otherwise: a filter. It must reference exactly one stream from FROM.
    referenced = {s for s, _ in re.findall(_QUALIFIED, cond) if s in sources}
    mentioned = {s for s, _ in re.findall(_QUALIFIED, cond)}
    unknown = mentioned - sources
    # Qualified names like CURRENT.TIME don't occur; bare keywords
    # (CURRENT_TIME, literals) are fine. Unknown qualified streams are not.
    if unknown:
        raise SqlError(f"condition {cond!r} references unknown stream(s) {sorted(unknown)}")
    if len(referenced) == 0:
        raise SqlError(f"condition {cond!r} references no stream from FROM")
    if len(referenced) > 1:
        raise SqlError(
            f"non-equi-join multi-stream condition not supported: {cond!r}"
        )
    stream = referenced.pop()
    sel = filt_sel.get(cond, DEFAULT_FILTER_SELECTIVITY)
    filters.append(Filter(stream=stream, predicate=cond, selectivity=sel))
