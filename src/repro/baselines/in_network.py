"""Zone-based network-aware placement (Ahmad & Cetintemel, VLDB 2004 spirit).

Another phased baseline: the static plan is fixed first; placement then
works over a flat partitioning of the network into ``zones`` (the
paper's comparison divides the network into 5 zones to correspond with
its ``max_cs = 32`` hierarchy on 128 nodes).  Placement is greedy and
two-phase per operator, bottom-up over the tree:

1. *zone selection* -- pick the zone whose representative minimizes the
   operator's estimated flow cost (children at their known positions,
   output pulled toward the sink);
2. *node refinement* -- pick the concrete node within the chosen zone by
   the same criterion.

Unlike the hierarchical algorithms, there is no recursion, no
query-splitting across partitions and no reuse-aware *planning* (reuse
enters only through the static plan phase), which is what the paper's
Figure 8 comparison isolates.
"""

from __future__ import annotations

from repro.baselines.plan_then_deploy import (
    best_static_tree,
    deploy_time_reuse_variants,
    reusable_views,
)
from repro.core.cost import RateModel
from repro.hierarchy.clustering import choose_medoid, kmeans
from repro.network.graph import Network
from repro.query.deployment import Deployment, DeploymentState
from repro.query.plan import Leaf, PlanNode
from repro.query.query import Query
from repro.utils import SeedLike, as_generator


class InNetworkPlanner:
    """Static plan + greedy zoned placement.

    Args:
        network: The physical network.
        rates: Rate model over the stream catalog.
        reuse: Let advertised views participate in the plan phase.
        zones: Number of network zones (paper comparison: 5).
        seed: RNG seed for the zone clustering.
    """

    name = "in-network"

    def __init__(
        self,
        network: Network,
        rates: RateModel,
        reuse: bool = True,
        zones: int = 5,
        seed: SeedLike = 0,
    ) -> None:
        if zones < 1:
            raise ValueError("need at least one zone")
        self.network = network
        self.rates = rates
        self.reuse = reuse
        self.zones = min(zones, network.num_nodes)
        costs = network.cost_matrix()
        from repro.network.embedding import classical_mds

        coords = classical_mds(costs, dim=min(3, max(1, network.num_nodes - 1)))
        groups = kmeans(coords, self.zones, seed=as_generator(seed))
        self.zone_members: list[list[int]] = groups
        self.zone_reps: list[int] = [choose_medoid(g, costs) for g in groups]

    def plan(self, query: Query, state: DeploymentState | None = None) -> Deployment:
        """Fix the static tree, then place greedily through zones.

        Reuse is deploy-time only: collapsed-subtree variants of the
        fixed order compete on realized cost.
        """
        from repro.core.cost import deployment_cost

        costs = self.network.cost_matrix()
        reusable = reusable_views(query, state) if self.reuse else {}
        static_tree, trees_examined = best_static_tree(query, self.rates)
        stats = {
            "algorithm": self.name,
            "trees_examined": trees_examined,
            "zones": len(self.zone_members),
            "plans_examined": trees_examined,
        }
        best: tuple[float, PlanNode, dict] | None = None
        for tree in deploy_time_reuse_variants(static_tree, reusable):
            placement, examined = self._place(query, tree, reusable, costs)
            stats["plans_examined"] += examined
            candidate = Deployment(query=query, plan=tree, placement=placement, stats=stats)
            cost = deployment_cost(candidate, costs, self.rates)
            if best is None or cost < best[0] - 1e-12:
                best = (cost, tree, placement)
        assert best is not None
        _, tree, placement = best
        return Deployment(query=query, plan=tree, placement=placement, stats=stats)

    # ------------------------------------------------------------------
    def _place(
        self, query: Query, tree: PlanNode, reusable: dict, costs
    ) -> tuple[dict, int]:
        placement: dict = {}
        for leaf in tree.leaves():
            if leaf.is_base_stream:
                placement[leaf] = self.rates.source(leaf.stream)
            else:
                nodes = reusable.get(leaf.view)
                if not nodes:
                    raise ValueError(f"no advertisement for reused view {leaf.label}")
                placement[leaf] = min(nodes, key=lambda n: costs[n, query.sink])
        if isinstance(tree, Leaf):
            return placement, 0

        flow = self.rates.flow_rates(query, tree)
        examined = 0
        for join in tree.joins():  # post-order: children placed first
            child_pos = [placement[c] for c in (join.left, join.right)]
            child_rates = [flow[c] for c in (join.left, join.right)]
            out_rate = flow[join]

            def score(node: int) -> float:
                cost = sum(
                    r * costs[p, node] for r, p in zip(child_rates, child_pos)
                )
                return cost + out_rate * costs[node, query.sink]

            best_zone = min(range(len(self.zone_reps)), key=lambda z: score(self.zone_reps[z]))
            examined += len(self.zone_reps)
            members = self.zone_members[best_zone]
            placement[join] = min(members, key=score)
            examined += len(members)
        return placement, examined
