"""Static plan + uniformly random placement (sanity floor).

Used by the Bottom-Up analysis: the paper argues Bottom-Up "can offer
better bounds than a random placement of the same query tree"; this
planner realizes that comparison point.
"""

from __future__ import annotations

from repro.baselines.plan_then_deploy import best_static_tree
from repro.core.cost import RateModel
from repro.network.graph import Network
from repro.query.deployment import Deployment, DeploymentState
from repro.query.query import Query
from repro.utils import SeedLike, as_generator


class RandomPlacement:
    """Volume-optimal static plan, operators on uniformly random nodes.

    Args:
        network: The physical network.
        rates: Rate model over the stream catalog.
        seed: RNG seed; each :meth:`plan` call draws fresh placements.
    """

    name = "random"

    def __init__(self, network: Network, rates: RateModel, seed: SeedLike = None) -> None:
        self.network = network
        self.rates = rates
        self._rng = as_generator(seed)

    def plan(self, query: Query, state: DeploymentState | None = None) -> Deployment:
        """Fix the static tree, scatter its operators randomly."""
        del state  # the random baseline never reuses
        tree, trees_examined = best_static_tree(query, self.rates)
        nodes = self.network.nodes()
        placement: dict = {}
        for leaf in tree.leaves():
            placement[leaf] = self.rates.source(leaf.stream)
        for join in tree.joins():
            placement[join] = int(self._rng.choice(nodes))
        return Deployment(
            query=query,
            plan=tree,
            placement=placement,
            stats={
                "algorithm": self.name,
                "trees_examined": trees_examined,
                "plans_examined": trees_examined,
            },
        )
