"""Static planning + optimal deployment (the strongest phased baseline).

The *plan phase* is a classical selectivity-driven optimizer: it picks
the join tree minimizing total intermediate volume (the sum of data
rates flowing along plan edges), completely ignoring the network.  When
reuse is enabled, advertised derived views participate as leaf
alternatives during planning -- this matches the paper's Figure 2 setup
where "plan, then deploy" approaches had operator reuse enabled.

The *deploy phase* then places the fixed tree optimally on the whole
network (tree-placement DP = exhaustive assignment search).  Any gap
between this baseline and the joint optimizers is therefore purely the
cost of fixing the join order before looking at the network.
"""

from __future__ import annotations

from repro.core.cost import RateModel
from repro.core.enumeration import connected_join_trees, trees_with_reuse
from repro.core.placement import nominal_assignments, optimal_tree_placement
from repro.network.graph import Network
from repro.query.deployment import Deployment, DeploymentState
from repro.query.plan import Join, Leaf, PlanNode
from repro.query.query import Query


def reusable_views(query: Query, state: DeploymentState | None) -> dict[frozenset[str], list[int]]:
    """Advertised views usable by ``query``: sources -> ad nodes.

    A view qualifies when its signature matches the query's restriction
    to the same sources (same predicates and filters).
    """
    if state is None:
        return {}
    out: dict[frozenset[str], list[int]] = {}
    for sig, nodes in state.advertised_views().items():
        if len(sig.sources) > 1 and sig.sources <= frozenset(query.sources):
            if sig == query.view_signature(sig.sources):
                out[sig.sources] = sorted(nodes)
    return out


def best_static_tree(
    query: Query,
    rates: RateModel,
    reusable: dict[frozenset[str], list[int]] | None = None,
) -> tuple[PlanNode, int]:
    """The minimum-intermediate-volume tree for ``query``.

    Returns ``(tree, trees_examined)``.  By default the plan phase is
    network- and deployment-oblivious (classical selectivity-only
    optimization); passing ``reusable`` lets advertised views enter the
    enumeration, which only the ablation benches exercise -- the paper's
    phased baselines discover reuse *after* fixing the order (see
    :func:`deploy_time_reuse_variants`).
    """
    reusable = reusable or {}
    if len(query.sources) == 1:
        return Leaf(frozenset(query.sources)), 1
    if reusable:
        trees = trees_with_reuse(query, list(reusable))
    else:
        trees = connected_join_trees(query)
    best: tuple[float, PlanNode] | None = None
    for tree in trees:
        flow = rates.flow_rates(query, tree)
        volume = sum(flow[c] for j in tree.joins() for c in (j.left, j.right))
        volume += flow[tree]
        if best is None or volume < best[0] - 1e-12:
            best = (volume, tree)
    assert best is not None
    return best[1], len(trees)


def deploy_time_reuse_variants(
    tree: PlanNode,
    reusable: dict[frozenset[str], list[int]],
    cap: int = 64,
) -> list[PlanNode]:
    """The fixed tree plus variants collapsing matching subtrees to reuse.

    A phased approach can still reuse a deployed operator when the
    *already chosen* join order happens to contain a subtree whose
    signature matches an advertisement -- "the pre-defined join order
    may prevent us from reusing" otherwise.  Returns every combination
    of such collapses (the original tree first), capped defensively.
    """

    def variants(node: PlanNode) -> list[PlanNode]:
        if isinstance(node, Leaf):
            return [node]
        assert isinstance(node, Join)
        combos: list[PlanNode] = []
        for left in variants(node.left):
            for right in variants(node.right):
                if len(combos) >= cap:
                    break
                combos.append(Join(left, right))
        if node.sources in reusable:
            combos.append(Leaf(node.sources))
        return combos[: cap + 1]

    out = variants(tree)
    # Keep the uncollapsed tree first for deterministic tie-breaks.
    out.sort(key=lambda t: 0 if t == tree else 1)
    return out[:cap]


def leaf_position_map(
    tree: PlanNode,
    rates: RateModel,
    reusable: dict[frozenset[str], list[int]],
) -> dict[Leaf, list[int]]:
    """Placement candidates per leaf: source node, or advertisement nodes."""
    positions: dict[Leaf, list[int]] = {}
    for leaf in tree.leaves():
        if leaf.is_base_stream:
            positions[leaf] = [rates.source(leaf.stream)]
        else:
            nodes = reusable.get(leaf.view)
            if not nodes:
                raise ValueError(f"no advertisement for reused view {leaf.label}")
            positions[leaf] = list(nodes)
    return positions


class PlanThenDeploy:
    """Selectivity-static plan + optimal network placement.

    Args:
        network: The physical network.
        rates: Rate model over the stream catalog.
        reuse: Let advertised views participate in the plan phase.
        candidates_fn: Optional callable returning the placement-
            candidate node ids.  Defaults to every network node; the
            resilience layer passes the live hierarchy members so a
            degraded plan never lands operators on a crashed or
            quarantined node.
    """

    name = "plan-then-deploy"

    def __init__(
        self,
        network: Network,
        rates: RateModel,
        reuse: bool = True,
        candidates_fn=None,
    ) -> None:
        self.network = network
        self.rates = rates
        self.reuse = reuse
        self.candidates_fn = candidates_fn

    def _candidates(self) -> list[int]:
        if self.candidates_fn is None:
            return self.network.nodes()
        return list(self.candidates_fn())

    def plan(self, query: Query, state: DeploymentState | None = None) -> Deployment:
        """Fix the volume-optimal tree obliviously, then place it optimally.

        Reuse enters only at deploy time: if the fixed order contains a
        subtree matching an advertised view, collapsing it is evaluated
        as a placement alternative.
        """
        costs = self.network.cost_matrix()
        reusable = reusable_views(query, state) if self.reuse else {}
        static_tree, trees_examined = best_static_tree(query, self.rates)
        stats = {
            "algorithm": self.name,
            "trees_examined": trees_examined,
            "plans_examined": trees_examined
            + nominal_assignments(static_tree, self.network.num_nodes),
        }
        if isinstance(static_tree, Leaf) and static_tree.is_base_stream:
            return Deployment(
                query=query,
                plan=static_tree,
                placement={static_tree: self.rates.source(static_tree.stream)},
                stats=stats,
            )
        best: tuple[float, PlanNode, dict] | None = None
        for tree in deploy_time_reuse_variants(static_tree, reusable):
            positions = leaf_position_map(tree, self.rates, reusable)
            result = optimal_tree_placement(
                tree,
                self._candidates(),
                costs,
                positions,
                self.rates.flow_rates(query, tree),
                sink=query.sink,
            )
            if best is None or result.cost < best[0] - 1e-12:
                best = (result.cost, tree, result.placement)
        assert best is not None
        cost, tree, placement = best
        stats["cost_estimate"] = cost
        return Deployment(query=query, plan=tree, placement=placement, stats=stats)
