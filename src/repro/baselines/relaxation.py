"""The Relaxation placement algorithm (Pietzuch et al., ICDE 2006).

A phased baseline: the join order is fixed by the static plan phase,
then operators are placed by *spring relaxation* in a low-dimensional
cost space.  Every plan edge behaves like a spring whose stiffness is
the data rate flowing along it; pinned endpoints (sources, reused views,
the sink) hold their coordinates, and each operator iteratively moves to
the rate-weighted centroid of its neighbours.  After ``iterations``
rounds (the paper's experiments use 40), each operator maps to the
nearest physical node in the cost space.

The paper's comparison uses a 3-dimensional cost space; we build it by
classical MDS over the traversal-cost matrix
(:func:`repro.network.embedding.embed_network`).  Reuse is deploy-time
only: if the fixed order contains a subtree matching an advertised
view, the collapsed variant competes on realized cost.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.plan_then_deploy import (
    best_static_tree,
    deploy_time_reuse_variants,
    reusable_views,
)
from repro.core.cost import RateModel, deployment_cost
from repro.network.embedding import embed_network
from repro.network.graph import Network
from repro.query.deployment import Deployment, DeploymentState
from repro.query.plan import Join, Leaf, PlanNode
from repro.query.query import Query


class RelaxationPlanner:
    """Static plan + spring-relaxation placement in a cost space.

    Args:
        network: The physical network.
        rates: Rate model over the stream catalog.
        reuse: Consider deploy-time reuse of matching subtrees.
        dimensions: Cost-space dimensionality (paper: 3).
        iterations: Relaxation rounds (paper: 40).
    """

    name = "relaxation"

    def __init__(
        self,
        network: Network,
        rates: RateModel,
        reuse: bool = True,
        dimensions: int = 3,
        iterations: int = 40,
    ) -> None:
        if iterations < 1:
            raise ValueError("need at least one relaxation iteration")
        self.network = network
        self.rates = rates
        self.reuse = reuse
        self.dimensions = dimensions
        self.iterations = iterations
        self._coords: tuple[int, np.ndarray] | None = None

    def _cost_space(self) -> np.ndarray:
        if self._coords is None or self._coords[0] != self.network.version:
            coords = embed_network(self.network, dim=self.dimensions, metric="cost")
            self._coords = (self.network.version, coords)
        return self._coords[1]

    def plan(self, query: Query, state: DeploymentState | None = None) -> Deployment:
        """Fix the static tree, relax operator positions, snap to nodes."""
        reusable = reusable_views(query, state) if self.reuse else {}
        static_tree, trees_examined = best_static_tree(query, self.rates)
        stats = {
            "algorithm": self.name,
            "trees_examined": trees_examined,
            "iterations": self.iterations,
            "plans_examined": trees_examined
            + self.iterations * max(1, static_tree.num_joins),
        }
        costs = self.network.cost_matrix()
        best: tuple[float, PlanNode, dict] | None = None
        for tree in deploy_time_reuse_variants(static_tree, reusable):
            placement = self._place(query, tree, reusable)
            candidate = Deployment(query=query, plan=tree, placement=placement, stats=stats)
            cost = deployment_cost(candidate, costs, self.rates)
            if best is None or cost < best[0] - 1e-12:
                best = (cost, tree, placement)
        assert best is not None
        _, tree, placement = best
        return Deployment(query=query, plan=tree, placement=placement, stats=stats)

    # ------------------------------------------------------------------
    def _place(self, query: Query, tree: PlanNode, reusable: dict) -> dict:
        """Relaxation placement of one tree; returns the full placement."""
        leaf_nodes: dict[Leaf, int] = {
            leaf: self._pin_leaf(query, leaf, reusable) for leaf in tree.leaves()
        }
        if isinstance(tree, Leaf):
            return dict(leaf_nodes)

        coords = self._cost_space()
        flow = self.rates.flow_rates(query, tree)
        joins = tree.joins()
        positions: dict[Join, np.ndarray] = {}
        for join in joins:  # post-order: children already positioned
            child_coords = [
                coords[leaf_nodes[c]] if isinstance(c, Leaf) else positions[c]
                for c in (join.left, join.right)
            ]
            positions[join] = np.mean(child_coords, axis=0)

        parent_of: dict[Join, Join] = {}
        for join in joins:
            for child in (join.left, join.right):
                if isinstance(child, Join):
                    parent_of[child] = join

        for _ in range(self.iterations):
            for join in joins:
                num = np.zeros(coords.shape[1])
                den = 0.0
                for child in (join.left, join.right):
                    w = flow[child]
                    pos = (
                        coords[leaf_nodes[child]]
                        if isinstance(child, Leaf)
                        else positions[child]
                    )
                    num += w * pos
                    den += w
                w_out = flow[join]
                out_pos = (
                    coords[query.sink] if join is tree else positions[parent_of[join]]
                )
                num += w_out * out_pos
                den += w_out
                if den > 0:
                    positions[join] = num / den

        placement: dict = dict(leaf_nodes)
        for join in joins:
            deltas = coords - positions[join][None, :]
            placement[join] = int((deltas**2).sum(axis=1).argmin())
        return placement

    def _pin_leaf(self, query: Query, leaf: Leaf, reusable: dict) -> int:
        if leaf.is_base_stream:
            return self.rates.source(leaf.stream)
        nodes = reusable.get(leaf.view)
        if not nodes:
            raise ValueError(f"no advertisement for reused view {leaf.label}")
        costs = self.network.cost_matrix()
        return min(nodes, key=lambda n: costs[n, query.sink])
