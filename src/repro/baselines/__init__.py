"""Baseline optimizers the paper compares against.

All of these are *phased* "plan, then deploy" approaches (paper Figure
1a): the join order is chosen first from selectivities alone, and the
network enters only in the subsequent placement step.

* :mod:`repro.baselines.plan_then_deploy` -- static plan + *optimal*
  placement (the strongest possible phased approach; Figure 2's
  "Plan, then deploy" curve) and the shared plan-phase logic.
* :mod:`repro.baselines.relaxation` -- the Relaxation algorithm
  (Pietzuch et al., ICDE'06): spring relaxation in a 3-D cost space.
* :mod:`repro.baselines.in_network` -- network-aware zone-based
  placement in the spirit of Ahmad & Cetintemel (VLDB'04).
* :mod:`repro.baselines.random_placement` -- static plan + uniformly
  random placement (a sanity floor).
"""

from repro.baselines.plan_then_deploy import PlanThenDeploy, best_static_tree
from repro.baselines.relaxation import RelaxationPlanner
from repro.baselines.in_network import InNetworkPlanner
from repro.baselines.random_placement import RandomPlacement

__all__ = [
    "PlanThenDeploy",
    "best_static_tree",
    "RelaxationPlanner",
    "InNetworkPlanner",
    "RandomPlacement",
]
