"""Typed exception hierarchy for the whole package.

Every error the package raises deliberately derives from
:class:`ReproError`, so callers embedding the optimizer or the lifecycle
service can catch one base class at their boundary instead of fishing
for bare ``ValueError``/``KeyError``.  Classes double-inherit from the
builtin they historically were (``AdmissionError`` is still a
``ValueError``, ``UnknownQueryError`` still a ``KeyError``), so existing
``except ValueError`` call sites and tests keep working unchanged.

The resilience layer (:mod:`repro.resilience`) extends the planning
branch with transient-failure classes (:class:`CoordinatorUnreachable`,
:class:`CircuitOpenError`, :class:`CoordinatorTimeout`) that its retry
and circuit-breaker machinery treats as retryable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error raised by this package."""


class PlanningError(ReproError):
    """Query planning failed (optimizer error, or every rung of the
    degradation ladder exhausted)."""


class InfeasiblePlacementError(PlanningError):
    """No operator placement satisfies the active resource constraint.

    Raised by the constrained planners (see :mod:`repro.resources`) when
    every candidate tree violates a node's utilization bound.  Derives
    from :class:`PlanningError` so the resilience layer's parking path
    treats an infeasible query like any other un-plannable one."""


class CoordinatorUnreachable(PlanningError):
    """A planning coordinator could not be contacted (crash, outage
    window, or network partition).  Retryable."""


class CoordinatorTimeout(PlanningError):
    """A planning coordinator answered too slowly for the per-attempt
    timeout (e.g. an injected slow-down).  Retryable."""


class CircuitOpenError(PlanningError):
    """A circuit breaker refused the call without attempting it."""


class DeploymentError(ReproError, ValueError):
    """A deployment is invalid or cannot be applied to the live state."""


class AdmissionError(ReproError, ValueError):
    """Admission control was misconfigured or misused."""


class HierarchyError(ReproError, ValueError):
    """A hierarchy operation violates its structural rules."""


class NodeNotFoundError(HierarchyError, KeyError):
    """A referenced node is not part of the hierarchy/network."""

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return Exception.__str__(self)


class UnknownQueryError(ReproError, KeyError):
    """A referenced query is not known to the component."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class FaultInjectionError(ReproError, ValueError):
    """A fault plan is malformed or cannot be applied."""
