"""Query lifecycle service: plan caching, admission control, epochs.

The control plane that turns the one-shot optimizer library into a
long-running server.  See :mod:`repro.service.service` for the full
story.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStatus,
)
from repro.service.cache import CachedPlan, PlanCache
from repro.service.fingerprint import canonical_form, query_fingerprint
from repro.service.service import (
    ReplayReport,
    ServiceFailureReport,
    StreamQueryService,
    SubmitEvent,
    TickReport,
    churn_trace,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStatus",
    "CachedPlan",
    "PlanCache",
    "ReplayReport",
    "ServiceFailureReport",
    "StreamQueryService",
    "SubmitEvent",
    "TickReport",
    "canonical_form",
    "churn_trace",
    "query_fingerprint",
]
