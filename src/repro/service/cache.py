"""Memoized plan cache with epoch-based invalidation.

Entries are keyed on ``(fingerprint, statistics_epoch, topology_epoch)``:
a cached plan is only ever served while *both* epochs still match, so
bumping an epoch implicitly invalidates every older entry.  The cache
stores the plan tree and placement (not the full
:class:`~repro.query.deployment.Deployment`) so a hit can be re-bound to
a submission with a different query name; plan trees compare
structurally, making the stored placement dict reusable as-is.

Eviction is LRU under a capacity bound plus explicit sweeps of
stale-epoch entries (they can never hit again, only waste memory).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.perf import profiler as _perf
from repro.query.plan import PlanNode

CacheKey = tuple  # (fingerprint, statistics_epoch, topology_epoch)


@dataclass(frozen=True)
class CachedPlan:
    """One memoized optimizer result.

    Attributes:
        plan: The chosen join tree.
        placement: Node assignment for every subtree root.
        planning_latency: Wall-clock seconds the original optimization
            took (what the hit saved).
        stats: The optimizer's free-form stats from the original run.
    """

    plan: PlanNode
    placement: dict[PlanNode, int]
    planning_latency: float = 0.0
    stats: dict = field(default_factory=dict)


class PlanCache:
    """LRU plan cache keyed on (fingerprint, stats epoch, topology epoch).

    Args:
        capacity: Maximum entries kept (LRU-evicted beyond it); ``None``
            means unbounded.
    """

    def __init__(self, capacity: int | None = 256) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, CachedPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def key(self, fingerprint: str, statistics_epoch: int, topology_epoch: int) -> CacheKey:
        """Build the composite cache key."""
        return (fingerprint, statistics_epoch, topology_epoch)

    def get(self, key: CacheKey) -> CachedPlan | None:
        """Look up a plan; counts a hit or miss and refreshes LRU order."""
        prof = _perf.active()
        if prof is not None:
            prof.count("cache_probes")
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, entry: CachedPlan) -> None:
        """Insert (or refresh) a plan, evicting LRU entries over capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def demote(self, key: CacheKey) -> None:
        """Drop one entry (e.g. it failed revalidation against live state).

        The earlier :meth:`get` already counted a hit; the caller should
        treat the lookup as a miss, so the hit is re-booked accordingly.
        """
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1
        self.hits -= 1
        self.misses += 1

    def evict_stale(self, statistics_epoch: int, topology_epoch: int) -> int:
        """Remove every entry not at the current epochs; return the count."""
        stale = [
            key
            for key in self._entries
            if key[1] != statistics_epoch or key[2] != topology_epoch
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def evict_referencing(self, view: frozenset[str], node: int) -> int:
        """Remove entries whose plan reuses ``view`` at ``node``.

        Targeted invalidation for federated reuse: when a remote view a
        cached plan depends on is withdrawn, only the plans that actually
        reference it die -- resubmissions of unrelated queries keep their
        hits.  Returns the eviction count.
        """
        stale = [
            key
            for key, entry in self._entries.items()
            if any(
                not leaf.is_base_stream
                and leaf.view == view
                and entry.placement.get(leaf) == node
                for leaf in entry.plan.leaves()
            )
        ]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Hits / lookups so far (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries
