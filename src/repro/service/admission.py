"""Admission control for the query lifecycle service.

The controller enforces a *concurrent-deployment budget*: at most
``budget`` queries run at once.  Submissions beyond the budget are not
failed -- they join a FIFO submission queue and deploy as capacity frees
up (backpressure), with an optional queue bound past which submissions
are gracefully rejected with a typed :class:`AdmissionDecision`.  A
per-tick admission limit additionally smooths deployment bursts so a
mass retirement does not trigger a planning stampede in one tick.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import AdmissionError
from repro.query.query import Query

if TYPE_CHECKING:  # import cycle: obs.metrics is registry-side plumbing
    from repro.obs.metrics import MetricRegistry

#: Queue-wait histogram buckets, in service ticks (not wall seconds --
#: waits are virtual time between enqueue and drain).
QUEUE_WAIT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0,
)


class AdmissionStatus(enum.Enum):
    """Outcome class of one submission."""

    ADMITTED = "admitted"
    QUEUED = "queued"
    REJECTED = "rejected"


@dataclass(frozen=True)
class AdmissionDecision:
    """Typed outcome of submitting a query to the service.

    Attributes:
        query: Name of the submitted query.
        status: Admitted now, queued for a later tick, or rejected.
        reason: Human-readable explanation (rejections and queueing).
        queue_position: 1-based position in the submission queue when
            ``status`` is QUEUED.
    """

    query: str
    status: AdmissionStatus
    reason: str = ""
    queue_position: int | None = None

    @property
    def admitted(self) -> bool:
        """Whether the query was deployed immediately."""
        return self.status is AdmissionStatus.ADMITTED

    @property
    def rejected(self) -> bool:
        """Whether the submission was refused outright."""
        return self.status is AdmissionStatus.REJECTED


class AdmissionController:
    """Budgeted admission with a bounded FIFO submission queue.

    Args:
        budget: Maximum concurrently deployed queries (>= 1).
        max_queue: Submission-queue bound; ``None`` means unbounded
            backpressure, ``0`` disables queueing (reject at budget).
        max_per_tick: Cap on queue admissions per tick; ``None`` drains
            as much as capacity allows.
    """

    def __init__(
        self,
        budget: int = 16,
        max_queue: int | None = None,
        max_per_tick: int | None = None,
    ) -> None:
        if budget < 1:
            raise AdmissionError("budget must be >= 1")
        if max_queue is not None and max_queue < 0:
            raise AdmissionError("max_queue must be >= 0")
        if max_per_tick is not None and max_per_tick < 1:
            raise AdmissionError("max_per_tick must be >= 1")
        self.budget = budget
        self.max_queue = max_queue
        self.max_per_tick = max_per_tick
        self._queue: deque[Query] = deque()
        self._enqueued_at: dict[str, float] = {}
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0
        self._depth_gauge = None
        self._wait_hist = None

    # ------------------------------------------------------------------
    def bind_instruments(
        self,
        registry: "MetricRegistry",
        buckets: Sequence[float] | None = None,
    ) -> None:
        """Expose queue depth and queue-wait time as typed instruments.

        Declares an ``admission_queue_depth`` gauge and an
        ``admission_queue_wait_ticks`` histogram on ``registry`` and
        keeps both current from inside the controller -- so per-shard
        backpressure shows up in metric exports without callers polling
        the :attr:`queue_depth` property.  Wait time is virtual: the
        tick a query was enqueued (:meth:`request`'s ``time``) to the
        tick it drained.  Idempotent; the lifecycle service calls this
        with its registry at construction.
        """
        self._depth_gauge = registry.gauge(
            "admission_queue_depth",
            "Queries waiting in the admission controller's queue.",
        )
        self._wait_hist = registry.histogram(
            "admission_queue_wait_ticks",
            "Virtual ticks a query waited in the queue before admission.",
            buckets=buckets if buckets is not None else QUEUE_WAIT_BUCKETS,
        )
        self._depth_gauge.set(float(len(self._queue)))

    def _record_depth(self, time: float) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(float(len(self._queue)), time=time)

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for capacity."""
        return len(self._queue)

    def queued_names(self) -> list[str]:
        """Names of waiting queries, front of the queue first."""
        return [q.name for q in self._queue]

    def is_queued(self, name: str) -> bool:
        """Whether a query of that name is waiting."""
        return any(q.name == name for q in self._queue)

    # ------------------------------------------------------------------
    def request(
        self, query: Query, live_count: int, time: float = 0.0
    ) -> AdmissionDecision:
        """Decide one submission given the current live-deployment count.

        Admission requires both free budget *and* an empty queue (FIFO
        fairness: nobody overtakes queued queries).  Callers deploy the
        query themselves when the decision is ADMITTED.  ``time`` is the
        service tick of the submission; queued queries remember it so
        :meth:`drain` can observe their queue-wait duration.
        """
        if live_count < self.budget and not self._queue:
            self.admitted_total += 1
            return AdmissionDecision(query=query.name, status=AdmissionStatus.ADMITTED)
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            self.rejected_total += 1
            return AdmissionDecision(
                query=query.name,
                status=AdmissionStatus.REJECTED,
                reason=(
                    f"budget {self.budget} in use and submission queue full "
                    f"({len(self._queue)}/{self.max_queue})"
                ),
            )
        self._queue.append(query)
        self._enqueued_at[query.name] = time
        self.queued_total += 1
        self._record_depth(time)
        return AdmissionDecision(
            query=query.name,
            status=AdmissionStatus.QUEUED,
            reason=f"{live_count}/{self.budget} deployments in use",
            queue_position=len(self._queue),
        )

    def reject(self, query: Query, reason: str) -> AdmissionDecision:
        """Record a validation rejection (bad query, duplicate name, ...)."""
        self.rejected_total += 1
        return AdmissionDecision(
            query=query.name, status=AdmissionStatus.REJECTED, reason=reason
        )

    def drain(self, live_count: int, time: float = 0.0) -> list[Query]:
        """Pop the queries that may deploy this tick, FIFO order.

        Bounded by free budget and ``max_per_tick``.  The controller
        counts them admitted; the caller performs the deployments.
        ``time`` is the draining tick, used to observe queue-wait
        durations when instruments are bound.
        """
        free = max(0, self.budget - live_count)
        if self.max_per_tick is not None:
            free = min(free, self.max_per_tick)
        admitted: list[Query] = []
        while free > 0 and self._queue:
            query = self._queue.popleft()
            enqueued = self._enqueued_at.pop(query.name, None)
            if self._wait_hist is not None and enqueued is not None:
                self._wait_hist.observe(max(0.0, time - enqueued), time=time)
            admitted.append(query)
            self.admitted_total += 1
            free -= 1
        if admitted:
            self._record_depth(time)
        return admitted

    def withdraw(self, name: str, time: float = 0.0) -> bool:
        """Remove a queued query by name (e.g. client cancellation)."""
        for i, query in enumerate(self._queue):
            if query.name == name:
                del self._queue[i]
                self._enqueued_at.pop(name, None)
                self._record_depth(time)
                return True
        return False
