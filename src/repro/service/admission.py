"""Admission control for the query lifecycle service.

The controller enforces a *concurrent-deployment budget*: at most
``budget`` queries run at once.  Submissions beyond the budget are not
failed -- they join a FIFO submission queue and deploy as capacity frees
up (backpressure), with an optional queue bound past which submissions
are gracefully rejected with a typed :class:`AdmissionDecision`.  A
per-tick admission limit additionally smooths deployment bursts so a
mass retirement does not trigger a planning stampede in one tick.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import AdmissionError
from repro.query.query import Query


class AdmissionStatus(enum.Enum):
    """Outcome class of one submission."""

    ADMITTED = "admitted"
    QUEUED = "queued"
    REJECTED = "rejected"


@dataclass(frozen=True)
class AdmissionDecision:
    """Typed outcome of submitting a query to the service.

    Attributes:
        query: Name of the submitted query.
        status: Admitted now, queued for a later tick, or rejected.
        reason: Human-readable explanation (rejections and queueing).
        queue_position: 1-based position in the submission queue when
            ``status`` is QUEUED.
    """

    query: str
    status: AdmissionStatus
    reason: str = ""
    queue_position: int | None = None

    @property
    def admitted(self) -> bool:
        """Whether the query was deployed immediately."""
        return self.status is AdmissionStatus.ADMITTED

    @property
    def rejected(self) -> bool:
        """Whether the submission was refused outright."""
        return self.status is AdmissionStatus.REJECTED


class AdmissionController:
    """Budgeted admission with a bounded FIFO submission queue.

    Args:
        budget: Maximum concurrently deployed queries (>= 1).
        max_queue: Submission-queue bound; ``None`` means unbounded
            backpressure, ``0`` disables queueing (reject at budget).
        max_per_tick: Cap on queue admissions per tick; ``None`` drains
            as much as capacity allows.
    """

    def __init__(
        self,
        budget: int = 16,
        max_queue: int | None = None,
        max_per_tick: int | None = None,
    ) -> None:
        if budget < 1:
            raise AdmissionError("budget must be >= 1")
        if max_queue is not None and max_queue < 0:
            raise AdmissionError("max_queue must be >= 0")
        if max_per_tick is not None and max_per_tick < 1:
            raise AdmissionError("max_per_tick must be >= 1")
        self.budget = budget
        self.max_queue = max_queue
        self.max_per_tick = max_per_tick
        self._queue: deque[Query] = deque()
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for capacity."""
        return len(self._queue)

    def queued_names(self) -> list[str]:
        """Names of waiting queries, front of the queue first."""
        return [q.name for q in self._queue]

    def is_queued(self, name: str) -> bool:
        """Whether a query of that name is waiting."""
        return any(q.name == name for q in self._queue)

    # ------------------------------------------------------------------
    def request(self, query: Query, live_count: int) -> AdmissionDecision:
        """Decide one submission given the current live-deployment count.

        Admission requires both free budget *and* an empty queue (FIFO
        fairness: nobody overtakes queued queries).  Callers deploy the
        query themselves when the decision is ADMITTED.
        """
        if live_count < self.budget and not self._queue:
            self.admitted_total += 1
            return AdmissionDecision(query=query.name, status=AdmissionStatus.ADMITTED)
        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            self.rejected_total += 1
            return AdmissionDecision(
                query=query.name,
                status=AdmissionStatus.REJECTED,
                reason=(
                    f"budget {self.budget} in use and submission queue full "
                    f"({len(self._queue)}/{self.max_queue})"
                ),
            )
        self._queue.append(query)
        self.queued_total += 1
        return AdmissionDecision(
            query=query.name,
            status=AdmissionStatus.QUEUED,
            reason=f"{live_count}/{self.budget} deployments in use",
            queue_position=len(self._queue),
        )

    def reject(self, query: Query, reason: str) -> AdmissionDecision:
        """Record a validation rejection (bad query, duplicate name, ...)."""
        self.rejected_total += 1
        return AdmissionDecision(
            query=query.name, status=AdmissionStatus.REJECTED, reason=reason
        )

    def drain(self, live_count: int) -> list[Query]:
        """Pop the queries that may deploy this tick, FIFO order.

        Bounded by free budget and ``max_per_tick``.  The controller
        counts them admitted; the caller performs the deployments.
        """
        free = max(0, self.budget - live_count)
        if self.max_per_tick is not None:
            free = min(free, self.max_per_tick)
        admitted: list[Query] = []
        while free > 0 and self._queue:
            admitted.append(self._queue.popleft())
            self.admitted_total += 1
            free -= 1
        return admitted

    def withdraw(self, name: str) -> bool:
        """Remove a queued query by name (e.g. client cancellation)."""
        for i, query in enumerate(self._queue):
            if query.name == name:
                del self._queue[i]
                return True
        return False
