"""Canonical query fingerprints.

The lifecycle service memoizes optimizer output per *logical* query, not
per query object: two submissions asking for the same joins, filters and
sink should share one plan-cache entry even if they list their sources
in a different order or carry different query names.  The fingerprint is
therefore computed from an order-insensitive canonical form of the
query's relational content (sources, predicates, filters, window, sink)
and deliberately excludes the name.
"""

from __future__ import annotations

import hashlib

from repro.query.query import Query

FINGERPRINT_BITS = 128
"""Width of the hex fingerprint (collision odds are negligible at the
service's scale; the cache key also carries both epochs)."""


def canonical_form(query: Query) -> str:
    """Deterministic, order-insensitive text rendering of a query.

    Sources, predicates and filters are sorted; predicate endpoints are
    already normalized by :class:`~repro.query.query.JoinPredicate`.
    Floats are rendered via ``repr`` so distinct selectivities never
    collapse.
    """
    preds = sorted(
        (p.left, p.right, repr(p.selectivity), p.left_attr, p.right_attr)
        for p in query.predicates
    )
    filts = sorted(
        (f.stream, f.predicate, repr(f.selectivity)) for f in query.filters
    )
    parts = [
        "sources=" + ",".join(sorted(query.sources)),
        "sink=" + str(query.sink),
        "window=" + repr(query.window),
        "preds=" + ";".join("|".join(p) for p in preds),
        "filters=" + ";".join("|".join(f) for f in filts),
    ]
    return "\n".join(parts)


def query_fingerprint(query: Query) -> str:
    """Hex fingerprint of the query's canonical form.

    Equal for any two queries that are isomorphic as continuous queries
    (same join/filter content delivered to the same sink), regardless of
    source ordering or query name.
    """
    digest = hashlib.sha256(canonical_form(query).encode("utf-8"))
    return digest.hexdigest()[: FINGERPRINT_BITS // 4]
