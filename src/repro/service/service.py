"""The query lifecycle service: a long-running control plane.

:class:`StreamQueryService` wraps any :class:`~repro.core.optimizer.Optimizer`
and manages the full lifecycle of a churning query population -- submit,
plan, deploy, retire -- against one shared
:class:`~repro.query.deployment.DeploymentState`,
:class:`~repro.hierarchy.hierarchy.Hierarchy` and
:class:`~repro.hierarchy.advertisements.AdvertisementIndex`.  It is the
entry point that survives query churn: individual queries come and go,
the service (and the operator/advertisement substrate they share) stays.

Three mechanisms make it cheap under heavy traffic:

* **Plan memoization** -- optimizer output is cached per canonical query
  fingerprint (:mod:`repro.service.fingerprint`), so resubmitting an
  identical or source-order-permuted query skips optimization entirely
  and re-binds the cached plan to the new submission.
* **Epoch-based invalidation** -- the cache key carries a *statistics
  epoch* and a *topology epoch*.  The service watches
  :attr:`repro.core.cost.RateModel.version` and
  :attr:`repro.network.graph.Network.version` and bumps the matching
  epoch when either changes (rate re-estimation, link updates, node
  failure), which atomically invalidates every stale plan.
* **Admission control** -- a concurrent-deployment budget with a FIFO
  submission queue (:mod:`repro.service.admission`) applies backpressure
  instead of failing, and rejects gracefully with a typed decision when
  the queue itself is bounded.

Service-level metrics (cache hit rate, planning latency, queue depth,
admitted/rejected counts) are recorded in the engine's
:class:`~repro.runtime.metrics.MetricsLog` under ``service_*`` names so
the experiment reporting stack can plot them.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.adaptive.loop import AdaptivityConfig, AdaptivityLoop
from repro.core.cost import RateModel
from repro.core.optimizer import Optimizer
from repro.errors import (
    HierarchyError,
    InfeasiblePlacementError,
    PlanningError,
    UnknownQueryError,
)
from repro.hierarchy.advertisements import AdvertisementIndex
from repro.hierarchy.hierarchy import Hierarchy
from repro.network.graph import Network
from repro.obs.metrics import MetricRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf import profiler as _perf
from repro.query.deployment import Deployment
from repro.query.query import Query
from repro.resilience.degradation import ResilienceConfig, ResilientControl
from repro.resilience.faults import NULL_FAULTS
from repro.runtime.engine import FlowEngine
from repro.runtime.metrics import MetricsLog
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStatus,
)
from repro.service.cache import CachedPlan, PlanCache
from repro.service.fingerprint import query_fingerprint
from repro.workload.generator import Workload
from repro.workload.statistics import EstimatedStatistics


@dataclass(frozen=True)
class SubmitEvent:
    """One arrival in a workload trace.

    Attributes:
        time: Tick at which the query is submitted.
        query: The query itself.
        lifetime: Ticks the query stays deployed (``None`` = forever).
    """

    time: float
    query: Query
    lifetime: float | None = None


@dataclass
class TickReport:
    """What one service tick did."""

    time: float
    deployed: list[str] = field(default_factory=list)
    retired: list[str] = field(default_factory=list)
    parked: list[str] = field(default_factory=list)
    migrated: list[str] = field(default_factory=list)
    drift_streams: list[str] = field(default_factory=list)


@dataclass
class ServiceFailureReport:
    """Outcome of routing a node failure through the service.

    Attributes:
        node: The failed node.
        retired: Queries undeployed because they touched the node.
        resubmitted: Retired queries re-admitted through the service
            (deployed or queued, per their decision).
        lost: Retired queries that could not be resubmitted (their sink
            or a source stream died with the node).
        decisions: Admission decisions of the resubmissions.
    """

    node: int
    retired: list[str] = field(default_factory=list)
    resubmitted: list[str] = field(default_factory=list)
    lost: list[str] = field(default_factory=list)
    decisions: list[AdmissionDecision] = field(default_factory=list)


@dataclass
class ReplayReport:
    """Summary of replaying a trace through the service."""

    decisions: list[AdmissionDecision]
    ticks: int
    wall_seconds: float
    summary: dict = field(default_factory=dict)


class StreamQueryService:
    """Control-plane server for a churning multi-query workload.

    Args:
        optimizer: Any planner satisfying the
            :class:`~repro.core.optimizer.Optimizer` protocol.
        network: The physical network (its ``version`` drives the
            topology epoch).
        rates: Rate model (its ``version`` drives the statistics epoch).
        hierarchy: Optional hierarchy; required for
            :meth:`handle_node_failure`.
        ads: Optional shared advertisement index, kept in sync with the
            deployment state after every deploy/retire.
        admission: Admission controller (default: budget 16, unbounded
            queue).
        cache: Plan cache (default: 256-entry LRU).
        metrics: Metrics log (default: a fresh one, exposed as
            ``service.metrics``).
        registry: Optional typed :class:`MetricRegistry` shared with the
            engine; one is built over ``metrics`` when omitted.
        tracer: Span tracer for control-plane operations (submit, plan,
            node failure).  Disabled (:data:`NULL_TRACER`) by default.
            When enabled it is also installed on the optimizer (if the
            optimizer has no tracer of its own) and the ads index, so
            one service-level span tree covers planning end to end.
        resilience: Optional :class:`ResilienceConfig` turning on the
            resilience layer (retries, circuit breakers, degradation
            ladder, parking, quarantine).  With ``None`` (the default)
            planning behaves exactly as before the layer existed.
        faults: Fault injector whose scripted events the service applies
            on :meth:`tick` (crashes, rejoins, outage/slow-down/stale
            windows).  Defaults to the no-op :data:`NULL_FAULTS`;
            passing a real injector implicitly enables the resilience
            layer with default tuning if ``resilience`` was omitted.
        adaptivity: Optional :class:`AdaptivityConfig` (or a prebuilt
            :class:`AdaptivityLoop`) turning on closed-loop statistics
            monitoring, re-optimization and live operator migration:
            every :meth:`tick` runs one observe -> decide -> migrate
            step.  With ``None`` (the default) no monitor, instruments
            or hooks exist and behavior is byte-identical to before the
            subsystem existed (same contract as ``resilience``).
        causal: Optional :class:`~repro.obs.causal.CausalTracer`
            recording cross-coordinator message hops (migration
            cutovers driven by the adaptivity loop; deployment-protocol
            replays when callers pass ``service.causal`` through to
            :func:`~repro.runtime.protocol.simulate_deployment`).
            ``None`` (the default) leaves every simulator untraced.
        telemetry: Optional :class:`~repro.obs.telemetry.TelemetryConfig`
            (or prebuilt :class:`~repro.obs.telemetry.Telemetry`)
            turning on continuous telemetry: every :meth:`tick` ends by
            scraping the metric registry into a time-series store,
            evaluating the alerting rules, and feeding the flight
            recorder.  With ``None`` (the default) no scraper, store or
            hook exists and behavior is byte-identical to before the
            subsystem existed (same contract as ``resilience`` /
            ``adaptivity``).
        durability: Optional :class:`~repro.durability.DurabilityConfig`
            (or prebuilt :class:`~repro.durability.Durability`) turning
            on the durable control plane: every externally driven
            mutation is journaled to a write-ahead log before it
            executes, state snapshots land every ``snapshot_interval``
            ticks, and :func:`repro.durability.recover` can rebuild the
            service after a crash.  With ``None`` (the default) no
            journal, state directory or instruments exist and behavior
            is byte-identical to a build without the subsystem (same
            contract as the other optional layers).
        resources: Optional :class:`~repro.resources.ResourceConfig`
            (or prebuilt :class:`~repro.resources.ResourceManager`)
            turning on resource-aware placement: node capacities feed a
            utilization-bounded (or bi-criteria) planner constraint,
            every deployment passes a joint feasibility gate against
            the live ledger, queries with no feasible placement shed
            strictly lighter live queries or park until capacity
            recovers, and per-node ``resource_*`` utilization gauges
            land in the registry.  With ``None`` (the default) no
            ledger, gate or instruments exist; even when armed,
            all-unbounded capacities leave planning and admission
            byte-identical to a build without the subsystem.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        network: Network,
        rates: RateModel,
        hierarchy: Hierarchy | None = None,
        ads: AdvertisementIndex | None = None,
        admission: AdmissionController | None = None,
        cache: PlanCache | None = None,
        metrics: MetricsLog | None = None,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        resilience: ResilienceConfig | None = None,
        faults=None,
        adaptivity: AdaptivityConfig | AdaptivityLoop | None = None,
        causal=None,
        telemetry=None,
        durability=None,
        resources=None,
    ) -> None:
        self.optimizer = optimizer
        self.rates = rates
        self.hierarchy = hierarchy
        self.ads = ads
        self.causal = causal
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            opt_tracer = getattr(optimizer, "tracer", None)
            if opt_tracer is None or not opt_tracer.enabled:
                try:
                    optimizer.tracer = self.tracer
                except AttributeError:  # pragma: no cover - exotic planners
                    pass
            if ads is not None:
                ads.tracer = self.tracer
        self.engine = FlowEngine(network, rates, metrics, registry=registry)
        self.registry = self.engine.registry
        if ads is not None:
            # The hierarchical planners resolve sources through the ads
            # index; make sure every catalog stream is advertised.
            known = ads.base_streams()
            for name, spec in rates.streams.items():
                if name not in known:
                    ads.advertise_base(name, spec.source)
        self.admission = admission if admission is not None else AdmissionController()
        self.cache = cache if cache is not None else PlanCache()
        self.statistics_epoch = 0
        self.topology_epoch = 0
        self._rates_version = rates.version
        self._network_version = network.version
        self._expiry: dict[str, float] = {}
        self._pending_lifetimes: dict[str, float | None] = {}
        self.submitted_total = 0
        self.deployed_total = 0
        self.retired_total = 0
        self.plans_computed = 0
        self.planning_seconds = 0.0

        # Typed instruments over the shared log.  Series aliases keep
        # the legacy ``service_*`` series names intact for existing
        # time-series consumers.
        reg = self.registry
        self._queue_gauge = reg.gauge(
            "service_queue_depth", "Queries waiting in the admission queue."
        )
        self._live_gauge = reg.gauge(
            "service_live_queries", "Queries currently deployed."
        )
        self._hit_rate_gauge = reg.gauge(
            "service_cache_hit_rate", "Plan-cache hit rate since startup."
        )
        self._admitted_counter = reg.counter(
            "service_admitted_total", "Queries admitted (deployed or queued)."
        )
        self._rejected_counter = reg.counter(
            "service_rejected_total", "Queries rejected by admission control."
        )
        self._planning_hist = reg.histogram(
            "service_planning_seconds",
            "Wall-clock planning latency per plan() call (cache hits are 0).",
        )
        self._cache_hit_counter = reg.counter(
            "service_plan_cache_hits_total", "Plan-cache hits."
        )
        self._cache_miss_counter = reg.counter(
            "service_plan_cache_misses_total", "Plan-cache misses (optimizer ran)."
        )
        self._plans_examined_counter = reg.counter(
            "optimizer_plans_examined_total",
            "Nominal plan/placement combinations examined by the optimizer.",
        )
        self.admission.bind_instruments(reg)

        # Resilience layer.  Instruments and hooks exist only when the
        # layer is on, so default-configured services stay byte-identical.
        self.faults = faults if faults is not None else NULL_FAULTS
        self.resilience: ResilientControl | None = None
        if resilience is None and self.faults.enabled:
            resilience = ResilienceConfig()
        if resilience is not None:
            self.resilience = ResilientControl(resilience, self.faults)
            self.resilience.bind(self)

        # Adaptivity layer, same contract: the loop (monitor, policy,
        # migrator, adaptive_* instruments) exists only when asked for.
        self.adaptivity: AdaptivityLoop | None = None
        if adaptivity is not None:
            self.adaptivity = (
                adaptivity
                if isinstance(adaptivity, AdaptivityLoop)
                else AdaptivityLoop(adaptivity)
            )
            self.adaptivity.bind(self)

        # Telemetry layer, same contract again: the scraper, store and
        # rules engine exist only when asked for.
        from repro.obs.telemetry import ensure_telemetry

        self.telemetry = ensure_telemetry(telemetry)
        if self.telemetry is not None:
            self.telemetry.bind_service(self)

        # Durability layer, same contract: journal, snapshots and the
        # durability_* instruments exist only when asked for.
        from repro.durability import ensure_durability

        self.durability = ensure_durability(durability)
        self._in_command = False
        if self.durability is not None:
            self.durability.bind_service(self)
            if self.adaptivity is not None and self.adaptivity.migrator is not None:
                self.adaptivity.migrator.durability = self.durability

        # Resource layer, same contract: ledger, admission gate, shedder
        # and the resource_* instruments exist only when asked for.
        from repro.resources.manager import ensure_resources

        self.resources = ensure_resources(resources)
        if self.resources is not None:
            self.resources.bind_service(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The physical network the service deploys onto."""
        return self.engine.network

    @property
    def metrics(self) -> MetricsLog:
        """The service's metrics log."""
        return self.engine.metrics

    @property
    def clock(self) -> float:
        """Current service time (ticks)."""
        return self.engine.clock

    @property
    def live_queries(self) -> list[str]:
        """Names of currently deployed queries."""
        return [d.query.name for d in self.engine.state.deployments]

    def is_live(self, name: str) -> bool:
        """Whether a query of that name is currently deployed."""
        return any(d.query.name == name for d in self.engine.state.deployments)

    def total_cost(self) -> float:
        """Instantaneous communication cost of everything deployed."""
        return self.engine.total_cost()

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    def bump_statistics_epoch(self) -> int:
        """Invalidate plans cached under the old statistics; new epoch."""
        self.statistics_epoch += 1
        self.cache.evict_stale(self.statistics_epoch, self.topology_epoch)
        return self.statistics_epoch

    def bump_topology_epoch(self) -> int:
        """Invalidate plans cached under the old topology; new epoch."""
        self.topology_epoch += 1
        self.cache.evict_stale(self.statistics_epoch, self.topology_epoch)
        return self.topology_epoch

    def ingest_statistics(self, estimated: EstimatedStatistics) -> int:
        """Apply re-estimated workload statistics.

        Swaps the new stream specs into the shared rate model (bumping
        its version) and returns the new statistics epoch.  Deployed
        queries keep their flows priced at deployment-time rates until
        re-planned; *new* plans see the new rates immediately.
        """
        self.rates.update_streams(estimated.streams)
        self._refresh_epochs()
        return self.statistics_epoch

    def _refresh_epochs(self) -> None:
        if self.rates.version != self._rates_version:
            # During an injected stale-statistics window the control
            # plane must keep planning against what it last observed;
            # the epoch bump happens at the first refresh past the window.
            if not self.faults.statistics_frozen(self.clock):
                self._rates_version = self.rates.version
                self.bump_statistics_epoch()
        if self.network.version != self._network_version:
            self._network_version = self.network.version
            self.engine.refresh_network(self.clock)
            self.bump_topology_epoch()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        lifetime: float | None = None,
        time: float | None = None,
    ) -> AdmissionDecision:
        """Submit a query; deploy now, queue, or reject.

        Args:
            query: The query to run.
            lifetime: Ticks the query should stay deployed once admitted
                (``None`` = until explicitly retired).
            time: Service time of the submission (defaults to the
                current clock).

        Returns:
            The typed admission decision.
        """
        journal = self.durability is not None and not self._in_command
        if journal:
            from repro.serialization import _query_to_dict

            self._in_command = True
            self.durability.command(
                "cmd_submit",
                float(time) if time is not None else self.clock,
                {
                    "query": _query_to_dict(query),
                    "lifetime": lifetime,
                    "time": time,
                },
            )
        try:
            if time is not None:
                self.engine.clock = time
            with self.tracer.span("submit", query=query.name) as span:
                self._refresh_epochs()
                self.submitted_total += 1

                decision = self._validate(query, lifetime)
                if decision is None:
                    decision = self.admission.request(
                        query, len(self._live_names()), time=self.clock
                    )
                    if decision.status is AdmissionStatus.ADMITTED:
                        try:
                            self._deploy(query, lifetime)
                        except InfeasiblePlacementError as exc:
                            if self.resources is None:
                                raise
                            self.resources.park(self, query, lifetime, str(exc))
                            if self.durability is not None:
                                self.durability.marker(
                                    "park",
                                    self.clock,
                                    {"query": query.name, "reason": str(exc)},
                                )
                            decision = AdmissionDecision(
                                query=query.name,
                                status=AdmissionStatus.QUEUED,
                                reason=f"parked: {exc}",
                            )
                            span.incr("parked")
                        except PlanningError as exc:
                            if self.resilience is None:
                                raise
                            self.resilience.park(self, query, lifetime, str(exc))
                            if self.durability is not None:
                                self.durability.marker(
                                    "park",
                                    self.clock,
                                    {"query": query.name, "reason": str(exc)},
                                )
                            decision = AdmissionDecision(
                                query=query.name,
                                status=AdmissionStatus.QUEUED,
                                reason=f"parked: {exc}",
                            )
                            span.incr("parked")
                    elif decision.status is AdmissionStatus.QUEUED:
                        self._pending_lifetimes[query.name] = lifetime
                span.tag(decision=decision.status.value)
                self._record_gauges()
            if self.durability is not None:
                self.durability.marker(
                    "admit",
                    self.clock,
                    {
                        "query": query.name,
                        "status": decision.status.value,
                        "reason": decision.reason,
                    },
                )
        finally:
            if journal:
                self._in_command = False
        return decision

    def _validate(self, query: Query, lifetime: float | None) -> AdmissionDecision | None:
        if lifetime is not None and lifetime <= 0:
            return self.admission.reject(query, f"non-positive lifetime {lifetime}")
        if self.is_live(query.name):
            return self.admission.reject(
                query, f"query {query.name!r} is already deployed"
            )
        if self.admission.is_queued(query.name):
            return self.admission.reject(
                query, f"query {query.name!r} is already queued"
            )
        known = self.rates.streams
        unknown = [s for s in query.sources if s not in known]
        if unknown:
            return self.admission.reject(query, f"unknown streams: {unknown}")
        if query.sink not in self.network.nodes():
            return self.admission.reject(
                query, f"sink {query.sink} is not a network node"
            )
        if self.resilience is not None and self.hierarchy is not None:
            if query.sink not in self.hierarchy.root.subtree_nodes():
                return self.admission.reject(
                    query, f"sink {query.sink} is not a live hierarchy node"
                )
        return None

    def tick(self, time: float | None = None) -> TickReport:
        """Advance the service one step.

        Retires queries whose lifetime expired, then drains the
        submission queue into freed capacity (FIFO, bounded by the
        controller's per-tick limit), then records the service gauges.
        """
        journal = self.durability is not None and not self._in_command
        if journal:
            now = float(time) if time is not None else self.engine.clock + 1.0
            self._in_command = True
            self.durability.command("cmd_tick", now, {"time": now})
        try:
            prof = _perf.active()
            if prof is None:
                report = self._tick(time)
            else:
                prof.count("service_ticks")
                with prof.sample("service_tick"):
                    report = self._tick(time)
            if journal:
                self.durability.marker(
                    "tick_end",
                    report.time,
                    {
                        "deployed": list(report.deployed),
                        "retired": list(report.retired),
                        "migrated": list(report.migrated),
                    },
                )
                self.durability.maybe_snapshot(report.time)
        finally:
            if journal:
                self._in_command = False
        return report

    def _tick(self, time: float | None = None) -> TickReport:
        now = float(time) if time is not None else self.engine.clock + 1.0
        self.engine.clock = now
        if self.resilience is not None:
            self.resilience.apply_due_faults(self, now)
            self.resilience.release_quarantined(self, now)
        self._refresh_epochs()
        report = TickReport(time=now)

        for name in [n for n, expiry in self._expiry.items() if expiry <= now]:
            self._retire_live(name)
            report.retired.append(name)

        for query in self.admission.drain(len(self._live_names()), time=now):
            lifetime = self._pending_lifetimes.pop(query.name, None)
            try:
                self._deploy(query, lifetime)
            except InfeasiblePlacementError as exc:
                if self.resources is None:
                    raise
                self.resources.park(self, query, lifetime, str(exc))
                if self.durability is not None:
                    self.durability.marker(
                        "park",
                        now,
                        {"query": query.name, "reason": str(exc)},
                    )
                report.parked.append(query.name)
                continue
            except PlanningError as exc:
                if self.resilience is None:
                    raise
                self.resilience.park(self, query, lifetime, str(exc))
                if self.durability is not None:
                    self.durability.marker(
                        "park",
                        now,
                        {"query": query.name, "reason": str(exc)},
                    )
                report.parked.append(query.name)
                continue
            report.deployed.append(query.name)

        if self.resilience is not None:
            self.resilience.readmit_parked(self, report.deployed)
        if self.resources is not None:
            report.deployed.extend(self.resources.step(self, now))
        if self.adaptivity is not None:
            adaptive = self.adaptivity.step(self, now)
            if adaptive.drift is not None:
                report.drift_streams.extend(adaptive.drift.streams)
            report.migrated.extend(m.query for m in adaptive.committed)
        self._record_gauges()
        if self.telemetry is not None:
            self.telemetry.on_service_tick(self, report)
        return report

    def retire(self, name: str) -> bool:
        """Retire a query by name (deployed or still queued).

        Returns ``True`` if it was deployed, ``False`` if only queued
        (or parked by the resilience or resource layer).

        Raises:
            UnknownQueryError: The name is neither deployed, queued nor
                parked (also catchable as ``KeyError``).
        """
        journal = self.durability is not None and not self._in_command
        if journal:
            self._in_command = True
            self.durability.command("cmd_retire", self.clock, {"name": name})
        try:
            if self.admission.withdraw(name, time=self.clock):
                self._pending_lifetimes.pop(name, None)
                self._record_gauges()
                return False
            if self.resilience is not None and self.resilience.unpark(name):
                self._record_gauges()
                return False
            if self.resources is not None and self.resources.unpark(name):
                self._record_gauges()
                return False
            if not self.is_live(name):
                raise UnknownQueryError(
                    f"query {name!r} is neither deployed nor queued"
                )
            self._retire_live(name)
            self._record_gauges()
            return True
        finally:
            if journal:
                self._in_command = False

    def handle_node_failure(self, node: int) -> ServiceFailureReport:
        """Route a node failure through retire/re-admit.

        Repairs the hierarchy (coordinator backups take over), bumps the
        topology epoch (cached placements may reference the dead node),
        retires every query with an operator there, and resubmits the
        survivors through normal admission -- so a failure burst is
        subject to the same backpressure as any other load spike.

        Raises:
            HierarchyError: The service was built without a hierarchy
                (also catchable as ``ValueError``).
        """
        if self.hierarchy is None:
            raise HierarchyError("handle_node_failure requires a hierarchy")
        from repro.runtime.failover import fail_node

        journal = self.durability is not None and not self._in_command
        if journal:
            self._in_command = True
            self.durability.command("cmd_node_failure", self.clock, {"node": node})
        try:
            return self._handle_node_failure(node, fail_node)
        finally:
            if journal:
                self._in_command = False

    def _handle_node_failure(self, node: int, fail_node) -> ServiceFailureReport:
        with self.tracer.span("node_failure", node=node) as span:
            failure = fail_node(self.hierarchy, node, engine=self.engine)
            report = ServiceFailureReport(node=node)
            by_name = {d.query.name: d.query for d in self.engine.state.deployments}
            self.bump_topology_epoch()

            # Undeploy every affected query before the single ads re-sync:
            # their operators on the dead node must all be gone first, or
            # the sync would try to advertise views at a node the hierarchy
            # no longer contains.
            remaining: dict[str, float | None] = {}
            for name in failure.affected_queries:
                expiry = self._expiry.pop(name, None)
                remaining[name] = (
                    None if expiry is None else max(1.0, expiry - self.clock)
                )
                self.engine.undeploy(name, time=self.clock)
                self.retired_total += 1
                report.retired.append(name)
            if self.ads is not None:
                self.ads.sync_from_state(self.engine.state)

            alive = self.hierarchy.root.subtree_nodes()
            for name in failure.affected_queries:
                query = by_name[name]
                sources_alive = all(
                    self.rates.source(s) in alive for s in query.sources
                )
                if query.sink not in alive or not sources_alive:
                    report.lost.append(name)
                    continue
                decision = self.submit(query, lifetime=remaining[name])
                report.decisions.append(decision)
                if not decision.rejected:
                    report.resubmitted.append(name)
                else:  # pragma: no cover - bounded-queue configurations only
                    report.lost.append(name)
            span.incr("queries_retired", len(report.retired))
            span.incr("queries_resubmitted", len(report.resubmitted))
            span.incr("queries_lost", len(report.lost))
            self._record_gauges()
        return report

    def rejoin_node(self, node: int) -> bool:
        """Re-admit a node into the hierarchy (recovery or end of
        quarantine).

        The node must still be a network member and not currently in
        the hierarchy.  Returns ``True`` when the hierarchy changed (the
        topology epoch is bumped so stale cached plans die and parked
        queries get retried).

        Raises:
            HierarchyError: The service was built without a hierarchy.
        """
        if self.hierarchy is None:
            raise HierarchyError("rejoin_node requires a hierarchy")
        journal = self.durability is not None and not self._in_command
        if journal:
            self._in_command = True
            self.durability.command("cmd_rejoin", self.clock, {"node": node})
        try:
            if not self.network.has_node(node):
                return False
            from repro.hierarchy.maintenance import add_node

            try:
                # Seeded by the node id: any split the insertion triggers
                # is reproducible across same-plan chaos runs.
                add_node(self.hierarchy, node, seed=node)
            except ValueError:
                return False  # already a member
            self.bump_topology_epoch()
            return True
        finally:
            if journal:
                self._in_command = False

    def observe_rates(self, samples, time: float | None = None) -> None:
        """Feed dataplane rate samples to the adaptivity monitor.

        A journaled command (external input changes future planning
        decisions, so recovery must replay it).  A no-op without the
        adaptivity layer.
        """
        journal = self.durability is not None and not self._in_command
        if journal:
            self._in_command = True
            self.durability.command(
                "cmd_observe",
                float(time) if time is not None else self.clock,
                {"samples": dict(samples), "time": time},
            )
        try:
            if time is not None:
                self.engine.clock = float(time)
            if self.adaptivity is not None:
                self.adaptivity.observe_rates(samples)
        finally:
            if journal:
                self._in_command = False

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> tuple[Deployment, bool]:
        """Plan a query through the cache; returns ``(deployment, hit)``.

        A hit re-binds the memoized plan/placement to this query object
        after revalidating it against the live deployment state (reused
        views must still exist); a failed revalidation is re-booked as a
        miss and re-planned.
        """
        self._refresh_epochs()
        fingerprint = query_fingerprint(query)
        key = self.cache.key(fingerprint, self.statistics_epoch, self.topology_epoch)
        with self.tracer.span("plan", query=query.name) as span:
            entry = self.cache.get(key)
            if entry is not None and not self._revalidate(query, entry):
                self.cache.demote(key)
                span.incr("cache_revalidation_failures")
                entry = None
            if entry is not None:
                deployment = Deployment(
                    query=query,
                    plan=entry.plan,
                    placement=dict(entry.placement),
                    stats={
                        **entry.stats,
                        "plan_cache": "hit",
                        "fingerprint": fingerprint,
                    },
                )
                span.tag(cache="hit")
                self._cache_hit_counter.inc(time=self.clock)
                self._planning_hist.observe(0.0, time=self.clock)
                return deployment, True
            start = _time.perf_counter()
            deployment = self.optimizer.plan(query, self.engine.state)
            elapsed = _time.perf_counter() - start
            self.plans_computed += 1
            self.planning_seconds += elapsed
            deployment.stats = {
                **deployment.stats,
                "plan_cache": "miss",
                "fingerprint": fingerprint,
            }
            self.cache.put(
                key,
                CachedPlan(
                    plan=deployment.plan,
                    placement=dict(deployment.placement),
                    planning_latency=elapsed,
                    stats=dict(deployment.stats),
                ),
            )
            span.tag(cache="miss")
            self._cache_miss_counter.inc(time=self.clock)
            examined = deployment.stats.get("plans_examined")
            if examined:
                self._plans_examined_counter.inc(float(examined), time=self.clock)
            self._planning_hist.observe(elapsed, time=self.clock)
        return deployment, False

    def _revalidate(self, query: Query, entry: CachedPlan) -> bool:
        """Whether a cached plan still applies cleanly to live state."""
        for leaf in entry.plan.leaves():
            node = entry.placement.get(leaf)
            if node is None:
                return False
            if leaf.is_base_stream:
                if self.rates.source(leaf.stream) != node:
                    return False
            elif self.engine.state.find_reusable(query, leaf.view, node) is None:
                return False
        return True

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def replay(
        self,
        events: Iterable[SubmitEvent],
        drain: bool = True,
        max_ticks: int = 100_000,
    ) -> ReplayReport:
        """Replay a workload trace through the service.

        Submits each event at its tick (ticking the service through the
        gaps) and, when ``drain`` is set, keeps ticking afterwards until
        the submission queue is empty and every finite-lifetime query
        has retired.

        Returns:
            A :class:`ReplayReport` with every admission decision and a
            summary (cache hit rate, queries/second of planning, ...).
        """
        ordered = sorted(events, key=lambda e: e.time)
        decisions: list[AdmissionDecision] = []
        wall_start = _time.perf_counter()
        ticks = 0
        clock = self.clock
        i = 0
        while i < len(ordered):
            clock += 1.0
            self.tick(clock)
            ticks += 1
            while i < len(ordered) and ordered[i].time <= clock:
                event = ordered[i]
                decisions.append(
                    self.submit(event.query, lifetime=event.lifetime)
                )
                i += 1
            if ticks >= max_ticks:  # pragma: no cover - defensive
                break
        while (
            drain
            and ticks < max_ticks
            and (self.admission.queue_depth > 0 or self._expiry)
        ):
            clock += 1.0
            self.tick(clock)
            ticks += 1
        wall = _time.perf_counter() - wall_start
        admitted = sum(1 for d in decisions if not d.rejected)
        report = ReplayReport(
            decisions=decisions,
            ticks=ticks,
            wall_seconds=wall,
            summary={
                "submitted": len(decisions),
                "admitted": admitted,
                "rejected": sum(1 for d in decisions if d.rejected),
                "deployed_total": self.deployed_total,
                "retired_total": self.retired_total,
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_hit_rate": self.cache.hit_rate,
                "plans_computed": self.plans_computed,
                "planning_seconds": self.planning_seconds,
                "queries_per_second": (
                    self.deployed_total / wall if wall > 0 else float("inf")
                ),
                "final_cost": self.total_cost(),
                "final_live": len(self._live_names()),
            },
        )
        if self.resilience is not None:
            report.summary["resilience"] = self.resilience.summary()
            report.summary["faults"] = self.faults.summary()
        if self.adaptivity is not None:
            report.summary["adaptivity"] = self.adaptivity.summary()
        if self.resources is not None:
            report.summary["resources"] = self.resources.summary()
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _live_names(self) -> list[str]:
        return self.live_queries

    def _deploy(self, query: Query, lifetime: float | None) -> None:
        if self.resilience is not None:
            deployment = self.resilience.plan(self, query)
        elif self.resources is not None:
            # The manager's planning path sheds lighter queries when the
            # constrained planner finds nothing feasible.
            deployment = self.resources.plan_feasible(self, query)
        else:
            deployment, _hit = self.plan(query)
        if self.resources is not None:
            deployment = self.resources.gate(self, query, deployment)
        self.engine.deploy(deployment, time=self.clock)
        if self.ads is not None:
            self.ads.sync_from_state(self.engine.state)
        if lifetime is not None:
            self._expiry[query.name] = self.clock + lifetime
        self.deployed_total += 1
        if self.durability is not None:
            self.durability.marker(
                "deploy",
                self.clock,
                {"query": query.name, "lifetime": lifetime},
            )

    def _retire_live(self, name: str) -> None:
        self.engine.undeploy(name, time=self.clock)
        if self.ads is not None:
            self.ads.sync_from_state(self.engine.state)
        self._expiry.pop(name, None)
        self.retired_total += 1
        if self.durability is not None:
            self.durability.marker("retire", self.clock, {"query": name})

    def _record_gauges(self) -> None:
        now = self.clock
        self._queue_gauge.set(float(self.admission.queue_depth), time=now)
        self._live_gauge.set(float(len(self._live_names())), time=now)
        self._hit_rate_gauge.set(self.cache.hit_rate, time=now)
        self._admitted_counter.sync_total(
            float(self.admission.admitted_total), time=now
        )
        self._rejected_counter.sync_total(
            float(self.admission.rejected_total), time=now
        )
        if self.resources is not None:
            self.resources.record_gauges(self)


def churn_trace(
    workload: Workload | Sequence[Query],
    lifetime: float | None = 5.0,
    arrivals_per_tick: int = 2,
    repeats: int = 1,
    start_time: float = 0.0,
) -> list[SubmitEvent]:
    """Build a short-lived-query trace from a workload.

    Queries arrive ``arrivals_per_tick`` at a time and live ``lifetime``
    ticks.  With ``repeats > 1`` the whole sequence is replayed again
    (fresh names, identical content) -- the canonical plan-cache-friendly
    churn the service is built for.
    """
    if arrivals_per_tick < 1:
        raise ValueError("arrivals_per_tick must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    queries = list(workload)
    events: list[SubmitEvent] = []
    tick = start_time
    slot = 0
    for round_no in range(repeats):
        for query in queries:
            if slot == 0:
                tick += 1.0
            name = query.name if round_no == 0 else f"{query.name}.r{round_no}"
            resubmission = Query(
                name=name,
                sources=query.sources,
                sink=query.sink,
                predicates=query.predicates,
                filters=query.filters,
                projection=query.projection,
                allow_cross_products=query.allow_cross_products,
                window=query.window,
            )
            events.append(SubmitEvent(time=tick, query=resubmission, lifetime=lifetime))
            slot = (slot + 1) % arrivals_per_tick
    return events
