"""Full-state capture/restore for the service and fleet control planes.

:func:`capture_service` / :func:`capture_fleet` walk every piece of
control-plane state that influences *future decisions* -- deployments,
operator/flow records, plan cache (in LRU order), admission queue,
parked queries, circuit breakers (including the resilience RNG state),
EWMA estimators, migration cooldowns, fault-injector cursors, routing
tables, tenant accounting, scheduler backlogs and federation imports --
into one JSON-ready document.  :func:`restore_service` /
:func:`restore_fleet` assign it back into a *pristine* controller built
by the same deterministic factory, leaving the controller
epoch-consistent: cache keys still match ``(fingerprint,
statistics_epoch, topology_epoch)``, ads indexes are rebuilt with
``sync_from_state`` (which also revives federation-owned external-view
records), and the network/hierarchy are restored *in place* because
optimizers, engines and routing policies all hold references to the
same objects.

Deliberately *not* captured: metric instrument values, telemetry
stores, causal traces and flight-recorder rings -- observability
output, not decision state.  The crash-equivalence digests in
:mod:`repro.durability.harness` exclude them for the same reason they
exclude wall-clock planning latencies.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any

from repro.adaptive.stats import DriftEvent, EwmaEstimator, StreamDrift
from repro.query.plan import Join, Leaf, PlanNode
from repro.query.query import JoinPredicate, ViewSignature
from repro.query.stream import Filter, StreamSpec
from repro.resilience.policy import BreakerState, CircuitBreaker
from repro.serialization import _query_from_dict, _query_to_dict

STATE_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of stats payloads to JSON-ready values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Signatures, plans, placements, deployments
# ----------------------------------------------------------------------
def sig_to_doc(sig: ViewSignature) -> dict[str, Any]:
    """JSON document for a :class:`ViewSignature` (order-canonical)."""
    return {
        "sources": sorted(sig.sources),
        "predicates": sorted(
            (
                {
                    "left": p.left,
                    "right": p.right,
                    "selectivity": p.selectivity,
                    "left_attr": p.left_attr,
                    "right_attr": p.right_attr,
                }
                for p in sig.predicates
            ),
            key=lambda d: (d["left"], d["right"]),
        ),
        "filters": sorted(
            (
                {"stream": f.stream, "predicate": f.predicate, "selectivity": f.selectivity}
                for f in sig.filters
            ),
            key=lambda d: (d["stream"], d["predicate"]),
        ),
        "window": sig.window,
    }


def sig_from_doc(doc: dict[str, Any]) -> ViewSignature:
    """Inverse of :func:`sig_to_doc`."""
    return ViewSignature(
        sources=frozenset(doc["sources"]),
        predicates=frozenset(JoinPredicate(**p) for p in doc["predicates"]),
        filters=frozenset(Filter(**f) for f in doc["filters"]),
        window=doc["window"],
    )


def plan_to_doc(plan: PlanNode) -> dict[str, Any]:
    """JSON document for a plan tree."""
    if isinstance(plan, Leaf):
        return {"leaf": sorted(plan.view)}
    assert isinstance(plan, Join)
    return {"join": [plan_to_doc(plan.left), plan_to_doc(plan.right)]}


def plan_from_doc(doc: dict[str, Any]) -> PlanNode:
    """Inverse of :func:`plan_to_doc` (Join re-canonicalizes children)."""
    if "leaf" in doc:
        return Leaf(frozenset(doc["leaf"]))
    left, right = doc["join"]
    return Join(plan_from_doc(left), plan_from_doc(right))


def _placement_key(subtree: PlanNode) -> str:
    # Any two distinct subtrees of one plan cover distinct source sets
    # (children are disjoint, ancestors strict supersets), so the sorted
    # source names identify the subtree uniquely within its plan.
    return "|".join(sorted(subtree.sources))


def placement_to_doc(plan: PlanNode, placement: dict[PlanNode, int]) -> dict[str, int]:
    """``{source-set-label: node}`` for every subtree of ``plan``."""
    return {_placement_key(sub): placement[sub] for sub in plan.subtrees()}


def placement_from_doc(plan: PlanNode, doc: dict[str, int]) -> dict[PlanNode, int]:
    """Inverse of :func:`placement_to_doc` over ``plan``'s subtrees."""
    return {sub: doc[_placement_key(sub)] for sub in plan.subtrees()}


def deployment_to_doc(deployment) -> dict[str, Any]:
    """JSON document for a :class:`~repro.query.deployment.Deployment`."""
    return {
        "query": _query_to_dict(deployment.query),
        "plan": plan_to_doc(deployment.plan),
        "placement": placement_to_doc(deployment.plan, deployment.placement),
        "stats": _jsonable(dict(deployment.stats)),
    }


def deployment_from_doc(doc: dict[str, Any]):
    """Inverse of :func:`deployment_to_doc` (explanations are not kept)."""
    from repro.query.deployment import Deployment

    query = _query_from_dict(doc["query"])
    plan = plan_from_doc(doc["plan"])
    return Deployment(
        query=query,
        plan=plan,
        placement=placement_from_doc(plan, doc["placement"]),
        stats=dict(doc["stats"]),
    )


def _producer_to_doc(producer) -> dict[str, Any]:
    if producer[0] == "base":
        return {"base": producer[1], "node": producer[2]}
    return {"view": sig_to_doc(producer[1]), "node": producer[2]}


def _producer_from_doc(doc: dict[str, Any]):
    if "base" in doc:
        return ("base", doc["base"], doc["node"])
    return ("view", sig_from_doc(doc["view"]), doc["node"])


# ----------------------------------------------------------------------
# DeploymentState (operators, flows, deployments)
# ----------------------------------------------------------------------
def capture_deployment_state(state) -> dict[str, Any]:
    """Capture a :class:`~repro.query.deployment.DeploymentState`.

    Operator records are captured in *insertion order*: containment
    reuse (`find_reusable`) falls back to a linear scan, so the order
    operators were installed in is decision state.
    """
    return {
        "deployments": [
            deployment_to_doc(d) for d in state._deployments.values()
        ],
        "operators": [
            {
                "sig": sig_to_doc(sig),
                "node": node,
                "rate": rec.rate,
                "queries": sorted(rec.queries),
            }
            for (sig, node), rec in state._operators.items()
        ],
        "flows": [
            {
                "query": f.query,
                "producer": _producer_to_doc(f.producer),
                "dest": f.dest,
                "rate": f.rate,
            }
            for f in state._flows
        ],
    }


def restore_deployment_state(state, doc: dict[str, Any]) -> None:
    """Assign a captured document back into a pristine state object."""
    from repro.query.deployment import FlowEdge, _OperatorRecord

    state._deployments = {
        d["query"]["name"]: deployment_from_doc(d) for d in doc["deployments"]
    }
    operators = {}
    for entry in doc["operators"]:
        sig = sig_from_doc(entry["sig"])
        operators[(sig, entry["node"])] = _OperatorRecord(
            sig, entry["node"], entry["rate"], set(entry["queries"])
        )
    state._operators = operators
    state._flows = [
        FlowEdge(
            query=f["query"],
            producer=_producer_from_doc(f["producer"]),
            dest=f["dest"],
            rate=f["rate"],
        )
        for f in doc["flows"]
    ]


# ----------------------------------------------------------------------
# Network / hierarchy / rates (shared infrastructure, restored in place)
# ----------------------------------------------------------------------
def capture_network(network) -> dict[str, Any]:
    """Capture topology + version of a :class:`~repro.network.graph.Network`."""
    return {
        "nodes": [
            {"id": node, "kind": network._node_kind.get(node, "")}
            for node in sorted(network._adj)
        ],
        "links": [
            {
                "u": link.u,
                "v": link.v,
                "cost": link.cost,
                "delay": link.delay,
                "bandwidth": None if link.bandwidth == float("inf") else link.bandwidth,
                "kind": link.kind,
            }
            for (_, _), link in sorted(network._links.items())
        ],
        "version": network._version,
    }


def restore_network(network, doc: dict[str, Any]) -> None:
    """Restore a network *in place* (everything holds references to it)."""
    from repro.network.graph import Link

    adj: dict[int, set[int]] = {n["id"]: set() for n in doc["nodes"]}
    kinds = {n["id"]: n["kind"] for n in doc["nodes"]}
    links = {}
    for entry in doc["links"]:
        link = Link(
            u=entry["u"],
            v=entry["v"],
            cost=entry["cost"],
            delay=entry["delay"],
            bandwidth=float("inf") if entry["bandwidth"] is None else entry["bandwidth"],
            kind=entry["kind"],
        )
        links[(link.u, link.v)] = link
        adj[link.u].add(link.v)
        adj[link.v].add(link.u)
    network._adj = adj
    network._node_kind = kinds
    network._links = links
    network._version = doc["version"]
    network._cost_cache = None
    network._delay_cache = None
    network._pred_cache = None


def capture_hierarchy(hierarchy) -> dict[str, Any]:
    """Capture the cluster tree, preserving each level's list order."""
    positions: dict[int, int] = {}
    for level_clusters in hierarchy.levels:
        for pos, cluster in enumerate(level_clusters):
            positions[id(cluster)] = pos

    def cluster_doc(cluster) -> dict[str, Any]:
        return {
            "level": cluster.level,
            "pos": positions[id(cluster)],
            "members": list(cluster.members),
            "coordinator": cluster.coordinator,
            "children": [
                [member, cluster_doc(child)]
                for member, child in cluster.children.items()
            ],
        }

    return {
        "max_cs": hierarchy.max_cs,
        "height": hierarchy.height,
        "root": cluster_doc(hierarchy.root),
    }


def restore_hierarchy(hierarchy, doc: dict[str, Any]) -> None:
    """Rebuild the cluster tree *in place* on the shared hierarchy."""
    from repro.hierarchy.hierarchy import Cluster

    def build(cdoc) -> Cluster:
        children = {m: build(d) for m, d in cdoc["children"]}
        cluster = Cluster(
            level=cdoc["level"],
            members=list(cdoc["members"]),
            coordinator=cdoc["coordinator"],
            children=children,
        )
        for child in children.values():
            child.parent = cluster
        return cluster

    root = build(doc["root"])
    by_level: dict[int, list] = {level: [] for level in range(1, doc["height"] + 1)}
    stack = [(doc["root"], root)]
    while stack:
        cdoc, cluster = stack.pop()
        by_level[cdoc["level"]].append((cdoc["pos"], cluster))
        for (_, child_doc), child in zip(cdoc["children"], cluster.children.values()):
            stack.append((child_doc, child))
    hierarchy.max_cs = doc["max_cs"]
    hierarchy.levels = [
        [cluster for _, cluster in sorted(by_level[level], key=lambda t: t[0])]
        for level in range(1, doc["height"] + 1)
    ]
    hierarchy.reindex()


def capture_rates(rates) -> dict[str, Any]:
    """Capture a :class:`~repro.core.cost.RateModel` (catalog + version)."""
    return {
        "streams": [
            {"name": spec.name, "source": spec.source, "rate": spec.rate}
            for spec in rates._streams.values()
        ],
        "version": rates._version,
        "reuse_rate_inflation": rates.reuse_rate_inflation,
    }


def restore_rates(rates, doc: dict[str, Any]) -> None:
    """Restore the shared rate model in place; clears the rate cache."""
    rates._streams = {
        s["name"]: StreamSpec(s["name"], s["source"], s["rate"])
        for s in doc["streams"]
    }
    rates.reuse_rate_inflation = doc["reuse_rate_inflation"]
    rates._version = doc["version"]
    rates._cache.clear()


# ----------------------------------------------------------------------
# RNG state
# ----------------------------------------------------------------------
def capture_rng(rng) -> dict[str, Any]:
    """The bit-generator state dict of a numpy Generator (JSON-safe)."""
    return rng.bit_generator.state


def restore_rng(rng, doc: dict[str, Any]) -> None:
    """Inverse of :func:`capture_rng`."""
    rng.bit_generator.state = doc


# ----------------------------------------------------------------------
# Service-layer components
# ----------------------------------------------------------------------
def _capture_admission(admission) -> dict[str, Any]:
    return {
        "queue": [_query_to_dict(q) for q in admission._queue],
        "enqueued_at": dict(admission._enqueued_at),
        "admitted_total": admission.admitted_total,
        "queued_total": admission.queued_total,
        "rejected_total": admission.rejected_total,
    }


def _restore_admission(admission, doc: dict[str, Any]) -> None:
    admission._queue = deque(_query_from_dict(d) for d in doc["queue"])
    admission._enqueued_at = dict(doc["enqueued_at"])
    admission.admitted_total = doc["admitted_total"]
    admission.queued_total = doc["queued_total"]
    admission.rejected_total = doc["rejected_total"]


def _capture_cache(cache) -> dict[str, Any]:
    return {
        "entries": [
            {
                "fingerprint": key[0],
                "statistics_epoch": key[1],
                "topology_epoch": key[2],
                "plan": plan_to_doc(entry.plan),
                "placement": placement_to_doc(entry.plan, entry.placement),
                "planning_latency": entry.planning_latency,
                "stats": _jsonable(dict(entry.stats)),
            }
            for key, entry in cache._entries.items()  # LRU order
        ],
        "hits": cache.hits,
        "misses": cache.misses,
        "evictions": cache.evictions,
        "invalidations": cache.invalidations,
    }


def _restore_cache(cache, doc: dict[str, Any]) -> None:
    from repro.service.cache import CachedPlan

    entries: OrderedDict = OrderedDict()
    for e in doc["entries"]:
        plan = plan_from_doc(e["plan"])
        key = (e["fingerprint"], e["statistics_epoch"], e["topology_epoch"])
        entries[key] = CachedPlan(
            plan=plan,
            placement=placement_from_doc(plan, e["placement"]),
            planning_latency=e["planning_latency"],
            stats=dict(e["stats"]),
        )
    cache._entries = entries
    cache.hits = doc["hits"]
    cache.misses = doc["misses"]
    cache.evictions = doc["evictions"]
    cache.invalidations = doc["invalidations"]


def _capture_resilience(control) -> dict[str, Any]:
    return {
        "parked": [
            {
                "name": name,
                "query": _query_to_dict(p.query),
                "lifetime": p.lifetime,
                "epoch": p.epoch,
                "reason": p.reason,
            }
            for name, p in control.parked.items()
        ],
        "quarantined": [[node, t] for node, t in sorted(control.quarantined.items())],
        "degraded": sorted(control.degraded_queries),
        "retries_total": control.retries_total,
        "fallbacks_total": control.fallbacks_total,
        "parked_total": control.parked_total,
        "quarantined_total": control.quarantined_total,
        "rng": capture_rng(control.rng),
        "breakers": [
            [
                node,
                {
                    "state": breaker.state.value,
                    "consecutive_failures": breaker.consecutive_failures,
                    "opened_at": breaker.opened_at,
                    "opened_count": breaker.opened_count,
                    "probes_in_flight": breaker._probes_in_flight,
                },
            ]
            for node, breaker in sorted(control.breakers._breakers.items())
        ],
    }


def _restore_resilience(control, doc: dict[str, Any]) -> None:
    from repro.resilience.degradation import ParkedQuery

    control.parked = {
        p["name"]: ParkedQuery(
            query=_query_from_dict(p["query"]),
            lifetime=p["lifetime"],
            epoch=p["epoch"],
            reason=p["reason"],
        )
        for p in doc["parked"]
    }
    control.quarantined = {node: t for node, t in doc["quarantined"]}
    control.degraded_queries = set(doc["degraded"])
    control.retries_total = doc["retries_total"]
    control.fallbacks_total = doc["fallbacks_total"]
    control.parked_total = doc["parked_total"]
    control.quarantined_total = doc["quarantined_total"]
    restore_rng(control.rng, doc["rng"])
    board = control.breakers
    board._breakers = {}
    for node, b in doc["breakers"]:
        breaker = CircuitBreaker(
            failure_threshold=board.failure_threshold,
            recovery_time=board.recovery_time,
            half_open_probes=board.half_open_probes,
        )
        breaker.state = BreakerState(b["state"])
        breaker.consecutive_failures = b["consecutive_failures"]
        breaker.opened_at = b["opened_at"]
        breaker.opened_count = b["opened_count"]
        breaker._probes_in_flight = b["probes_in_flight"]
        board._breakers[node] = breaker


def _capture_estimator(est: EwmaEstimator) -> dict[str, Any]:
    return {"alpha": est.alpha, "value": est.value, "samples": est.samples}


def _restore_estimator(doc: dict[str, Any]) -> EwmaEstimator:
    est = EwmaEstimator(doc["alpha"])
    est.value = doc["value"]
    est.samples = doc["samples"]
    return est


def _capture_monitor(monitor) -> dict[str, Any]:
    return {
        "estimators": [
            [name, _capture_estimator(est)]
            for name, est in monitor._estimators.items()
        ],
        "published": dict(monitor._published),
        "breaches": dict(monitor._breaches),
        "selectivities": [
            [sorted(pair), _capture_estimator(est)]
            for pair, est in monitor._selectivities.items()
        ],
        "last_publish": monitor._last_publish,
        "samples_total": monitor.samples_total,
        "events": [
            {
                "time": ev.time,
                "rates_version": ev.rates_version,
                "drifts": [
                    {"stream": d.stream, "published": d.published, "observed": d.observed}
                    for d in ev.drifts
                ],
            }
            for ev in monitor.events
        ],
    }


def _restore_monitor(monitor, doc: dict[str, Any]) -> None:
    monitor._estimators = {
        name: _restore_estimator(e) for name, e in doc["estimators"]
    }
    monitor._published = dict(doc["published"])
    monitor._breaches = dict(doc["breaches"])
    monitor._selectivities = {
        frozenset(pair): _restore_estimator(e) for pair, e in doc["selectivities"]
    }
    monitor._last_publish = doc["last_publish"]
    monitor.samples_total = doc["samples_total"]
    monitor.events = [
        DriftEvent(
            time=ev["time"],
            drifts=[StreamDrift(**d) for d in ev["drifts"]],
            rates_version=ev["rates_version"],
        )
        for ev in doc["events"]
    ]


def _capture_adaptivity(loop) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "last_migration": dict(loop._last_migration),
        "dirty": loop._dirty,
        "seen_topology": loop._seen_topology,
        "evaluations": loop.policy.evaluations if loop.policy is not None else 0,
        "monitor": _capture_monitor(loop.monitor) if loop.monitor is not None else None,
    }
    return doc


def _restore_adaptivity(loop, doc: dict[str, Any]) -> None:
    loop._last_migration = dict(doc["last_migration"])
    loop._dirty = doc["dirty"]
    loop._seen_topology = doc["seen_topology"]
    if loop.policy is not None:
        loop.policy.evaluations = doc["evaluations"]
    if loop.monitor is not None and doc["monitor"] is not None:
        _restore_monitor(loop.monitor, doc["monitor"])


def _capture_faults(injector) -> dict[str, Any] | None:
    if not getattr(injector, "enabled", False):
        return None
    return {
        "crashed": sorted(injector.crashed),
        "cursor": injector._cursor,
        "applied": _jsonable(list(injector.applied)),
        "messages_dropped": injector.messages_dropped,
        "messages_delayed": injector.messages_delayed,
        "messages_duplicated": injector.messages_duplicated,
        "rng": capture_rng(injector.rng),
    }


def _restore_faults(injector, doc: dict[str, Any] | None) -> None:
    if doc is None or not getattr(injector, "enabled", False):
        return
    injector.crashed = set(doc["crashed"])
    injector._cursor = doc["cursor"]
    injector.applied = list(doc["applied"])
    injector.messages_dropped = doc["messages_dropped"]
    injector.messages_delayed = doc["messages_delayed"]
    injector.messages_duplicated = doc["messages_duplicated"]
    restore_rng(injector.rng, doc["rng"])


# ----------------------------------------------------------------------
# Service
# ----------------------------------------------------------------------
def capture_service(service, include_shared: bool = True) -> dict[str, Any]:
    """Capture one :class:`~repro.service.service.StreamQueryService`.

    With ``include_shared`` (standalone services) the shared
    network/rates/hierarchy are embedded; fleet capture sets it False
    and captures them once at fleet scope instead.
    """
    doc: dict[str, Any] = {
        "version": STATE_VERSION,
        "clock": service.engine.clock,
        "statistics_epoch": service.statistics_epoch,
        "topology_epoch": service.topology_epoch,
        "rates_version_seen": service._rates_version,
        "network_version_seen": service._network_version,
        "priced_version": service.engine._priced_version,
        "expiry": dict(service._expiry),
        "pending_lifetimes": dict(service._pending_lifetimes),
        "counters": {
            "submitted_total": service.submitted_total,
            "deployed_total": service.deployed_total,
            "retired_total": service.retired_total,
            "plans_computed": service.plans_computed,
            "planning_seconds": service.planning_seconds,
        },
        "admission": _capture_admission(service.admission),
        "cache": _capture_cache(service.cache),
        "state": capture_deployment_state(service.engine.state),
        "resilience": (
            _capture_resilience(service.resilience)
            if service.resilience is not None
            else None
        ),
        "adaptivity": (
            _capture_adaptivity(service.adaptivity)
            if service.adaptivity is not None
            else None
        ),
        "faults": _capture_faults(service.faults),
    }
    if include_shared:
        doc["network"] = capture_network(service.network)
        doc["rates"] = capture_rates(service.rates)
        doc["hierarchy"] = (
            capture_hierarchy(service.hierarchy)
            if service.hierarchy is not None
            else None
        )
    return doc


def restore_service(service, doc: dict[str, Any], include_shared: bool = True) -> None:
    """Restore a captured service document into a pristine service.

    The service must have been built by the same deterministic factory
    (same optimizer/config/seeds); only the mutable state is assigned.
    """
    if include_shared:
        restore_network(service.network, doc["network"])
        restore_rates(service.rates, doc["rates"])
        if doc.get("hierarchy") is not None and service.hierarchy is not None:
            restore_hierarchy(service.hierarchy, doc["hierarchy"])
    service.engine.clock = doc["clock"]
    service.statistics_epoch = doc["statistics_epoch"]
    service.topology_epoch = doc["topology_epoch"]
    service._rates_version = doc["rates_version_seen"]
    service._network_version = doc["network_version_seen"]
    service._expiry = dict(doc["expiry"])
    service._pending_lifetimes = dict(doc["pending_lifetimes"])
    counters = doc["counters"]
    service.submitted_total = counters["submitted_total"]
    service.deployed_total = counters["deployed_total"]
    service.retired_total = counters["retired_total"]
    service.plans_computed = counters["plans_computed"]
    service.planning_seconds = counters["planning_seconds"]
    _restore_admission(service.admission, doc["admission"])
    _restore_cache(service.cache, doc["cache"])
    restore_deployment_state(service.engine.state, doc["state"])
    # Re-price flows against the (restored) network and adopt the priced
    # version the snapshot recorded, keeping epoch bookkeeping exact.
    service.engine.state.recompute_costs(service.network.cost_matrix())
    service.engine._priced_version = doc["priced_version"]
    if service.resilience is not None and doc["resilience"] is not None:
        _restore_resilience(service.resilience, doc["resilience"])
    if service.adaptivity is not None and doc["adaptivity"] is not None:
        _restore_adaptivity(service.adaptivity, doc["adaptivity"])
    _restore_faults(service.faults, doc["faults"])
    # Ads indexes are derived state: base advertisements were recreated
    # by the factory; view/federation records rebuild from deployments.
    if service.ads is not None:
        service.ads.sync_from_state(service.engine.state)


# ----------------------------------------------------------------------
# Fleet
# ----------------------------------------------------------------------
def capture_fleet(fleet) -> dict[str, Any]:
    """Capture a :class:`~repro.fleet.controller.FleetController`."""
    scheduler_doc = None
    if fleet.scheduler is not None:
        scheduler_doc = {
            "queues": [
                [
                    tenant,
                    [
                        {
                            "query": _query_to_dict(p.query),
                            "lifetime": p.lifetime,
                            "shard": p.shard,
                        }
                        for p in queue
                    ],
                ]
                for tenant, queue in fleet.scheduler._queues.items()
            ],
            "credit": dict(fleet.scheduler._credit),
            "enqueued_total": fleet.scheduler.enqueued_total,
            "picked_total": fleet.scheduler.picked_total,
        }
    federation_doc = None
    if fleet.federation is not None:
        federation_doc = {
            "epoch": fleet.federation.epoch,
            "syncs": fleet.federation.syncs,
            "imported_total": fleet.federation.imported_total,
            "withdrawn_total": fleet.federation.withdrawn_total,
            "promoted_total": fleet.federation.promoted_total,
            "imports": [
                sorted(
                    (
                        {"sig": sig_to_doc(sig), "node": node}
                        for sig, node in imports
                    ),
                    key=lambda d: ("|".join(d["sig"]["sources"]), d["node"]),
                )
                for imports in fleet.federation._imports
            ],
        }
    policy = fleet.router.policy
    policy_doc = None
    if hasattr(policy, "_shard_of_key"):
        policy_doc = [
            [level, coordinator, shard]
            for (level, coordinator), shard in sorted(policy._shard_of_key.items())
        ]
    return {
        "version": STATE_VERSION,
        "scope": "fleet",
        "clock": fleet.clock,
        "network": capture_network(fleet.network),
        "rates": capture_rates(fleet.rates),
        "hierarchy": capture_hierarchy(fleet.hierarchy),
        "shards": [
            capture_service(shard, include_shared=False) for shard in fleet.shards
        ],
        "router": {
            "owner": dict(fleet.router._owner),
            "routed_total": fleet.router.routed_total,
            "policy_keys": policy_doc,
        },
        "tenants": {
            "tenant_of": dict(fleet._tenant_of),
            "tenant_live": dict(fleet._tenant_live),
            "tenant_charge": dict(fleet._tenant_charge),
            # Per-tenant accounting counters live in the metric registry;
            # tenant_summary() reports them, so recovery must carry them.
            "instruments": {
                tenant: {
                    name: inst.total
                    for name, inst in instruments.items()
                    if hasattr(inst, "total")
                }
                for tenant, instruments in fleet._tenant_instruments.items()
            },
        },
        "scheduler": scheduler_doc,
        "counters": {
            "submitted_total": fleet.submitted_total,
            "rebalances_total": fleet.rebalances_total,
            "cross_shard_reuse_total": fleet.cross_shard_reuse_total,
        },
        "federation": federation_doc,
    }


def restore_fleet(fleet, doc: dict[str, Any]) -> None:
    """Restore a captured fleet document into a pristine fleet."""
    from repro.fleet.controller import _PendingSubmit

    restore_network(fleet.network, doc["network"])
    restore_rates(fleet.rates, doc["rates"])
    restore_hierarchy(fleet.hierarchy, doc["hierarchy"])
    fleet.clock = doc["clock"]
    for shard, shard_doc in zip(fleet.shards, doc["shards"]):
        restore_service(shard, shard_doc, include_shared=False)
    fleet.router._owner = {
        name: shard for name, shard in doc["router"]["owner"].items()
    }
    fleet.router.routed_total = doc["router"]["routed_total"]
    if doc["router"]["policy_keys"] is not None and hasattr(
        fleet.router.policy, "_shard_of_key"
    ):
        fleet.router.policy._shard_of_key = {
            (level, coordinator): shard
            for level, coordinator, shard in doc["router"]["policy_keys"]
        }
    tenants = doc["tenants"]
    fleet._tenant_of = dict(tenants["tenant_of"])
    fleet._tenant_live = dict(tenants["tenant_live"])
    fleet._tenant_charge = dict(tenants["tenant_charge"])
    for tenant, totals in tenants.get("instruments", {}).items():
        instruments = fleet._tenant_instruments.get(tenant, {})
        for name, total in totals.items():
            inst = instruments.get(name)
            if inst is not None and hasattr(inst, "sync_total"):
                inst.sync_total(total, time=fleet.clock)
    if fleet.scheduler is not None and doc["scheduler"] is not None:
        sched = doc["scheduler"]
        fleet.scheduler._queues = {
            tenant: deque(
                _PendingSubmit(
                    query=_query_from_dict(p["query"]),
                    lifetime=p["lifetime"],
                    shard=p["shard"],
                )
                for p in queue
            )
            for tenant, queue in sched["queues"]
        }
        fleet.scheduler._credit = dict(sched["credit"])
        fleet.scheduler.enqueued_total = sched["enqueued_total"]
        fleet.scheduler.picked_total = sched["picked_total"]
    counters = doc["counters"]
    fleet.submitted_total = counters["submitted_total"]
    fleet.rebalances_total = counters["rebalances_total"]
    fleet.cross_shard_reuse_total = counters["cross_shard_reuse_total"]
    if fleet.federation is not None and doc["federation"] is not None:
        fed = doc["federation"]
        fleet.federation.epoch = fed["epoch"]
        fleet.federation.syncs = fed["syncs"]
        fleet.federation.imported_total = fed["imported_total"]
        fleet.federation.withdrawn_total = fed["withdrawn_total"]
        fleet.federation.promoted_total = fed["promoted_total"]
        fleet.federation._imports = [
            {(sig_from_doc(e["sig"]), e["node"]) for e in imports}
            for imports in fed["imports"]
        ]
