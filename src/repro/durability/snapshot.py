"""Snapshot files: full ``repro.state`` envelopes keyed by journal LSN.

A snapshot captures the complete control-plane state *as of* journal
record ``lsn`` -- recovery restores the newest valid snapshot and
re-executes only the command records with larger LSNs.  Files are named
``snapshot-<lsn, zero-padded>.json`` so a lexicographic directory sort
is also an LSN sort, written atomically (temp file + rename) so a crash
can never leave a half-written file under the final name -- except when
a seeded ``mid_snapshot`` crash point deliberately does exactly that,
which is how the torn-snapshot recovery path stays tested.

The envelope carries a whole-document CRC-32; :func:`load_latest`
validates candidates newest-first and falls back to older snapshots,
reporting every file it had to skip.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any

from repro.durability.journal import SimulatedCrash, canonical_json

SNAPSHOT_KIND = "repro.state"
SNAPSHOT_VERSION = 1
SNAPSHOT_GLOB = "snapshot-*.json"


def snapshot_path(state_dir: str | Path, lsn: int) -> Path:
    """The canonical file path for the snapshot taken at ``lsn``."""
    return Path(state_dir) / f"snapshot-{lsn:012d}.json"


def snapshot_crc(doc: dict[str, Any]) -> int:
    """CRC-32 over the canonical JSON of the envelope minus ``crc``."""
    payload = {k: v for k, v in doc.items() if k != "crc"}
    return zlib.crc32(canonical_json(payload).encode("utf-8"))


def write_snapshot(
    state_dir: str | Path,
    lsn: int,
    scope: str,
    state: dict[str, Any],
    time: float = 0.0,
    retain: int = 2,
    journal=None,
) -> Path:
    """Write one snapshot atomically; prune old ones down to ``retain``.

    When ``journal`` is given and an armed ``mid_snapshot`` crash point
    is due, the write is torn on purpose: a truncated envelope lands at
    the *final* path (simulating a non-atomic writer dying mid-file)
    and :class:`SimulatedCrash` is raised.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    doc = {
        "kind": SNAPSHOT_KIND,
        "version": SNAPSHOT_VERSION,
        "lsn": lsn,
        "scope": scope,
        "time": time,
        "state": state,
    }
    doc["crc"] = snapshot_crc(doc)
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    path = snapshot_path(state_dir, lsn)
    if journal is not None:
        point = journal.pending_snapshot_crash()
        if point is not None:
            path.write_text(payload[: len(payload) // 2], encoding="utf-8")
            raise SimulatedCrash(
                f"crash point fired mid-snapshot at lsn={lsn}"
            )
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(path)
    _prune(state_dir, retain)
    return path


def _prune(state_dir: Path, retain: int) -> None:
    if retain < 1:
        retain = 1
    snapshots = sorted(state_dir.glob(SNAPSHOT_GLOB))
    for stale in snapshots[:-retain]:
        stale.unlink()


def list_snapshots(state_dir: str | Path) -> list[dict[str, Any]]:
    """Validity report for every snapshot file, oldest first.

    Each entry has ``file``, ``valid`` and either ``lsn``/``scope`` (for
    valid snapshots) or ``reason`` (for rejects).
    """
    out: list[dict[str, Any]] = []
    for path in sorted(Path(state_dir).glob(SNAPSHOT_GLOB)):
        doc, reason = _load_one(path)
        if doc is None:
            out.append({"file": path.name, "valid": False, "reason": reason})
        else:
            out.append(
                {
                    "file": path.name,
                    "valid": True,
                    "lsn": doc["lsn"],
                    "scope": doc["scope"],
                    "time": doc["time"],
                }
            )
    return out


def _load_one(path: Path) -> tuple[dict[str, Any] | None, str]:
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None, "not valid JSON (truncated write)"
    if not isinstance(doc, dict) or doc.get("kind") != SNAPSHOT_KIND:
        return None, f"not a {SNAPSHOT_KIND} envelope"
    if doc.get("version") != SNAPSHOT_VERSION:
        return None, f"unsupported snapshot version {doc.get('version')!r}"
    if snapshot_crc(doc) != doc.get("crc"):
        return None, "CRC mismatch"
    return doc, ""


def load_latest(
    state_dir: str | Path,
) -> tuple[dict[str, Any] | None, list[dict[str, Any]]]:
    """Newest valid snapshot envelope plus the list of rejected files.

    Candidates are tried newest-first; a truncated or corrupt file is
    recorded in the second return value and the search falls back to
    the next-older snapshot.  Returns ``(None, rejects)`` when no valid
    snapshot exists (recovery then replays the journal from LSN 0).
    """
    rejected: list[dict[str, Any]] = []
    for path in sorted(Path(state_dir).glob(SNAPSHOT_GLOB), reverse=True):
        doc, reason = _load_one(path)
        if doc is not None:
            return doc, rejected
        rejected.append({"file": path.name, "reason": reason})
    return None, rejected
