"""Crash-restart chaos harness: prove recovery converges, point by point.

The harness runs a *scripted* scenario twice per crash point:

1. **Baseline** -- the full script against a durable controller in a
   fresh state directory, no crash points armed.  Its journal supplies
   the candidate crash LSNs (command boundaries, deploy markers,
   migration barrier phases, the snapshot write) and its
   :func:`digest` is the ground truth.
2. **Crashed** -- a fresh state directory, the same script, one armed
   :class:`~repro.resilience.faults.CrashPoint`.  The run dies with
   :class:`~repro.durability.journal.SimulatedCrash` mid-append (or
   mid-snapshot), the harness rebuilds via
   :func:`~repro.durability.recovery.recover` with the scenario's
   deterministic factory, resumes the script at the first command the
   repaired journal does *not* contain, and digests the result.

Because every command is journaled *before* it executes, the resume
index is simply the count of valid command records after repair: a
durable command record means recovery replays that step (even when the
crash interrupted it halfway through, e.g. between two migration
barriers); a torn record means the step never happened and the resume
re-runs it.  Either way each script step executes exactly once in the
recovered world, so a correct recovery produces a digest identical to
the baseline -- deployments, placements, costs, queues, tenants,
federation, and the next ``extra_ticks`` tick reports.

Scenarios are pure functions of their seeds; nothing here reads a wall
clock.  ``repro chaos --crash-points N`` fronts
:func:`crash_restart_matrix`.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.durability.journal import (
    COMMAND_KINDS,
    JOURNAL_FILE,
    SimulatedCrash,
    scan_journal,
)
from repro.durability.recovery import recover
from repro.resilience.faults import CrashPoint

DEFAULT_EXTRA_TICKS = 5


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """A deterministic controller factory plus a command script.

    Attributes:
        scope: ``"service"`` or ``"fleet"``.
        factory: ``factory(state_dir)`` builds a pristine controller
            with durability bound to ``state_dir``.  Calling it twice
            with different directories yields behaviorally identical
            controllers (same seeds, same workload).
        steps: Script of command steps; each executes exactly one
            journaled command against the controller.
        queries: The workload catalog the script's submit steps index.
    """

    scope: str
    factory: Callable[[str | Path], Any]
    steps: list[dict[str, Any]] = field(default_factory=list)
    queries: list[Any] = field(default_factory=list)


def _service_env(state_dir: str | Path):
    from repro.adaptive.loop import AdaptivityConfig
    from repro.core import make_optimizer
    from repro.durability import DurabilityConfig
    from repro.hierarchy import build_hierarchy
    from repro.network.topology import transit_stub_by_size
    from repro.service import AdmissionController, StreamQueryService
    from repro.workload import WorkloadParams, generate_workload

    net = transit_stub_by_size(24, seed=7)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=8, num_queries=6, joins_per_query=(2, 3)),
        seed=8,
    )
    rates = workload.rate_model()
    hierarchy = build_hierarchy(net, max_cs=6, seed=0)
    optimizer = make_optimizer("top-down", net, rates, hierarchy=hierarchy)
    durability = (
        None
        if state_dir is None  # catalog probe build; no journal
        else DurabilityConfig(state_dir=state_dir, snapshot_interval=6)
    )
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        admission=AdmissionController(budget=8, max_per_tick=4),
        # Aggressive knobs so the script's drift observations actually
        # commit migrations -- the crash matrix needs journal records at
        # every barrier phase.
        adaptivity=AdaptivityConfig(
            hysteresis_ticks=1,
            publish_cooldown=1.0,
            min_relative_gain=0.0,
            query_cooldown=0.0,
            horizon=200.0,
            bytes_per_tuple=8.0,
            max_migrations_per_tick=2,
        ),
        durability=durability,
    )
    return service, workload


def service_scenario() -> Scenario:
    """Single-service script: churn, drift-driven migrations, failover.

    Covers every service command kind: submits, ticks, a retire, two
    drift observations (which commit migrations a few ticks later), a
    coordinator failure and its rejoin.
    """
    service, workload = _service_env(None)  # probe build for the catalog
    queries = list(workload)
    drift = {
        s: service.rates.streams[s].rate * (6.0 if i % 2 == 0 else 0.1)
        for i, s in enumerate(sorted(service.rates.streams))
    }
    failed = service.hierarchy.leaf_cluster(queries[0].sink).coordinator
    steps: list[dict[str, Any]] = []
    for i in range(len(queries)):
        steps.append({"op": "submit", "query": i, "lifetime": None})
    steps += [{"op": "tick"}] * 3
    steps.append({"op": "observe", "samples": dict(drift)})
    steps.append({"op": "tick"})
    steps.append({"op": "observe", "samples": dict(drift)})
    steps += [{"op": "tick"}] * 2
    steps.append({"op": "retire", "name": queries[1].name})
    steps.append({"op": "tick"})
    steps.append({"op": "node_failure", "node": failed})
    steps += [{"op": "tick"}] * 2
    steps.append({"op": "rejoin", "node": failed})
    steps += [{"op": "tick"}] * 3

    def factory(state_dir):
        built, _ = _service_env(state_dir)
        return built

    return Scenario("service", factory, steps, queries)


def _fleet_env(state_dir: str | Path):
    from repro.durability import DurabilityConfig
    from repro.fleet.controller import FleetController
    from repro.fleet.tenancy import Tenant
    from repro.hierarchy import build_hierarchy
    from repro.network.topology import transit_stub_by_size
    from repro.workload import WorkloadParams, generate_workload

    net = transit_stub_by_size(32, seed=7)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=10, num_queries=8, joins_per_query=(2, 3)),
        seed=9,
    )
    rates = workload.rate_model()
    hierarchy = build_hierarchy(net, max_cs=6, seed=0)
    fleet = FleetController(
        2,
        net,
        rates,
        hierarchy,
        policy="hash",
        budget=6,
        max_per_tick=3,
        tenants=[Tenant("acme", weight=2.0), Tenant("umbrella", weight=1.0)],
        durability=(
            None
            if state_dir is None  # catalog probe build; no journal
            else DurabilityConfig(state_dir=state_dir, snapshot_interval=6)
        ),
    )
    return fleet, workload


def fleet_scenario() -> Scenario:
    """Two-shard fleet script: tenant churn, a retire, a rebalance."""
    fleet, workload = _fleet_env(None)
    queries = list(workload)
    tenants = ["acme", "umbrella"]
    steps: list[dict[str, Any]] = []
    for i in range(len(queries)):
        steps.append(
            {
                "op": "submit",
                "query": i,
                "lifetime": None,
                "tenant": tenants[i % 2],
            }
        )
    steps += [{"op": "tick"}] * 4
    steps.append({"op": "retire", "name": queries[2].name})
    steps += [{"op": "tick"}] * 2
    # Move one live query to the other shard: the rebalance path emits
    # the same migrate_* barrier ladder the in-service migrator does.
    steps.append({"op": "rebalance", "query": 0, "target_shard": 1})
    steps += [{"op": "tick"}] * 4

    def factory(state_dir):
        built, _ = _fleet_env(state_dir)
        return built

    return Scenario("fleet", factory, steps, queries)


SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "service": service_scenario,
    "fleet": fleet_scenario,
}


# ----------------------------------------------------------------------
# Script execution
# ----------------------------------------------------------------------
def execute_step(scenario: Scenario, controller, step: dict[str, Any]) -> None:
    """Run one script step (= one journaled command) on ``controller``."""
    op = step["op"]
    if op == "submit":
        query = scenario.queries[step["query"]]
        if scenario.scope == "fleet":
            controller.submit(
                query, lifetime=step["lifetime"], tenant=step.get("tenant")
            )
        else:
            controller.submit(query, lifetime=step["lifetime"])
    elif op == "tick":
        controller.tick()
    elif op == "retire":
        controller.retire(step["name"])
    elif op == "observe":
        controller.observe_rates(step["samples"])
    elif op == "node_failure":
        controller.handle_node_failure(step["node"])
    elif op == "rejoin":
        controller.rejoin_node(step["node"])
    elif op == "rebalance":
        name = scenario.queries[step["query"]].name
        target = step["target_shard"]
        if controller.shard_of(name) == target:
            target = (target + 1) % controller.num_shards
        controller.rebalance(name, target)
    else:
        raise ValueError(f"unknown script op {op!r}")


def run_steps(
    scenario: Scenario, controller, start: int = 0
) -> tuple[bool, int]:
    """Execute the script from ``start``.

    Returns:
        ``(crashed, index)`` -- whether an armed crash point fired, and
        the index of the step it fired in (``len(steps)`` on a clean
        run).
    """
    for i in range(start, len(scenario.steps)):
        try:
            execute_step(scenario, controller, scenario.steps[i])
        except SimulatedCrash:
            return True, i
    return False, len(scenario.steps)


def resume_index(state_dir: str | Path) -> int:
    """First script step the repaired journal does *not* contain.

    Commands are journaled before they execute and each step issues
    exactly one, so the count of valid command records is the index of
    the first step the recovered controller still has to run.
    """
    records, _ = scan_journal(Path(state_dir) / JOURNAL_FILE)
    return sum(1 for rec in records if rec["kind"] in COMMAND_KINDS)


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def _tick_report_doc(report) -> dict[str, Any]:
    return {
        "time": report.time,
        "deployed": [list(d) if not isinstance(d, str) else d for d in report.deployed],
        "retired": [list(r) if not isinstance(r, str) else r for r in report.retired],
        "parked": list(getattr(report, "parked", []) or []),
        "migrated": list(getattr(report, "migrated", []) or []),
        "drift_streams": list(getattr(report, "drift_streams", []) or []),
    }


def _service_digest(service) -> dict[str, Any]:
    from repro.durability.state import placement_to_doc

    deployments = []
    for dep in sorted(service.engine.state.deployments, key=lambda d: d.query.name):
        deployments.append(
            {
                "query": dep.query.name,
                "placement": placement_to_doc(dep.plan, dep.placement),
            }
        )
    return {
        "clock": service.clock,
        "live": sorted(service.live_queries),
        "deployments": deployments,
        "total_cost": round(service.total_cost(), 9),
        "queued": service.admission.queued_names(),
        "expiry": {k: v for k, v in sorted(service._expiry.items())},
    }


def _fleet_digest(fleet) -> dict[str, Any]:
    import json

    from repro.durability.state import sig_to_doc

    shards = [_service_digest(shard) for shard in fleet.shards]
    federation = None
    if fleet.federation is not None:
        federation = {
            "epoch": fleet.federation.epoch,
            "imports": {
                str(sid): sorted(
                    json.dumps([sig_to_doc(sig), node], sort_keys=True)
                    for sig, node in fleet.federation.imports(sid)
                )
                for sid in range(fleet.num_shards)
            },
        }
    return {
        "clock": fleet.clock,
        "live": sorted(fleet.live_queries),
        "total_cost": round(fleet.total_cost(), 9),
        "owners": {
            name: fleet.shard_of(name) for name in sorted(fleet.live_queries)
        },
        "tenants": {
            t: dict(sorted(summary.items()))
            for t, summary in sorted(fleet.tenant_summary().items())
        },
        "shards": shards,
        "federation": federation,
    }


def invariant_violations(scenario: Scenario, controller) -> list[str]:
    """Hierarchy + fleet invariants, flattened to one list."""
    violations: list[str] = []
    if scenario.scope == "fleet":
        violations += controller.check_invariants()
        violations += controller.hierarchy.invariant_violations()
    else:
        if controller.hierarchy is not None:
            violations += controller.hierarchy.invariant_violations()
    return violations


def digest(
    scenario: Scenario, controller, extra_ticks: int = DEFAULT_EXTRA_TICKS
) -> dict[str, Any]:
    """Deterministic end-state fingerprint plus the next-N tick reports.

    Mutates the controller (drives ``extra_ticks`` further ticks) -- a
    recovered control plane must not only match the baseline's state
    but keep making the same decisions going forward.
    """
    doc = (
        _fleet_digest(controller)
        if scenario.scope == "fleet"
        else _service_digest(controller)
    )
    future = []
    for _ in range(extra_ticks):
        future.append(_tick_report_doc(controller.tick()))
    doc["next_ticks"] = future
    return doc


# ----------------------------------------------------------------------
# Crash-point selection
# ----------------------------------------------------------------------
def default_crash_points(
    records: list[dict[str, Any]], limit: int | None = None
) -> list[CrashPoint]:
    """Pick a covering set of crash points from a baseline journal.

    One clean crash after the first record of every distinct kind the
    journal contains (commands, deploy/retire markers, every migration
    barrier phase seen, tick boundaries), a ``mid_snapshot`` point
    aimed at each snapshot write, torn-tail variants of the first and
    last records, and a clean crash at the very last record.
    """
    points: list[CrashPoint] = []
    seen: set[tuple[int, bool, bool]] = set()

    def add(after_lsn: int, time: float, torn: bool = False, mid: bool = False) -> None:
        key = (after_lsn, torn, mid)
        if after_lsn < 1 or key in seen:
            return
        seen.add(key)
        points.append(
            CrashPoint(
                time=time, after_lsn=after_lsn, torn_tail=torn, mid_snapshot=mid
            )
        )

    first_of_kind: dict[str, dict[str, Any]] = {}
    for rec in records:
        kind = rec["kind"]
        if kind == "migrate_phase":
            kind = f"migrate_phase:{rec['data']['phase']}"
        if kind not in first_of_kind:
            first_of_kind[kind] = rec
    for kind, rec in sorted(first_of_kind.items(), key=lambda kv: kv[1]["lsn"]):
        if kind == "snapshot":
            # The snapshot marker follows the write; aim a mid-snapshot
            # crash at the LSN the snapshot was cut at, so the torn file
            # lands exactly where the original did.
            add(rec["data"]["lsn"], rec["time"], mid=True)
        else:
            add(rec["lsn"], rec["time"])
    if records:
        add(records[0]["lsn"], records[0]["time"], torn=True)
        last = records[-1]
        add(last["lsn"], last["time"])
        mid = records[len(records) // 2]
        add(mid["lsn"], mid["time"], torn=True)
    if limit is not None:
        points = points[:limit]
    return points


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def crash_restart_matrix(
    scenario: Scenario,
    state_root: str | Path,
    points: list[CrashPoint] | None = None,
    extra_ticks: int = DEFAULT_EXTRA_TICKS,
    keep_dirs: bool = False,
) -> dict[str, Any]:
    """Run the full crash/recover/resume equivalence matrix.

    Args:
        scenario: The scripted scenario (:func:`service_scenario` /
            :func:`fleet_scenario`).
        state_root: Directory for the per-run state directories.
        points: Crash points to test; default: a covering set derived
            from the baseline journal (:func:`default_crash_points`).
        extra_ticks: Post-script ticks each digest must agree on.
        keep_dirs: Keep per-point state directories for inspection.

    Returns:
        A JSON-ready report: the baseline summary, one entry per crash
        point (fired / recovery stats / digest match / invariant
        violations), and ``converged`` -- True iff every point fired,
        matched the baseline digest and recovered with zero violations.
    """
    state_root = Path(state_root)
    state_root.mkdir(parents=True, exist_ok=True)

    baseline_dir = state_root / "baseline"
    baseline = scenario.factory(baseline_dir)
    crashed, _ = run_steps(scenario, baseline)
    if crashed:  # pragma: no cover - baseline is never armed
        raise RuntimeError("baseline run crashed; no crash points were armed")
    records, _ = scan_journal(baseline_dir / JOURNAL_FILE)
    baseline_digest = digest(scenario, baseline, extra_ticks=extra_ticks)
    if points is None:
        points = default_crash_points(records)

    report: dict[str, Any] = {
        "scope": scenario.scope,
        "steps": len(scenario.steps),
        "journal_records": len(records),
        "extra_ticks": extra_ticks,
        "points": [],
        "converged": True,
    }
    for k, point in enumerate(points):
        run_dir = state_root / f"point-{k:03d}"
        entry: dict[str, Any] = {
            "index": k,
            "after_lsn": point.after_lsn,
            "torn_tail": point.torn_tail,
            "mid_snapshot": point.mid_snapshot,
        }
        controller = scenario.factory(run_dir)
        controller.durability.arm([point])
        fired, step_index = run_steps(scenario, controller)
        entry["fired"] = fired
        entry["crashed_in_step"] = step_index if fired else None
        if not fired:
            entry["error"] = "crash point never fired (after_lsn beyond journal end)"
            report["converged"] = False
            report["points"].append(entry)
            continue

        recovered, recovery = recover(run_dir, lambda: scenario.factory(run_dir))
        entry["recovery"] = {
            "snapshot_lsn": recovery.snapshot_lsn,
            "replayed_records": recovery.replayed_records,
            "replayed_ticks": recovery.replayed_ticks,
            "dropped_lines": recovery.journal_drop["dropped_lines"],
            "snapshots_rejected": len(recovery.snapshots_rejected),
            "in_flight_migrations": recovery.in_flight_migrations,
        }
        start = resume_index(run_dir)
        entry["resumed_at_step"] = start
        crashed_again, _ = run_steps(scenario, recovered, start=start)
        if crashed_again:  # pragma: no cover - recovery never arms points
            raise RuntimeError("crash point fired again after recovery")
        violations = invariant_violations(scenario, recovered)
        entry["invariant_violations"] = violations
        entry["digest_match"] = (
            digest(scenario, recovered, extra_ticks=extra_ticks)
            == baseline_digest
        )
        if not entry["digest_match"] or violations:
            report["converged"] = False
        report["points"].append(entry)
        if not keep_dirs:
            shutil.rmtree(run_dir, ignore_errors=True)

    report["points_fired"] = sum(1 for p in report["points"] if p["fired"])
    report["points_matched"] = sum(
        1 for p in report["points"] if p.get("digest_match")
    )
    return report
