"""The write-ahead journal: typed, CRC-checked, LSN-ordered JSON lines.

One :class:`Journal` backs one control plane (a
:class:`~repro.service.service.StreamQueryService` or a
:class:`~repro.fleet.controller.FleetController`).  Every record is one
JSON line ``{"lsn", "kind", "time", "data", "crc"}`` where ``crc`` is
the CRC-32 of the canonical JSON of the other four fields, and ``lsn``
is a strictly monotonic log sequence number starting at 1.

Records come in two flavours:

* **commands** (:data:`COMMAND_KINDS`) are journaled *before* the
  control plane executes them, and are the only records
  :func:`repro.durability.recovery.recover` re-executes -- the control
  plane is deterministic, so replaying the command suffix after a
  snapshot reconstructs the exact pre-crash state;
* **markers** (:data:`MARKER_KINDS`) are appended *during* execution
  (admission verdicts, deploys, migration barrier phases, federation
  publications, ...).  They are never replayed; they exist so crash
  points can target every interesting instant between two state
  changes, and so ``repro recover --inspect`` can tell exactly how far
  an in-flight migration got.

Torn writes are first-class: :func:`scan_journal` accepts any file
whose suffix is garbage (a half-written line, a CRC mismatch, an LSN
gap) and reports exactly which records were dropped;
:func:`repair_journal` additionally quarantines the bad suffix to a
side file and truncates the journal so appends can resume cleanly.

Crash injection lives here too: :meth:`Journal.arm` takes the seeded
:class:`~repro.resilience.faults.CrashPoint` events of a fault plan and
raises :class:`SimulatedCrash` at the exact record boundary each one
names (optionally tearing the record being written).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterable

JOURNAL_VERSION = 1
JOURNAL_FILE = "journal.jsonl"

#: Records that are journaled *before* execution and re-executed on
#: recovery.  Everything else in the journal is a marker.
COMMAND_KINDS = frozenset(
    {
        "cmd_submit",
        "cmd_tick",
        "cmd_retire",
        "cmd_node_failure",
        "cmd_rejoin",
        "cmd_observe",
        "cmd_rebalance",
    }
)

#: Records appended mid-execution; never replayed, only inspected.
MARKER_KINDS = frozenset(
    {
        "admit",
        "deploy",
        "park",
        "retire",
        "migrate_begin",
        "migrate_phase",
        "migrate_commit",
        "migrate_abort",
        "federation_publish",
        "federation_withdraw",
        "tenant_accounting",
        "snapshot",
        "tick_end",
    }
)


class SimulatedCrash(RuntimeError):
    """An armed :class:`~repro.resilience.faults.CrashPoint` fired.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the
    resilience retry ladders catch ``ReproError``, and a simulated
    process death must rip straight through them the way a real
    ``kill -9`` would.
    """


def canonical_json(doc: Any) -> str:
    """Canonical (sorted-keys, no-whitespace) JSON used for CRCs."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def record_crc(lsn: int, kind: str, time: float, data: Any) -> int:
    """CRC-32 over the canonical JSON of a record's payload fields."""
    payload = canonical_json({"lsn": lsn, "kind": kind, "time": time, "data": data})
    return zlib.crc32(payload.encode("utf-8"))


def encode_record(lsn: int, kind: str, time: float, data: Any) -> str:
    """One journal line (no trailing newline) with its CRC filled in."""
    doc = {
        "lsn": lsn,
        "kind": kind,
        "time": time,
        "data": data,
        "crc": record_crc(lsn, kind, time, data),
    }
    return canonical_json(doc)


class Journal:
    """Append-only WAL over one ``journal.jsonl`` file.

    Args:
        path: The journal file (created lazily on first append).
        fsync: Fsync after every append.  Off by default -- the tests
            and the simulator only need crash *semantics*, not disk
            guarantees -- but the counter is maintained either way so
            the ``durability_journal_fsyncs_total`` instrument is real
            when it is on.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        #: LSN of the last durable record (0 = empty journal).
        self.lsn = 0
        self.records_total = 0
        self.fsyncs_total = 0
        self.bytes_total = 0
        #: While True (recovery replay), every append is a no-op.
        self.replaying = False
        self._fh = None
        self._armed: list[Any] = []
        self._fired: set[int] = set()

    # ------------------------------------------------------------------
    # Crash injection
    # ------------------------------------------------------------------
    def arm(self, points: Iterable[Any]) -> None:
        """Arm seeded crash points (fault-plan ``CrashPoint`` events).

        Each point fires at most once, when the journal reaches the
        record boundary it names (see :meth:`append` /
        :meth:`pending_snapshot_crash`).  Arming is explicit -- a
        recovered controller starts unarmed, so recovery never
        re-triggers the crash it is recovering from.
        """
        self._armed.extend(points)

    def _next_crash(self, lsn: int, mid_snapshot: bool):
        for i, point in enumerate(self._armed):
            if i in self._fired:
                continue
            if bool(getattr(point, "mid_snapshot", False)) != mid_snapshot:
                continue
            if lsn >= point.after_lsn:
                self._fired.add(i)
                return point
        return None

    def pending_snapshot_crash(self):
        """The armed mid-snapshot point due at the current LSN, if any."""
        return self._next_crash(self.lsn, mid_snapshot=True)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, kind: str, time: float, data: Any) -> int | None:
        """Append one record; returns its LSN (``None`` during replay).

        If an armed crash point is due at this boundary the process
        "dies" here: a clean point writes the record fully and then
        raises :class:`SimulatedCrash` (the record *is* durable); a
        ``torn_tail`` point writes only a prefix of the line with no
        newline before raising (the record is torn and a later
        :func:`scan_journal` will drop it).
        """
        if kind not in COMMAND_KINDS and kind not in MARKER_KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        if self.replaying:
            return None
        lsn = self.lsn + 1
        line = encode_record(lsn, kind, time, data)
        point = self._next_crash(lsn, mid_snapshot=False)
        if point is not None and point.torn_tail:
            # Tear the record: half the bytes, no newline, then die.
            self._write(line[: max(1, len(line) // 2)])
            raise SimulatedCrash(
                f"crash point fired tearing record lsn={lsn} kind={kind!r}"
            )
        self._write(line + "\n")
        self.lsn = lsn
        self.records_total += 1
        if point is not None:
            raise SimulatedCrash(
                f"crash point fired after record lsn={lsn} kind={kind!r}"
            )
        return lsn

    def _write(self, text: str) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(text)
        self._fh.flush()
        self.bytes_total += len(text)
        if self.fsync:
            os.fsync(self._fh.fileno())
            self.fsyncs_total += 1

    def close(self) -> None:
        """Close the backing file (reopened lazily on the next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Scanning and repair
# ----------------------------------------------------------------------
def _validate_line(line: str, expect_lsn: int) -> tuple[dict[str, Any] | None, str]:
    try:
        doc = json.loads(line)
    except ValueError:
        return None, "not valid JSON (torn write)"
    if not isinstance(doc, dict):
        return None, "record is not a JSON object"
    missing = {"lsn", "kind", "time", "data", "crc"} - set(doc)
    if missing:
        return None, f"missing fields {sorted(missing)}"
    if doc["lsn"] != expect_lsn:
        return None, f"LSN gap: expected {expect_lsn}, found {doc['lsn']}"
    if record_crc(doc["lsn"], doc["kind"], doc["time"], doc["data"]) != doc["crc"]:
        return None, "CRC mismatch"
    return doc, ""


def scan_journal(path: str | Path) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Read every valid record; report the dropped suffix, if any.

    Validation is prefix-greedy: records are accepted while each line
    parses, carries the expected monotonic LSN, and its CRC matches.
    The first failure quarantines everything after it (a torn tail can
    shear a line such that later bytes *look* parseable; trusting any
    suffix past a corruption would be unsound).

    Returns ``(records, report)`` where ``report`` has ``records``
    (accepted), ``last_lsn``, ``dropped_lines``, ``dropped_bytes``, and
    ``reason`` (empty string when the journal is fully clean).
    """
    path = Path(path)
    records: list[dict[str, Any]] = []
    report: dict[str, Any] = {
        "records": 0,
        "last_lsn": 0,
        "dropped_lines": 0,
        "dropped_bytes": 0,
        "reason": "",
    }
    if not path.exists():
        return records, report
    raw = path.read_text(encoding="utf-8")
    consumed = 0
    lines = raw.split("\n")
    for i, line in enumerate(lines):
        if line == "":
            consumed += 1  # the newline itself (or trailing empty split)
            continue
        doc, problem = _validate_line(line, len(records) + 1)
        if doc is None:
            report["reason"] = f"line {i + 1}: {problem}"
            break
        records.append(doc)
        consumed += len(line) + 1
    else:
        consumed = len(raw) + 1
    good_bytes = min(consumed, len(raw))
    if report["reason"]:
        bad = raw[good_bytes:]
        report["dropped_bytes"] = len(bad)
        report["dropped_lines"] = sum(1 for l in bad.split("\n") if l)
    report["records"] = len(records)
    report["last_lsn"] = records[-1]["lsn"] if records else 0
    report["valid_bytes"] = good_bytes
    return records, report


def repair_journal(path: str | Path) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Scan; quarantine any corrupt suffix and truncate the journal.

    The bad bytes are moved to ``<journal>.quarantine-<k>`` (never
    overwritten -- repeated crashes keep distinct evidence files) and
    the journal is truncated to its last valid record, so a reopened
    :class:`Journal` appends cleanly after the repaired tail.  Returns
    the same ``(records, report)`` as :func:`scan_journal`, with
    ``report["quarantined_to"]`` set when a suffix was cut.
    """
    path = Path(path)
    records, report = scan_journal(path)
    if report["reason"] and path.exists():
        raw = path.read_bytes()
        good = raw[: report["valid_bytes"]]
        bad = raw[report["valid_bytes"]:]
        k = 0
        while True:
            quarantine = path.with_name(f"{path.name}.quarantine-{k}")
            if not quarantine.exists():
                break
            k += 1
        quarantine.write_bytes(bad)
        path.write_bytes(good)
        report["quarantined_to"] = quarantine.name
    return records, report
