"""Crash recovery: snapshot restore + deterministic command replay.

:func:`recover` rebuilds a crashed control plane in three steps:

1. **Repair** -- scan the journal, quarantine any torn/corrupt suffix
   (CRC mismatch, LSN gap, half-written line) and truncate to the last
   valid record; reject truncated/corrupt snapshots and fall back to
   the newest older valid one.
2. **Restore** -- build a *pristine* controller with the caller's
   deterministic factory (same seeds, same config) and assign the
   snapshot state into it (:mod:`repro.durability.state`).
3. **Replay** -- re-execute every *command* record with LSN greater
   than the snapshot's through the controller's ordinary code paths,
   with journaling suppressed.  The control plane is deterministic (no
   wall clock in decisions, seeded RNGs are part of the snapshot), so
   replay converges on the exact pre-crash state -- including rolling
   an in-flight migration forward through the same barrier phases the
   journal recorded for the crashed run.

Marker records are never replayed; they are *evidence*.  In-flight
migrations (a ``migrate_begin`` with no ``migrate_commit`` /
``migrate_abort``) are classified by their last recorded barrier phase
for :func:`inspect_state_dir` and the recovery report, and resolve
during replay of their enclosing command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.durability.journal import (
    COMMAND_KINDS,
    JOURNAL_FILE,
    repair_journal,
    scan_journal,
)
from repro.durability.snapshot import list_snapshots, load_latest


@dataclass
class RecoveryReport:
    """What one :func:`recover` call did.

    Attributes:
        scope: ``"service"`` or ``"fleet"``.
        snapshot_lsn: LSN of the restored snapshot (0 = none existed;
            the whole journal was replayed).
        snapshot_file: File name of the restored snapshot, if any.
        last_lsn: LSN of the last valid journal record.
        replayed_records: Command records re-executed.
        replayed_ticks: Tick commands among them.
        journal_drop: The journal scan/repair report (torn-tail info).
        snapshots_rejected: Snapshot files skipped as corrupt/truncated.
        in_flight_migrations: Migrations that were mid-cutover at crash
            time, each with the last barrier phase the journal recorded.
    """

    scope: str = ""
    snapshot_lsn: int = 0
    snapshot_file: str = ""
    last_lsn: int = 0
    replayed_records: int = 0
    replayed_ticks: int = 0
    journal_drop: dict[str, Any] = field(default_factory=dict)
    snapshots_rejected: list[dict[str, Any]] = field(default_factory=list)
    in_flight_migrations: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-ready) form."""
        return {
            "scope": self.scope,
            "snapshot_lsn": self.snapshot_lsn,
            "snapshot_file": self.snapshot_file,
            "last_lsn": self.last_lsn,
            "replayed_records": self.replayed_records,
            "replayed_ticks": self.replayed_ticks,
            "journal_drop": dict(self.journal_drop),
            "snapshots_rejected": list(self.snapshots_rejected),
            "in_flight_migrations": list(self.in_flight_migrations),
        }


def classify_in_flight_migrations(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Migrations begun but not committed/aborted, by last phase seen.

    The phase ladder is ``begin -> pause -> transfer -> resume -> swap
    -> commit|abort``; an entry's ``phase`` is the deepest barrier the
    journal recorded before the crash (``"begin"`` when the crash hit
    before the first barrier record).
    """
    open_migrations: dict[str, dict[str, Any]] = {}
    for rec in records:
        kind = rec["kind"]
        if kind == "migrate_begin":
            data = dict(rec["data"])
            open_migrations[data["query"]] = {
                "query": data["query"],
                "begin_lsn": rec["lsn"],
                "phase": "begin",
                "data": data,
            }
        elif kind == "migrate_phase":
            entry = open_migrations.get(rec["data"]["query"])
            if entry is not None:
                entry["phase"] = rec["data"]["phase"]
        elif kind in ("migrate_commit", "migrate_abort"):
            open_migrations.pop(rec["data"]["query"], None)
    return [open_migrations[name] for name in sorted(open_migrations)]


# ----------------------------------------------------------------------
# Command dispatch
# ----------------------------------------------------------------------
def _replay_command(controller, scope: str, rec: dict[str, Any]) -> None:
    """Re-execute one command record through the ordinary code paths.

    Exceptions are swallowed: a command that failed validation when it
    was first journaled (duplicate name, unknown stream, planning
    error surfaced to the caller) fails identically on replay, and in
    both runs the caller saw the error while the control plane kept
    its state.
    """
    from repro.serialization import _query_from_dict

    kind = rec["kind"]
    data = rec["data"]
    try:
        if kind == "cmd_submit":
            query = _query_from_dict(data["query"])
            if scope == "fleet":
                controller.submit(
                    query,
                    lifetime=data["lifetime"],
                    time=data["time"],
                    tenant=data.get("tenant"),
                )
            else:
                controller.submit(query, lifetime=data["lifetime"], time=data["time"])
        elif kind == "cmd_tick":
            controller.tick(data["time"])
        elif kind == "cmd_retire":
            controller.retire(data["name"])
        elif kind == "cmd_node_failure":
            controller.handle_node_failure(data["node"])
        elif kind == "cmd_rejoin":
            controller.rejoin_node(data["node"])
        elif kind == "cmd_observe":
            controller.observe_rates(data["samples"], time=data.get("time"))
        elif kind == "cmd_rebalance":
            controller.rebalance(data["name"], data["target_shard"])
        else:  # pragma: no cover - COMMAND_KINDS is closed
            raise ValueError(f"unknown command kind {kind!r}")
    except Exception:
        pass


def recover(
    state_dir: str | Path,
    factory: Callable[[], Any],
) -> tuple[Any, RecoveryReport]:
    """Rebuild a crashed controller from ``state_dir``.

    Args:
        state_dir: The durability directory of the crashed run.
        factory: Deterministic constructor returning a pristine
            controller (service or fleet) whose ``durability=`` config
            points at the same ``state_dir``.  It must reproduce the
            original construction exactly (same topology seeds, same
            workload catalog, same layer configs).

    Returns:
        ``(controller, report)`` -- the recovered controller, ready to
        serve, with its journal positioned after the last valid record.
    """
    state_dir = Path(state_dir)
    controller = factory()
    durability = getattr(controller, "durability", None)
    if durability is None:
        raise ValueError(
            "factory() must return a controller constructed with a "
            "durability= config pointing at the state_dir"
        )

    records, journal_drop = repair_journal(state_dir / JOURNAL_FILE)
    snapshot, rejected = load_latest(state_dir)

    report = RecoveryReport(
        scope=durability.scope,
        journal_drop=journal_drop,
        snapshots_rejected=rejected,
        last_lsn=records[-1]["lsn"] if records else 0,
        in_flight_migrations=classify_in_flight_migrations(records),
    )

    if snapshot is not None:
        from repro.durability.state import restore_fleet, restore_service

        if snapshot["scope"] != durability.scope:
            raise ValueError(
                f"snapshot scope {snapshot['scope']!r} does not match "
                f"controller scope {durability.scope!r}"
            )
        report.snapshot_lsn = snapshot["lsn"]
        report.snapshot_file = f"snapshot-{snapshot['lsn']:012d}.json"
        if durability.scope == "fleet":
            restore_fleet(controller, snapshot["state"])
        else:
            restore_service(controller, snapshot["state"])

    durability.journal.replaying = True
    try:
        for rec in records:
            if rec["lsn"] <= report.snapshot_lsn:
                continue
            if rec["kind"] not in COMMAND_KINDS:
                continue
            _replay_command(controller, durability.scope, rec)
            report.replayed_records += 1
            if rec["kind"] == "cmd_tick":
                report.replayed_ticks += 1
    finally:
        durability.journal.replaying = False
    durability.journal.lsn = report.last_lsn
    durability.journal.records_total = len(records)
    now = getattr(controller, "clock", 0.0)
    durability.note_recovery(report.replayed_records, report.replayed_ticks, now)
    return controller, report


def inspect_state_dir(state_dir: str | Path) -> dict[str, Any]:
    """Read-only report of a state directory (``repro recover --inspect``).

    Reports the journal's valid prefix and exactly what a recovery
    would drop (torn tail, corrupt snapshots), command/marker counts by
    kind, the snapshot inventory, in-flight migrations and which
    snapshot + replay suffix a recovery would use.  Touches nothing on
    disk.
    """
    state_dir = Path(state_dir)
    records, journal_drop = scan_journal(state_dir / JOURNAL_FILE)
    snapshot, rejected = load_latest(state_dir)
    kinds: dict[str, int] = {}
    for rec in records:
        kinds[rec["kind"]] = kinds.get(rec["kind"], 0) + 1
    snapshot_lsn = snapshot["lsn"] if snapshot is not None else 0
    replay = [
        rec
        for rec in records
        if rec["lsn"] > snapshot_lsn and rec["kind"] in COMMAND_KINDS
    ]
    return {
        "state_dir": str(state_dir),
        "journal": {
            "records": journal_drop["records"],
            "last_lsn": journal_drop["last_lsn"],
            "dropped_lines": journal_drop["dropped_lines"],
            "dropped_bytes": journal_drop["dropped_bytes"],
            "drop_reason": journal_drop["reason"],
            "kinds": dict(sorted(kinds.items())),
        },
        "snapshots": list_snapshots(state_dir),
        "snapshots_rejected": rejected,
        "recovery": {
            "scope": snapshot["scope"] if snapshot is not None else "",
            "snapshot_lsn": snapshot_lsn,
            "replay_records": len(replay),
            "replay_ticks": sum(1 for r in replay if r["kind"] == "cmd_tick"),
        },
        "in_flight_migrations": classify_in_flight_migrations(records),
    }
