"""Durable control plane: write-ahead journal, snapshots, recovery.

The layer follows the repo's opt-in contract (same as telemetry,
resilience and adaptivity): ``durability=None`` leaves the service and
fleet *byte-identical* to a build without the layer -- no journal, no
instruments, no behavioural change -- which the regression tests
enforce.  Passing a :class:`DurabilityConfig` (or a pre-built
:class:`Durability`) arms the full pipeline:

* every externally driven mutation (submit/tick/retire/node
  failure/rejoin/observe/rebalance) is journaled as a **command record
  before execution**;
* execution appends **marker records** (admission verdicts, deploys,
  parks, retires, migration barrier phases, federation publications,
  tenant accounting) that give crash points a boundary between every
  two state changes;
* every ``snapshot_interval`` ticks the full control-plane state is
  snapshotted as a ``repro.state`` envelope keyed by journal LSN;
* :func:`repro.durability.recovery.recover` rebuilds a crashed
  controller from the newest valid snapshot plus a deterministic
  replay of the command suffix.

See ``docs/durability.md`` for the journal format, snapshot cadence and
the crash-point matrix the chaos harness proves convergence over.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.durability.journal import (
    COMMAND_KINDS,
    JOURNAL_FILE,
    MARKER_KINDS,
    Journal,
    SimulatedCrash,
    repair_journal,
    scan_journal,
)
from repro.durability.snapshot import (
    SNAPSHOT_KIND,
    list_snapshots,
    load_latest,
    write_snapshot,
)


@dataclass(frozen=True)
class DurabilityConfig:
    """Configuration for the durability layer.

    Attributes:
        state_dir: Directory holding ``journal.jsonl``, snapshots and
            persisted flight-recorder bundles.
        snapshot_interval: Ticks between snapshots (snapshots are only
            taken at tick boundaries, so every command record past a
            snapshot's LSN is replayable whole).
        retain_snapshots: Snapshots kept on disk; older ones are pruned
            after each write.  Keep at least 2 so a torn newest
            snapshot still leaves a valid fallback.
        fsync: Fsync the journal after every append.
    """

    state_dir: str
    snapshot_interval: int = 25
    retain_snapshots: int = 2
    fsync: bool = False

    def __post_init__(self) -> None:
        if not self.state_dir:
            raise ValueError("durability needs a state_dir")
        if self.snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        if self.retain_snapshots < 1:
            raise ValueError("retain_snapshots must be >= 1")


class Durability:
    """One journal + snapshot pipeline bound to one control plane.

    Built from a :class:`DurabilityConfig` and bound by the service or
    fleet constructor via :meth:`bind_service` / :meth:`bind_fleet`.
    The control plane calls :meth:`command` before executing an
    externally driven mutation, :meth:`marker` at interesting points
    during execution, and :meth:`maybe_snapshot` at tick boundaries.
    All three are no-ops while recovery replay is in progress.
    """

    def __init__(self, config: DurabilityConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.journal = Journal(self.state_dir / JOURNAL_FILE, fsync=config.fsync)
        self.scope = ""
        self.snapshots_total = 0
        self.recovered = False
        self._controller: Any = None
        self._ticks_since_snapshot = 0
        self._instruments: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind_service(self, service) -> None:
        """Attach to a standalone :class:`StreamQueryService`."""
        from repro.durability.state import capture_service

        self.scope = "service"
        self._controller = service
        self._capture = lambda: capture_service(service)
        self._bind_instruments(service.registry)
        self._persist_flight(getattr(service, "telemetry", None))

    def bind_fleet(self, fleet) -> None:
        """Attach to a :class:`FleetController` (fleet-scope journal).

        Shard sub-services stay undurable on purpose: the fleet journals
        at its own boundary and replays through the same shard code
        paths, so per-shard journals would only record every mutation
        twice.
        """
        from repro.durability.state import capture_fleet

        self.scope = "fleet"
        self._controller = fleet
        self._capture = lambda: capture_fleet(fleet)
        self._bind_instruments(fleet.registry)
        self._persist_flight(getattr(fleet, "telemetry", None))

    def _persist_flight(self, telemetry) -> None:
        # Satellite: alert-frozen debug bundles survive a crash by
        # landing under <state_dir>/flight as they are cut.
        recorder = getattr(telemetry, "recorder", None)
        if recorder is not None:
            recorder.persist_dir = self.state_dir / "flight"

    def _bind_instruments(self, registry) -> None:
        self._instruments = {
            "records": registry.counter(
                "durability_journal_records_total",
                "Journal records appended (commands + markers)",
            ),
            "bytes": registry.counter(
                "durability_journal_bytes_total",
                "Bytes appended to the journal",
            ),
            "fsyncs": registry.counter(
                "durability_journal_fsyncs_total",
                "Journal fsync calls (0 unless fsync is configured)",
            ),
            "snapshots": registry.counter(
                "durability_snapshots_total",
                "State snapshots written",
            ),
            "recovery_records": registry.counter(
                "durability_recovery_replayed_records",
                "Command records re-executed by the last recovery",
            ),
            "recovery_ticks": registry.counter(
                "durability_recovery_ticks",
                "Tick commands re-executed by the last recovery",
            ),
        }

    # ------------------------------------------------------------------
    # Journal hooks (called by the control plane)
    # ------------------------------------------------------------------
    def command(self, kind: str, time: float, data: Any) -> int | None:
        """Journal one command record *before* the mutation executes."""
        assert kind in COMMAND_KINDS, kind
        return self._append(kind, time, data)

    def marker(self, kind: str, time: float, data: Any) -> int | None:
        """Journal one marker record mid-execution (never replayed)."""
        assert kind in MARKER_KINDS, kind
        return self._append(kind, time, data)

    def _append(self, kind: str, time: float, data: Any) -> int | None:
        if self.journal.replaying:
            return None
        lsn = self.journal.append(kind, time, data)
        if self._instruments:
            self._instruments["records"].sync_total(
                self.journal.records_total, time=time
            )
            self._instruments["bytes"].sync_total(self.journal.bytes_total, time=time)
            self._instruments["fsyncs"].sync_total(
                self.journal.fsyncs_total, time=time
            )
        return lsn

    def maybe_snapshot(self, time: float) -> Path | None:
        """Count one tick boundary; snapshot when the interval elapses."""
        if self.journal.replaying:
            return None
        self._ticks_since_snapshot += 1
        if self._ticks_since_snapshot < self.config.snapshot_interval:
            return None
        return self.snapshot(time)

    def snapshot(self, time: float) -> Path:
        """Capture and write one snapshot at the current journal LSN."""
        self._ticks_since_snapshot = 0
        lsn = self.journal.lsn
        path = write_snapshot(
            self.state_dir,
            lsn,
            self.scope,
            self._capture(),
            time=time,
            retain=self.config.retain_snapshots,
            journal=self.journal,
        )
        self.snapshots_total += 1
        if self._instruments:
            self._instruments["snapshots"].inc(time=time)
        self.marker("snapshot", time, {"lsn": lsn, "file": path.name})
        return path

    # ------------------------------------------------------------------
    # Crash injection and recovery bookkeeping
    # ------------------------------------------------------------------
    def arm(self, plan_or_points) -> int:
        """Arm seeded crash points from a fault plan (or an iterable).

        Arming is explicit and one-shot: the chaos harness arms only
        the run meant to die, so the recovered controller does not
        immediately re-crash on the same point.  Returns the number of
        points armed.
        """
        from repro.resilience.faults import CrashPoint, FaultPlan

        if isinstance(plan_or_points, FaultPlan):
            points: Iterable[Any] = plan_or_points.of_kind(CrashPoint)
        else:
            points = list(plan_or_points)
        points = list(points)
        self.journal.arm(points)
        return len(points)

    def note_recovery(self, replayed_records: int, replayed_ticks: int, time: float) -> None:
        """Record recovery metrics after a successful :func:`recover`."""
        self.recovered = True
        if self._instruments:
            self._instruments["recovery_records"].inc(
                float(replayed_records), time=time
            )
            self._instruments["recovery_ticks"].inc(float(replayed_ticks), time=time)

    def summary(self) -> dict[str, Any]:
        """Counters for replay summaries and the CLI."""
        return {
            "scope": self.scope,
            "state_dir": str(self.state_dir),
            "journal_records": self.journal.records_total,
            "journal_lsn": self.journal.lsn,
            "journal_bytes": self.journal.bytes_total,
            "journal_fsyncs": self.journal.fsyncs_total,
            "snapshots": self.snapshots_total,
            "recovered": self.recovered,
        }


def ensure_durability(
    durability: Durability | DurabilityConfig | None,
) -> Durability | None:
    """Normalize the ``durability=`` constructor argument.

    ``None`` stays ``None`` (the layer is fully absent); a config is
    wrapped in a fresh :class:`Durability`; a pre-built layer passes
    through (so tests can arm crash points before construction).
    """
    if durability is None:
        return None
    if isinstance(durability, Durability):
        return durability
    if isinstance(durability, DurabilityConfig):
        return Durability(durability)
    raise TypeError(
        f"durability must be None, DurabilityConfig or Durability, "
        f"got {type(durability).__name__}"
    )


from repro.durability.recovery import (  # noqa: E402  (cycle-free tail import)
    RecoveryReport,
    inspect_state_dir,
    recover,
)

__all__ = [
    "COMMAND_KINDS",
    "JOURNAL_FILE",
    "MARKER_KINDS",
    "SNAPSHOT_KIND",
    "Durability",
    "DurabilityConfig",
    "Journal",
    "RecoveryReport",
    "SimulatedCrash",
    "ensure_durability",
    "inspect_state_dir",
    "list_snapshots",
    "load_latest",
    "recover",
    "repair_journal",
    "scan_journal",
    "write_snapshot",
]
