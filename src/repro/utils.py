"""Small shared utilities (deterministic RNG plumbing, misc helpers)."""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged, so callers can
    thread one RNG through a pipeline), an integer seed, or ``None`` for
    OS entropy.  Every stochastic entry point in this package takes a
    ``seed`` argument funneled through here -- there is no hidden global
    RNG state anywhere.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def double_factorial_odd(k: int) -> int:
    """``(2k-3)!! `` -- the number of unordered bushy join trees over k leaves.

    Defined as 1 for ``k in (0, 1, 2)`` (a single leaf or a single join).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    result = 1
    for i in range(3, 2 * k - 2, 2):
        result *= i
    return result
