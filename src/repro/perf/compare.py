"""Regression comparison over the performance trajectory.

The comparator tests the *latest* trajectory entry against a baseline
built from the entries before it: per case and per metric, the baseline
is the **median over the last N prior entries** (median-of-N absorbs a
stray noisy run in the history).  A metric regresses when it exceeds
the baseline by more than a relative threshold.

Two metric classes, two rules:

* **Op counts** are deterministic, so their threshold is a pure
  guard band against intended-but-unnoticed algorithmic growth; an
  op-count regression is ``blocking`` (CI fails on it).
* **Wall-clock medians** vary with the machine, so their findings are
  ``advisory`` only -- reported, never failing.

A trajectory with a single entry compares it against itself and is
trivially clean, so a freshly initialized lab always starts green.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Relative increase on a deterministic op count that fails CI.
DEFAULT_OP_THRESHOLD = 0.25
#: Relative increase on a wall-clock median worth reporting (advisory).
DEFAULT_WALL_THRESHOLD = 0.50
#: Prior entries the median-of-N baseline is built over.
DEFAULT_BASELINE_WINDOW = 5


@dataclass
class Finding:
    """One metric's comparison against its baseline.

    Attributes:
        case: Benchmark case name.
        metric: Metric name (op counter, or ``wall_median``).
        kind: ``"ops"`` or ``"wall"``.
        baseline: Median-of-N baseline value.
        current: The latest entry's value.
        ratio: ``current / baseline`` (1.0 when the baseline is 0).
        regressed: Whether the ratio exceeded the threshold.
        blocking: Whether a regression here should fail CI (op counts
            yes, wall clock no).
    """

    case: str
    metric: str
    kind: str
    baseline: float
    current: float
    ratio: float
    regressed: bool
    blocking: bool

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-ready) form."""
        return {
            "case": self.case,
            "metric": self.metric,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "regressed": self.regressed,
            "blocking": self.blocking,
        }


@dataclass
class ComparisonReport:
    """Outcome of comparing the latest entry against the baseline."""

    baseline_entries: int
    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        """Findings that regressed (blocking and advisory alike)."""
        return [f for f in self.findings if f.regressed]

    @property
    def blocking_regressions(self) -> list[Finding]:
        """Regressions CI must fail on (op-count metrics)."""
        return [f for f in self.findings if f.regressed and f.blocking]

    @property
    def ok(self) -> bool:
        """Whether no blocking regression was found."""
        return not self.blocking_regressions

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict (JSON-ready) form."""
        return {
            "ok": self.ok,
            "baseline_entries": self.baseline_entries,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable comparison table."""
        if not self.findings:
            return "no comparable metrics"
        lines = []
        width = max(len(f"{f.case}.{f.metric}") for f in self.findings)
        for f in self.findings:
            marker = " "
            if f.regressed:
                marker = "!" if f.blocking else "~"
            name = f"{f.case}.{f.metric}"
            lines.append(
                f"{marker} {name:<{width}}  "
                f"baseline={f.baseline:<12g} current={f.current:<12g} "
                f"x{f.ratio:.3f}"
            )
        status = "OK" if self.ok else (
            f"REGRESSED ({len(self.blocking_regressions)} blocking)"
        )
        lines.append(
            f"{status}: {len(self.findings)} metrics vs median of "
            f"{self.baseline_entries} prior run(s)"
        )
        return "\n".join(lines)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare_trajectory(
    doc: dict[str, Any],
    op_threshold: float = DEFAULT_OP_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    baseline_window: int = DEFAULT_BASELINE_WINDOW,
) -> ComparisonReport:
    """Compare a trajectory's latest entry against its history.

    Args:
        doc: A trajectory document (:func:`repro.perf.lab.load_trajectory`).
        op_threshold: Relative op-count increase that counts as a
            blocking regression (0.25 = +25%).
        wall_threshold: Relative wall-median increase reported as an
            advisory regression.
        baseline_window: Prior entries the median baseline covers.

    Raises:
        ValueError: The trajectory has no entries at all.
    """
    entries = doc.get("entries", [])
    if not entries:
        raise ValueError("trajectory has no entries; run the lab first")
    current = entries[-1]
    prior = entries[:-1][-baseline_window:] or [current]

    report = ComparisonReport(baseline_entries=len(prior))
    for case, data in sorted(current.get("cases", {}).items()):
        # -- deterministic op counts (blocking) ------------------------
        for metric, value in sorted(data.get("ops", {}).items()):
            history = [
                float(e["cases"][case]["ops"][metric])
                for e in prior
                if case in e.get("cases", {})
                and metric in e["cases"][case].get("ops", {})
            ]
            if not history:
                continue
            baseline = _median(history)
            ratio = (value / baseline) if baseline else 1.0
            report.findings.append(Finding(
                case=case, metric=metric, kind="ops",
                baseline=baseline, current=float(value), ratio=ratio,
                regressed=ratio > 1.0 + op_threshold, blocking=True,
            ))
        # -- wall clock (advisory) -------------------------------------
        wall = data.get("wall_seconds", {})
        if "median" in wall:
            history = [
                float(e["cases"][case]["wall_seconds"]["median"])
                for e in prior
                if case in e.get("cases", {})
                and "median" in e["cases"][case].get("wall_seconds", {})
            ]
            if history:
                baseline = _median(history)
                value = float(wall["median"])
                ratio = (value / baseline) if baseline else 1.0
                report.findings.append(Finding(
                    case=case, metric="wall_median", kind="wall",
                    baseline=baseline, current=value, ratio=ratio,
                    regressed=ratio > 1.0 + wall_threshold, blocking=False,
                ))
    return report
