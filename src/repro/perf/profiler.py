"""Deterministic op-count profiler with advisory wall-clock sampling.

Planner performance on this codebase is dominated by a handful of
countable operations: join trees enumerated, placement DP states (cost
evaluations), protocol messages, plan-cache probes.  Counting them is
deterministic -- two runs of the same seeded workload produce identical
counts on any machine -- which is what makes CI-enforceable regression
comparison possible.  Wall-clock samples ride along for humans but are
advisory only (see :mod:`repro.perf.compare`).

Hook sites (placement, enumeration, the simulator, the plan cache, the
service tick loop) call :func:`active` and count into the innermost
installed profiler.  With no profiler installed -- the default --
``active()`` returns ``None`` and the hooks cost one global read and a
``None`` check, preserving the repo's zero-cost-when-disabled contract.

Usage::

    with profiled() as prof:
        optimizer.plan(query)
    prof.snapshot()  # {"ops": {...}, "wall_seconds": {...}}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

_ACTIVE: list["OpProfiler"] = []


def active() -> "OpProfiler | None":
    """The innermost installed profiler, or ``None`` (the fast path)."""
    if not _ACTIVE:
        return None
    return _ACTIVE[-1]


class OpProfiler:
    """Accumulates operation counts and wall-clock samples."""

    def __init__(self, clock=time.perf_counter) -> None:
        self.ops: dict[str, int] = {}
        self.wall: dict[str, list[float]] = {}
        self._clock = clock

    # -- counting ------------------------------------------------------
    def count(self, key: str, n: int = 1) -> None:
        """Add ``n`` to the op counter ``key``."""
        self.ops[key] = self.ops.get(key, 0) + n

    @contextmanager
    def sample(self, key: str) -> Iterator[None]:
        """Time a block, appending the duration to ``wall[key]``."""
        start = self._clock()
        try:
            yield
        finally:
            self.wall.setdefault(key, []).append(self._clock() - start)

    def add_time(self, key: str, seconds: float) -> None:
        """Append an externally measured duration."""
        self.wall.setdefault(key, []).append(seconds)

    # -- installation --------------------------------------------------
    def install(self) -> None:
        """Start receiving counts from the hook sites."""
        _ACTIVE.append(self)

    def uninstall(self) -> None:
        """Stop receiving counts."""
        if not _ACTIVE or _ACTIVE[-1] is not self:
            raise RuntimeError("profiler install/uninstall must nest")
        _ACTIVE.pop()

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Counts plus wall-clock summary stats, JSON-ready."""
        wall: dict[str, dict[str, float]] = {}
        for key, samples in self.wall.items():
            ordered = sorted(samples)
            n = len(ordered)
            wall[key] = {
                "n": n,
                "total": sum(ordered),
                "min": ordered[0],
                "max": ordered[-1],
                "median": _median(ordered),
            }
        return {"ops": dict(self.ops), "wall_seconds": wall}


def _median(ordered: list[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@contextmanager
def profiled(clock=time.perf_counter) -> Iterator[OpProfiler]:
    """Install a fresh :class:`OpProfiler` for the block."""
    prof = OpProfiler(clock=clock)
    prof.install()
    try:
        yield prof
    finally:
        prof.uninstall()
