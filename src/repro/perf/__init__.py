"""Performance regression lab: op-count profiling, benchmarks, comparison.

The package root stays import-light on purpose -- the hot-path hook
sites (``runtime/simulator.py``, ``core/placement.py``, ...) import
:mod:`repro.perf.profiler` at module load, so this ``__init__`` must
not pull in the service stack.  :class:`PerfLab` and the comparator are
exposed lazily (PEP 562).
"""

from __future__ import annotations

from repro.perf.profiler import OpProfiler, active, profiled

__all__ = [
    "OpProfiler",
    "active",
    "profiled",
    "PerfLab",
    "compare_trajectory",
    "load_trajectory",
]

_LAZY = {
    "PerfLab": ("repro.perf.lab", "PerfLab"),
    "compare_trajectory": ("repro.perf.compare", "compare_trajectory"),
    "load_trajectory": ("repro.perf.lab", "load_trajectory"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
