"""The performance regression lab: curated benchmarks with a trajectory.

A :class:`PerfLab` runs a small, seeded benchmark suite over the
planners and the service tick loop, with the op-count profiler
installed.  Each case runs ``repeats`` times; op counts must be
*identical* across repeats (they are functions of the seeds alone --
any difference is a determinism bug and raises), while wall-clock
durations are summarized per repeat and kept advisory.

Results append to ``BENCH_trajectory.json`` -- one entry per run, so
the file accumulates a performance trajectory across commits that
:mod:`repro.perf.compare` can test new runs against.

Cases (the ``quick`` subset is what CI runs):

* ``plan_top_down`` / ``plan_bottom_up`` -- hierarchical planning over
  a 32-node transit-stub workload; counts trees enumerated, placements,
  DP cost evaluations.
* ``plan_optimal`` -- the flat optimal planner on a smaller workload
  (its enumeration explodes combinatorially by design).
* ``deploy_protocol`` -- deployment-protocol replay; counts messages.
* ``service_churn`` -- lifecycle-service ticks under churn; counts
  cache probes and ticks, samples per-tick wall clock.
* ``fleet_churn`` -- the sharded fleet control plane under the same
  kind of churn across 3 shards with federation syncs on every tick.
* ``telemetry_overhead`` / ``durability_overhead`` /
  ``resource_overhead`` -- ``service_churn`` re-run with the telemetry
  pipeline (resp. the write-ahead journal, resp. the unbounded resource
  layer) armed; planner op counts must not move, wall samples price the
  added machinery.
* ``lab_overhead`` -- ``service_churn`` driven through the scenario
  lab's :class:`~repro.lab.runner.CandidateRun` wrapper; same parity
  contract, pricing the experiment harness itself.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from repro.perf.profiler import OpProfiler, profiled

TRAJECTORY_KIND = "repro.perf_trajectory"
TRAJECTORY_VERSION = 1
DEFAULT_TRAJECTORY = "BENCH_trajectory.json"


# ----------------------------------------------------------------------
# Benchmark cases (each builds its own seeded environment per repeat)
# ----------------------------------------------------------------------
def _hier_env(num_nodes: int = 32, num_queries: int = 8, seed: int = 7):
    from repro.core.cost import RateModel  # noqa: F401 - typing aid
    from repro.hierarchy import build_hierarchy
    from repro.network.topology import transit_stub_by_size
    from repro.workload import WorkloadParams, generate_workload

    net = transit_stub_by_size(num_nodes, seed=seed)
    workload = generate_workload(
        net,
        WorkloadParams(
            num_streams=10, num_queries=num_queries, joins_per_query=(2, 4)
        ),
        seed=seed + 1,
    )
    hierarchy = build_hierarchy(net, max_cs=6, seed=0)
    return net, workload, workload.rate_model(), hierarchy


def _case_plan_hierarchical(algorithm: str) -> Callable[[], OpProfiler]:
    def run() -> OpProfiler:
        from repro.core import make_optimizer

        net, workload, rates, hierarchy = _hier_env()
        with profiled() as prof:
            for query in workload:
                optimizer = make_optimizer(
                    algorithm, net, rates, hierarchy=hierarchy
                )
                with prof.sample("plan"):
                    optimizer.plan(query)
        return prof

    return run


def _case_plan_optimal() -> OpProfiler:
    from repro.core import make_optimizer
    from repro.network.topology import transit_stub_by_size
    from repro.workload import WorkloadParams, generate_workload

    net = transit_stub_by_size(16, seed=5)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(2, 3)),
        seed=6,
    )
    rates = workload.rate_model()
    with profiled() as prof:
        for query in workload:
            optimizer = make_optimizer("optimal", net, rates)
            with prof.sample("plan"):
                optimizer.plan(query)
    return prof


def _case_deploy_protocol() -> OpProfiler:
    from repro.core import make_optimizer
    from repro.runtime import simulate_deployment

    net, workload, rates, hierarchy = _hier_env(num_queries=6)
    optimizer = make_optimizer("top-down", net, rates, hierarchy=hierarchy)
    deployments = [optimizer.plan(q) for q in workload]
    with profiled() as prof:
        for deployment in deployments:
            with prof.sample("deploy"):
                timeline = simulate_deployment(net, deployment)
            prof.count("protocol_tasks", timeline.tasks)
    return prof


def _case_service_churn() -> OpProfiler:
    from repro.core import make_optimizer
    from repro.service import AdmissionController, StreamQueryService

    net, workload, rates, hierarchy = _hier_env(num_queries=10)
    optimizer = make_optimizer("top-down", net, rates, hierarchy=hierarchy)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        admission=AdmissionController(budget=4, max_per_tick=2),
    )
    with profiled() as prof:
        for i, query in enumerate(workload):
            service.submit(query, lifetime=4.0 + (i % 3))
        for _ in range(30):
            service.tick()
        # Resubmissions hit the plan cache: probe traffic without plans.
        from repro.query.query import Query

        for query in list(workload)[:4]:
            renamed = Query(
                query.name + "_again",
                sources=query.sources,
                sink=query.sink,
                predicates=query.predicates,
                filters=query.filters,
                window=query.window,
            )
            service.submit(renamed, lifetime=2.0)
        for _ in range(10):
            service.tick()
    return prof


def _case_fleet_churn() -> OpProfiler:
    from repro.fleet import FleetController

    net, workload, rates, hierarchy = _hier_env(num_queries=10)
    fleet = FleetController(
        3,
        net,
        rates,
        hierarchy,
        policy="hash",
        budget=4,
        max_per_tick=2,
    )
    with profiled() as prof:
        for i, query in enumerate(workload):
            fleet.submit(query, lifetime=4.0 + (i % 3))
        for _ in range(30):
            with prof.sample("fleet_tick"):
                fleet.tick()
        prof.count("federation_syncs", fleet.federation.syncs)
        prof.count("federation_imports", fleet.federation.imported_total)
    return prof


def _case_telemetry_overhead() -> OpProfiler:
    """Service churn with the telemetry pipeline armed.

    The pipeline only reads instruments, so its op counts (plans,
    probes, ticks) must match ``service_churn`` exactly -- the case
    exists so the 25% gate catches telemetry ever leaking work into
    the planner path, and its wall samples price the scrape loop.
    """
    from repro.core import make_optimizer
    from repro.obs.telemetry import TelemetryConfig
    from repro.service import AdmissionController, StreamQueryService

    net, workload, rates, hierarchy = _hier_env(num_queries=10)
    optimizer = make_optimizer("top-down", net, rates, hierarchy=hierarchy)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        admission=AdmissionController(budget=4, max_per_tick=2),
        telemetry=TelemetryConfig(),
    )
    with profiled() as prof:
        for i, query in enumerate(workload):
            service.submit(query, lifetime=4.0 + (i % 3))
        for _ in range(30):
            with prof.sample("telemetry_tick"):
                service.tick()
        prof.count(
            "telemetry_samples", service.telemetry.scraper.samples_total
        )
        prof.count("telemetry_series", len(service.telemetry.store))
    return prof


def _case_durability_overhead() -> OpProfiler:
    """Service churn with the write-ahead journal armed.

    Durability only *records* what the control plane decides, so its
    planner op counts (plans, probes, ticks) must match
    ``service_churn`` exactly -- the case exists so the 25% gate
    catches the journal ever leaking work into the planner path, and
    its wall samples price the append/snapshot loop.
    """
    import tempfile

    from repro.core import make_optimizer
    from repro.durability import DurabilityConfig
    from repro.service import AdmissionController, StreamQueryService

    net, workload, rates, hierarchy = _hier_env(num_queries=10)
    optimizer = make_optimizer("top-down", net, rates, hierarchy=hierarchy)
    with tempfile.TemporaryDirectory(prefix="repro-perf-wal-") as tmp:
        service = StreamQueryService(
            optimizer,
            net,
            rates,
            hierarchy=hierarchy,
            admission=AdmissionController(budget=4, max_per_tick=2),
            durability=DurabilityConfig(state_dir=tmp, snapshot_interval=10),
        )
        with profiled() as prof:
            for i, query in enumerate(workload):
                service.submit(query, lifetime=4.0 + (i % 3))
            for _ in range(30):
                with prof.sample("durable_tick"):
                    service.tick()
            from repro.query.query import Query

            for query in list(workload)[:4]:
                renamed = Query(
                    query.name + "_again",
                    sources=query.sources,
                    sink=query.sink,
                    predicates=query.predicates,
                    filters=query.filters,
                    window=query.window,
                )
                service.submit(renamed, lifetime=2.0)
            for _ in range(10):
                service.tick()
            prof.count(
                "journal_records", service.durability.journal.records_total
            )
            prof.count("snapshots", service.durability.snapshots_total)
    return prof


def _case_resource_overhead() -> OpProfiler:
    """Service churn with the resource layer armed but unbounded.

    With every capacity infinite the manager injects no constraint and
    gates nothing, so its planner op counts (plans, probes, ticks) must
    match ``service_churn`` exactly -- the case exists so the 25% gate
    catches the resource layer ever leaking work into the planner path,
    and its wall samples price the ledger/gauge bookkeeping.
    """
    from repro.core import make_optimizer
    from repro.resources import ResourceConfig
    from repro.service import AdmissionController, StreamQueryService

    net, workload, rates, hierarchy = _hier_env(num_queries=10)
    optimizer = make_optimizer("top-down", net, rates, hierarchy=hierarchy)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        admission=AdmissionController(budget=4, max_per_tick=2),
        resources=ResourceConfig(),
    )
    with profiled() as prof:
        for i, query in enumerate(workload):
            service.submit(query, lifetime=4.0 + (i % 3))
        for _ in range(30):
            with prof.sample("resource_tick"):
                service.tick()
        from repro.query.query import Query

        for query in list(workload)[:4]:
            renamed = Query(
                query.name + "_again",
                sources=query.sources,
                sink=query.sink,
                predicates=query.predicates,
                filters=query.filters,
                window=query.window,
            )
            service.submit(renamed, lifetime=2.0)
        for _ in range(10):
            service.tick()
    return prof


def _case_lab_overhead() -> OpProfiler:
    """Service churn driven through the scenario lab's CandidateRun.

    The lab wrapper only *observes* -- the per-candidate telemetry
    pipeline scrapes instruments and the tick hook samples the cost
    integral -- so its planner op counts (plans, probes, ticks) must
    match ``service_churn`` exactly.  The case exists so the 25% gate
    catches the experiment harness ever leaking work into the planner
    path, and its wall samples price the wrapper.
    """
    from repro.experiments.harness import EvalEnv
    from repro.lab.candidate import Candidate
    from repro.lab.runner import CandidateRun
    from repro.lab.spec import (
        BuiltScenario,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )
    from repro.query.query import Query

    net, workload, rates, hierarchy = _hier_env(num_queries=10)
    # Hand-built scenario around the exact service_churn environment
    # (its max_cs=6 seeds are not reachable through build_scenario).
    spec = ScenarioSpec(
        name="lab_overhead",
        seed=7,
        ticks=40,
        topology=TopologySpec(nodes=net.num_nodes, max_cs=6),
        workload=WorkloadSpec(streams=10, queries=10),
    )
    built = BuiltScenario(
        spec=spec,
        env=EvalEnv(
            network=net,
            workload=workload,
            rates=rates,
            hierarchies={6: hierarchy},
        ),
        events=[],
        timeline=None,
        capacities=None,
    )
    # ads=False, reuse=True is the stock service: no advertisement
    # index, planner reuse from the deployment state -- the same
    # optimizer service_churn builds.
    candidate = Candidate(
        name="churn", ads=False, reuse=True, budget=4, max_per_tick=2
    )
    run = CandidateRun(candidate, built)
    with profiled() as prof:
        for i, query in enumerate(workload):
            run.submit(query, lifetime=4.0 + (i % 3))
        for _ in range(30):
            with prof.sample("lab_tick"):
                run.tick()
        for query in list(workload)[:4]:
            renamed = Query(
                query.name + "_again",
                sources=query.sources,
                sink=query.sink,
                predicates=query.predicates,
                filters=query.filters,
                window=query.window,
            )
            run.submit(renamed, lifetime=2.0)
        for _ in range(10):
            run.tick()
        prof.count("telemetry_samples", run.telemetry.scraper.samples_total)
        prof.count("telemetry_series", len(run.telemetry.store))
    return prof


CASES: dict[str, Callable[[], OpProfiler]] = {
    "plan_top_down": _case_plan_hierarchical("top-down"),
    "plan_bottom_up": _case_plan_hierarchical("bottom-up"),
    "plan_optimal": _case_plan_optimal,
    "deploy_protocol": _case_deploy_protocol,
    "service_churn": _case_service_churn,
    "fleet_churn": _case_fleet_churn,
    "telemetry_overhead": _case_telemetry_overhead,
    "durability_overhead": _case_durability_overhead,
    "resource_overhead": _case_resource_overhead,
    "lab_overhead": _case_lab_overhead,
}

#: The subset CI runs on every push (all of them -- the suite is sized
#: to finish in seconds; split this if cases ever grow expensive).
QUICK_CASES = tuple(CASES)


class PerfLab:
    """Runs the benchmark suite and appends to the trajectory file.

    Args:
        cases: Case names to run (default: the quick subset).
        repeats: Times each case runs.  Op counts must agree across
            repeats; wall clock is summarized over them.
        clock: Wall-clock source for whole-case timing (injectable for
            deterministic tests).
    """

    def __init__(
        self,
        cases: list[str] | tuple[str, ...] | None = None,
        repeats: int = 3,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        names = list(cases) if cases is not None else list(QUICK_CASES)
        unknown = [n for n in names if n not in CASES]
        if unknown:
            raise ValueError(
                f"unknown perf cases {unknown!r}; available: {sorted(CASES)}"
            )
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.cases = names
        self.repeats = repeats
        self._clock = clock

    # ------------------------------------------------------------------
    def run_case(self, name: str) -> dict[str, Any]:
        """Run one case ``repeats`` times; verify op-count determinism."""
        runner = CASES[name]
        ops: dict[str, int] | None = None
        walls: list[float] = []
        for _ in range(self.repeats):
            start = self._clock()
            prof = runner()
            walls.append(self._clock() - start)
            snap = prof.snapshot()
            if ops is None:
                ops = snap["ops"]
            elif ops != snap["ops"]:
                raise RuntimeError(
                    f"perf case {name!r} is non-deterministic: "
                    f"{ops} != {snap['ops']}"
                )
        assert ops is not None
        ordered = sorted(walls)
        return {
            "ops": ops,
            "wall_seconds": {
                "repeats": walls,
                "median": ordered[len(ordered) // 2],
                "min": ordered[0],
                "max": ordered[-1],
            },
        }

    def run(self, label: str = "") -> dict[str, Any]:
        """Run every configured case; return one trajectory entry."""
        entry: dict[str, Any] = {
            "label": label,
            "timestamp": time.time(),
            "repeats": self.repeats,
            "cases": {},
        }
        for name in self.cases:
            entry["cases"][name] = self.run_case(name)
        return entry


# ----------------------------------------------------------------------
# Trajectory file I/O
# ----------------------------------------------------------------------
def load_trajectory(path: str | Path) -> dict[str, Any]:
    """Load (or initialize) the trajectory document at ``path``."""
    path = Path(path)
    if not path.exists():
        return {
            "kind": TRAJECTORY_KIND,
            "version": TRAJECTORY_VERSION,
            "entries": [],
        }
    doc = json.loads(path.read_text())
    if doc.get("kind") != TRAJECTORY_KIND:
        raise ValueError(
            f"not a perf trajectory: kind={doc.get('kind')!r} in {path}"
        )
    return doc


def append_entry(path: str | Path, entry: dict[str, Any]) -> dict[str, Any]:
    """Append one run to the trajectory file; returns the document."""
    path = Path(path)
    doc = load_trajectory(path)
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc
