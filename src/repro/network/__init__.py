"""Network substrate: weighted graphs, topology generators, routing, embeddings.

This subpackage models the physical network that stream operators are
deployed on.  It provides:

* :class:`repro.network.graph.Network` -- a mutable, undirected weighted
  graph with per-link *traversal cost* (cost of moving one unit of data
  across the link) and *delay* (seconds), plus cached all-pairs
  shortest-path matrices.
* :mod:`repro.network.topology` -- generators, most importantly the
  GT-ITM-style transit-stub generator used throughout the paper's
  evaluation.
* :mod:`repro.network.routing` -- all-pairs shortest path computation and
  path reconstruction.
* :mod:`repro.network.embedding` -- classical MDS embedding of the cost
  matrix into a low-dimensional "cost space" (used by the Relaxation
  baseline and by the k-means clustering of the hierarchy).
"""

from repro.network.graph import Link, Network
from repro.network.routing import RoutingTables, all_pairs_costs, shortest_path_nodes
from repro.network.topology import (
    grid,
    line,
    motivating_network,
    random_geometric,
    ring,
    star,
    transit_stub,
    transit_stub_by_size,
)
from repro.network.embedding import classical_mds, embed_network
from repro.network.objectives import delay_weighted, hop_weighted

__all__ = [
    "Link",
    "Network",
    "RoutingTables",
    "all_pairs_costs",
    "shortest_path_nodes",
    "transit_stub",
    "transit_stub_by_size",
    "random_geometric",
    "line",
    "ring",
    "star",
    "grid",
    "motivating_network",
    "classical_mds",
    "embed_network",
    "delay_weighted",
    "hop_weighted",
]
