"""Cost-space embeddings.

The Relaxation baseline (Pietzuch et al., ICDE'06) operates in a
low-dimensional *cost space*: a Euclidean embedding of the network in
which distances approximate pairwise traversal costs.  The paper's
experiments configure a 3-dimensional cost space; we reproduce it with
classical multidimensional scaling (Torgerson MDS) over the all-pairs
cost matrix.  The hierarchy's k-means clustering reuses the same
embedding so that "nodes that are close in the clustering parameter"
land in the same cluster.
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import Network


def classical_mds(distances: np.ndarray, dim: int = 3) -> np.ndarray:
    """Classical (Torgerson) MDS embedding of a distance matrix.

    Args:
        distances: Symmetric non-negative ``(n, n)`` matrix.
        dim: Number of output dimensions.

    Returns:
        ``(n, dim)`` coordinate array whose pairwise Euclidean distances
        approximate ``distances`` (exactly, when the matrix is Euclidean
        of rank <= dim).  Components beyond the matrix rank are zero.
    """
    d = np.asarray(distances, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if not np.allclose(d, d.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    n = d.shape[0]
    if dim < 1:
        raise ValueError("dim must be positive")
    sq = d**2
    centering = np.eye(n) - np.full((n, n), 1.0 / n)
    b = -0.5 * centering @ sq @ centering
    # b is symmetric; eigh returns ascending eigenvalues.
    eigvals, eigvecs = np.linalg.eigh(b)
    order = np.argsort(eigvals)[::-1][:dim]
    vals = np.clip(eigvals[order], 0.0, None)
    coords = eigvecs[:, order] * np.sqrt(vals)[None, :]
    if coords.shape[1] < dim:  # pragma: no cover - defensive
        coords = np.pad(coords, ((0, 0), (0, dim - coords.shape[1])))
    return coords


def embed_network(network: Network, dim: int = 3, metric: str = "cost") -> np.ndarray:
    """Embed a network's nodes into a ``dim``-dimensional cost space.

    Args:
        network: Network to embed.
        dim: Embedding dimensionality (the paper's Relaxation setup
            uses 3).
        metric: ``"cost"`` to embed the traversal-cost matrix or
            ``"delay"`` for the latency matrix.

    Returns:
        ``(num_nodes, dim)`` coordinates indexed by node id.
    """
    if metric == "cost":
        matrix = network.cost_matrix()
    elif metric == "delay":
        matrix = network.delay_matrix()
    else:
        raise ValueError(f"unknown metric {metric!r}; expected 'cost' or 'delay'")
    return classical_mds(matrix, dim=dim)


def embedding_stress(distances: np.ndarray, coords: np.ndarray) -> float:
    """Normalized stress of an embedding (0 = perfect).

    ``sqrt(sum (d_ij - ||x_i - x_j||)^2 / sum d_ij^2)`` over ``i < j``.
    Used in tests/ablations to quantify how faithful the 3-D cost space
    is on transit-stub topologies.
    """
    d = np.asarray(distances, dtype=np.float64)
    diff = coords[:, None, :] - coords[None, :, :]
    emb = np.sqrt((diff**2).sum(axis=2))
    iu = np.triu_indices(d.shape[0], k=1)
    num = float(((d[iu] - emb[iu]) ** 2).sum())
    den = float((d[iu] ** 2).sum())
    if den == 0.0:
        return 0.0
    return float(np.sqrt(num / den))
