"""Mutable undirected weighted network graph.

The :class:`Network` is the substrate every other subsystem builds on.  A
node is an integer id ``0..n-1``; a link carries a *traversal cost* (the
cost of shipping one unit of data across the link -- the paper's "link
cost (per byte transferred)") and a *delay* in seconds (used by the
discrete-event runtime).

The expensive derived artifacts (all-pairs shortest-path cost and delay
matrices) are computed lazily and cached; any mutation bumps an internal
version counter which invalidates the caches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class Link:
    """An undirected physical link between nodes ``u`` and ``v``.

    Attributes:
        u: One endpoint (always the smaller node id after normalization).
        v: The other endpoint.
        cost: Traversal cost per unit of data shipped across the link.
        delay: One-way propagation delay in seconds.
        bandwidth: Link bandwidth in data units per second (used only by
            the runtime simulator; ``inf`` means uncapacitated).
        kind: Free-form tag, e.g. ``"stub"``, ``"transit"``,
            ``"stub-transit"`` -- useful for assertions about generated
            topologies.
    """

    u: int
    v: int
    cost: float
    delay: float = 0.001
    bandwidth: float = float("inf")
    kind: str = ""

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop link at node {self.u}")
        if self.cost < 0:
            raise ValueError(f"negative link cost {self.cost}")
        if self.delay < 0:
            raise ValueError(f"negative link delay {self.delay}")
        if self.u > self.v:
            # Normalize endpoint order so (u, v) is a canonical key.
            lo, hi = self.v, self.u
            object.__setattr__(self, "u", lo)
            object.__setattr__(self, "v", hi)

    @property
    def endpoints(self) -> tuple[int, int]:
        """Canonical ``(u, v)`` endpoint pair with ``u < v``."""
        return (self.u, self.v)


def _canonical(u: int, v: int) -> tuple[int, int]:
    """Return the canonical (sorted) endpoint pair for an undirected link."""
    return (u, v) if u <= v else (v, u)


class Network:
    """An undirected weighted graph of physical processing nodes.

    Construction is most convenient through the topology generators in
    :mod:`repro.network.topology`, but a network can also be assembled
    manually::

        net = Network()
        a, b = net.add_node(), net.add_node()
        net.add_link(a, b, cost=2.0, delay=0.01)

    Nodes carry an optional ``kind`` tag (``"transit"`` / ``"stub"`` / "")
    used by topology assertions and by the In-network baseline's zoning.
    """

    def __init__(self) -> None:
        self._links: dict[tuple[int, int], Link] = {}
        self._adj: dict[int, set[int]] = {}
        self._node_kind: dict[int, str] = {}
        self._version = 0
        self._cost_cache: tuple[int, np.ndarray] | None = None
        self._delay_cache: tuple[int, np.ndarray] | None = None
        self._pred_cache: tuple[int, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes currently in the network."""
        return len(self._adj)

    @property
    def num_links(self) -> int:
        """Number of undirected links currently in the network."""
        return len(self._links)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (cache invalidation)."""
        return self._version

    def nodes(self) -> list[int]:
        """All node ids, sorted ascending."""
        return sorted(self._adj)

    def links(self) -> list[Link]:
        """All links, in canonical endpoint order."""
        return [self._links[key] for key in sorted(self._links)]

    def node_kind(self, node: int) -> str:
        """The ``kind`` tag of ``node`` (empty string if untagged)."""
        self._check_node(node)
        return self._node_kind[node]

    def nodes_of_kind(self, kind: str) -> list[int]:
        """All node ids whose ``kind`` tag equals ``kind``."""
        return sorted(n for n, k in self._node_kind.items() if k == kind)

    def neighbors(self, node: int) -> list[int]:
        """Sorted neighbor ids of ``node``."""
        self._check_node(node)
        return sorted(self._adj[node])

    def degree(self, node: int) -> int:
        """Number of links incident to ``node``."""
        self._check_node(node)
        return len(self._adj[node])

    def has_node(self, node: int) -> bool:
        """Whether ``node`` exists."""
        return node in self._adj

    def has_link(self, u: int, v: int) -> bool:
        """Whether an undirected link between ``u`` and ``v`` exists."""
        return _canonical(u, v) in self._links

    def link(self, u: int, v: int) -> Link:
        """The :class:`Link` between ``u`` and ``v`` (raises if absent)."""
        try:
            return self._links[_canonical(u, v)]
        except KeyError:
            raise KeyError(f"no link between {u} and {v}") from None

    def is_connected(self) -> bool:
        """Whether the network is a single connected component."""
        if self.num_nodes == 0:
            return True
        nodes = self.nodes()
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            cur = stack.pop()
            for nxt in self._adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == self.num_nodes

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, kind: str = "") -> int:
        """Add a fresh node and return its id (max existing id + 1)."""
        node = max(self._adj, default=-1) + 1
        self._adj[node] = set()
        self._node_kind[node] = kind
        self._version += 1
        return node

    def add_nodes(self, count: int, kind: str = "") -> list[int]:
        """Add ``count`` fresh nodes; return their ids."""
        return [self.add_node(kind) for _ in range(count)]

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and all incident links."""
        self._check_node(node)
        for nbr in list(self._adj[node]):
            del self._links[_canonical(node, nbr)]
            self._adj[nbr].discard(node)
        del self._adj[node]
        del self._node_kind[node]
        self._version += 1

    def add_link(
        self,
        u: int,
        v: int,
        cost: float,
        delay: float = 0.001,
        bandwidth: float = float("inf"),
        kind: str = "",
    ) -> Link:
        """Add an undirected link; raises if one already exists."""
        self._check_node(u)
        self._check_node(v)
        key = _canonical(u, v)
        if key in self._links:
            raise ValueError(f"link between {u} and {v} already exists")
        link = Link(key[0], key[1], cost=cost, delay=delay, bandwidth=bandwidth, kind=kind)
        self._links[key] = link
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._version += 1
        return link

    def remove_link(self, u: int, v: int) -> None:
        """Remove the undirected link between ``u`` and ``v``."""
        key = _canonical(u, v)
        if key not in self._links:
            raise KeyError(f"no link between {u} and {v}")
        del self._links[key]
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._version += 1

    def set_link_cost(self, u: int, v: int, cost: float) -> None:
        """Update the traversal cost of an existing link.

        This is the hook the adaptive middleware uses to model changing
        network conditions (congestion raises per-unit costs).
        """
        key = _canonical(u, v)
        if key not in self._links:
            raise KeyError(f"no link between {u} and {v}")
        if cost < 0:
            raise ValueError(f"negative link cost {cost}")
        self._links[key] = replace(self._links[key], cost=cost)
        self._version += 1

    def set_link_delay(self, u: int, v: int, delay: float) -> None:
        """Update the propagation delay of an existing link."""
        key = _canonical(u, v)
        if key not in self._links:
            raise KeyError(f"no link between {u} and {v}")
        if delay < 0:
            raise ValueError(f"negative link delay {delay}")
        self._links[key] = replace(self._links[key], delay=delay)
        self._version += 1

    def scale_link_costs(self, factor: float, links: Iterable[tuple[int, int]] | None = None) -> None:
        """Multiply the cost of ``links`` (default: every link) by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        keys = list(self._links) if links is None else [_canonical(u, v) for (u, v) in links]
        for key in keys:
            if key not in self._links:
                raise KeyError(f"no link between {key[0]} and {key[1]}")
            self._links[key] = replace(self._links[key], cost=self._links[key].cost * factor)
        self._version += 1

    # ------------------------------------------------------------------
    # Derived matrices (cached)
    # ------------------------------------------------------------------
    def cost_matrix(self) -> np.ndarray:
        """All-pairs shortest-path *traversal cost* matrix.

        ``cost_matrix()[u, v]`` is the cheapest per-unit cost of moving
        data from node ``u`` to node ``v`` along network links (the
        paper's ``c_act``).  Rows/columns are indexed by node id, so the
        network must currently have contiguous ids ``0..n-1`` (always the
        case for generated topologies; after ``remove_node`` use
        :meth:`compact` first).
        """
        if self._cost_cache is not None and self._cost_cache[0] == self._version:
            return self._cost_cache[1]
        matrix = self._shortest_paths(weight="cost")
        self._cost_cache = (self._version, matrix)
        return matrix

    def delay_matrix(self) -> np.ndarray:
        """All-pairs shortest-path one-way *delay* matrix (seconds)."""
        if self._delay_cache is not None and self._delay_cache[0] == self._version:
            return self._delay_cache[1]
        matrix = self._shortest_paths(weight="delay")
        self._delay_cache = (self._version, matrix)
        return matrix

    def traversal_cost(self, u: int, v: int) -> float:
        """Shortest-path traversal cost between two nodes."""
        return float(self.cost_matrix()[u, v])

    def path_delay(self, u: int, v: int) -> float:
        """Shortest-path one-way delay between two nodes (seconds)."""
        return float(self.delay_matrix()[u, v])

    def predecessors(self) -> np.ndarray:
        """Predecessor matrix of the cost-weighted shortest paths.

        ``predecessors()[i, j]`` is the node preceding ``j`` on the
        cheapest path from ``i`` to ``j`` (``-9999`` when ``i == j`` per
        scipy convention).  Used for path reconstruction by the runtime.
        """
        if self._pred_cache is not None and self._pred_cache[0] == self._version:
            return self._pred_cache[1]
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        n = self._require_contiguous()
        data, rows, cols = self._edge_arrays("cost")
        graph = csr_matrix((data, (rows, cols)), shape=(n, n))
        _, preds = shortest_path(graph, method="D", directed=False, return_predecessors=True)
        self._pred_cache = (self._version, preds)
        return preds

    def compact(self) -> dict[int, int]:
        """Renumber nodes to contiguous ``0..n-1``; return old->new map."""
        old_ids = self.nodes()
        mapping = {old: new for new, old in enumerate(old_ids)}
        new_adj = {mapping[n]: {mapping[m] for m in nbrs} for n, nbrs in self._adj.items()}
        new_kind = {mapping[n]: k for n, k in self._node_kind.items()}
        new_links: dict[tuple[int, int], Link] = {}
        for (u, v), link in self._links.items():
            nu, nv = _canonical(mapping[u], mapping[v])
            new_links[(nu, nv)] = replace(link, u=nu, v=nv)
        self._adj = new_adj
        self._node_kind = new_kind
        self._links = new_links
        self._version += 1
        return mapping

    def copy(self) -> "Network":
        """Deep copy of the network (caches are not copied)."""
        clone = Network()
        clone._adj = {n: set(nbrs) for n, nbrs in self._adj.items()}
        clone._node_kind = dict(self._node_kind)
        clone._links = dict(self._links)
        return clone

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (cost/delay as edge attrs)."""
        import networkx as nx

        g = nx.Graph()
        for n in self.nodes():
            g.add_node(n, kind=self._node_kind[n])
        for link in self.links():
            g.add_edge(link.u, link.v, cost=link.cost, delay=link.delay, kind=link.kind)
        return g

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if node not in self._adj:
            raise KeyError(f"node {node} not in network")

    def _require_contiguous(self) -> int:
        n = self.num_nodes
        if n == 0:
            raise ValueError("network has no nodes")
        if max(self._adj) != n - 1:
            raise ValueError(
                "node ids are not contiguous 0..n-1; call compact() after removals"
            )
        return n

    def _edge_arrays(self, weight: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows, cols, data = [], [], []
        for (u, v), link in self._links.items():
            rows.append(u)
            cols.append(v)
            data.append(getattr(link, weight))
        return (
            np.asarray(data, dtype=np.float64),
            np.asarray(rows, dtype=np.intp),
            np.asarray(cols, dtype=np.intp),
        )

    def _shortest_paths(self, weight: str) -> np.ndarray:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        n = self._require_contiguous()
        data, rows, cols = self._edge_arrays(weight)
        graph = csr_matrix((data, (rows, cols)), shape=(n, n))
        matrix = shortest_path(graph, method="D", directed=False)
        if np.isinf(matrix).any():
            raise ValueError("network is disconnected; shortest paths undefined")
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(nodes={self.num_nodes}, links={self.num_links})"
