"""Alternative optimization objectives via link re-weighting.

The paper's framework optimizes an "application-provided performance
function": the experiments use communication cost, but Section 2.1.1
notes that "if the metric is response-time, we cluster based on
inter-node delays".  Every component in this package (hierarchy
construction, planners, deployment accounting) reads the objective from
the network's link *costs*, so switching the objective is a link
re-weighting:

* :func:`delay_weighted` -- cost := propagation delay, optimizing
  rate-weighted end-to-end latency;
* :func:`hop_weighted` -- cost := 1 per link, optimizing rate-weighted
  hop counts (a bandwidth-agnostic proxy).

The returned network is an independent copy; pass it anywhere a network
is expected and build the hierarchy from it so that clustering follows
the same metric (exactly the paper's prescription).
"""

from __future__ import annotations

from repro.network.graph import Network


def delay_weighted(network: Network) -> Network:
    """Copy of ``network`` whose link costs are the link delays.

    All-pairs "traversal costs" of the result are shortest-path delays,
    so every planner built on it minimizes rate-weighted latency and
    :func:`repro.hierarchy.build_hierarchy` clusters by inter-node
    delay.
    """
    clone = network.copy()
    for link in network.links():
        clone.set_link_cost(link.u, link.v, link.delay)
    return clone


def hop_weighted(network: Network) -> Network:
    """Copy of ``network`` with unit link costs (hop-count objective)."""
    clone = network.copy()
    for link in network.links():
        clone.set_link_cost(link.u, link.v, 1.0)
    return clone
