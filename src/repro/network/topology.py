"""Topology generators.

The centerpiece is :func:`transit_stub`, a GT-ITM-style generator matching
the paper's evaluation setup: a small expensive *transit* (backbone)
domain with several cheap *stub* (intranet) domains hanging off each
transit node.  Link costs are drawn so that "transmission within an
intranet [is] far cheaper than long-haul links" and delays fall in the
1-60 ms band the Emulab prototype used.

Auxiliary generators (:func:`random_geometric`, :func:`line`,
:func:`ring`, :func:`star`, :func:`grid`) exist mainly for tests and
ablations, and :func:`motivating_network` reconstructs the Figure 3
example network of the paper's OIS scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.graph import Network
from repro.utils import SeedLike, as_generator


@dataclass(frozen=True)
class TransitStubParams:
    """Knobs of the transit-stub generator.

    Attributes:
        transit_domains: Number of transit (backbone) domains.  The
            paper's networks use 1; GT-ITM itself supports several,
            interconnected by inter-domain links.
        transit_nodes: Number of backbone nodes per transit domain (the
            paper uses 4).
        stubs_per_transit: Stub domains attached to each transit node.
        stub_size: Nodes per stub domain (may be overridden per-domain by
            :func:`transit_stub_by_size` to hit an exact total).
        stub_cost: (low, high) uniform range for intra-stub link costs.
        transit_cost: (low, high) range for backbone link costs.
        gateway_cost: (low, high) range for stub-to-transit link costs.
        delay: (low, high) uniform range for link delays in seconds
            (defaults to the paper's 1-60 ms).
        extra_edge_prob: Probability of adding each candidate non-tree
            edge inside a stub domain (adds redundancy/path diversity).
        transit_chord_prob: Probability of adding each candidate chord to
            the transit ring.
    """

    transit_domains: int = 1
    transit_nodes: int = 4
    stubs_per_transit: int = 4
    stub_size: int = 8
    stub_cost: tuple[float, float] = (1.0, 5.0)
    transit_cost: tuple[float, float] = (20.0, 50.0)
    gateway_cost: tuple[float, float] = (10.0, 30.0)
    inter_domain_cost: tuple[float, float] = (40.0, 80.0)
    delay: tuple[float, float] = (0.001, 0.060)
    extra_edge_prob: float = 0.15
    transit_chord_prob: float = 0.3

    def total_nodes(self) -> int:
        """Node count the parameters imply."""
        return (
            self.transit_domains
            * self.transit_nodes
            * (1 + self.stubs_per_transit * self.stub_size)
        )


def _uniform(rng: np.random.Generator, lo_hi: tuple[float, float]) -> float:
    lo, hi = lo_hi
    if lo > hi:
        raise ValueError(f"invalid range {lo_hi}")
    return float(rng.uniform(lo, hi))


def _connect_random_tree(
    net: Network,
    nodes: list[int],
    rng: np.random.Generator,
    cost_range: tuple[float, float],
    delay_range: tuple[float, float],
    kind: str,
    extra_edge_prob: float,
) -> None:
    """Wire ``nodes`` into a random spanning tree plus optional chords."""
    for i in range(1, len(nodes)):
        parent = nodes[int(rng.integers(0, i))]
        net.add_link(
            nodes[i],
            parent,
            cost=_uniform(rng, cost_range),
            delay=_uniform(rng, delay_range),
            kind=kind,
        )
    if extra_edge_prob > 0:
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                u, v = nodes[i], nodes[j]
                if not net.has_link(u, v) and rng.random() < extra_edge_prob:
                    net.add_link(
                        u,
                        v,
                        cost=_uniform(rng, cost_range),
                        delay=_uniform(rng, delay_range),
                        kind=kind,
                    )


def transit_stub(
    params: TransitStubParams | None = None,
    seed: SeedLike = None,
    stub_sizes: list[int] | None = None,
) -> Network:
    """Generate a GT-ITM-style transit-stub network.

    Args:
        params: Generator knobs; defaults reproduce the paper's
            "1 transit domain of 4 nodes, 4 stub domains (each of 8
            nodes) connected to each transit node" topology.
        seed: RNG seed or generator for reproducibility.
        stub_sizes: Optional explicit per-domain sizes (length must be
            ``transit_nodes * stubs_per_transit``); overrides
            ``params.stub_size`` and is how :func:`transit_stub_by_size`
            hits exact node counts.

    Returns:
        A connected :class:`Network` whose nodes are tagged ``"transit"``
        or ``"stub"`` and whose links are tagged ``"transit"``,
        ``"stub"`` or ``"gateway"``.
    """
    params = params or TransitStubParams()
    rng = as_generator(seed)
    if params.transit_domains < 1:
        raise ValueError("need at least one transit domain")
    if params.transit_nodes < 1:
        raise ValueError("need at least one transit node")
    if params.stubs_per_transit < 1 or params.stub_size < 1:
        raise ValueError("need at least one stub domain of at least one node")
    n_domains = params.transit_domains * params.transit_nodes * params.stubs_per_transit
    if stub_sizes is None:
        stub_sizes = [params.stub_size] * n_domains
    if len(stub_sizes) != n_domains:
        raise ValueError(f"stub_sizes must have {n_domains} entries, got {len(stub_sizes)}")
    if any(s < 1 for s in stub_sizes):
        raise ValueError("every stub domain needs at least one node")

    net = Network()
    domain = 0
    domain_transit: list[list[int]] = []
    for _ in range(params.transit_domains):
        transit = net.add_nodes(params.transit_nodes, kind="transit")
        domain_transit.append(transit)

        # Backbone: ring + random chords (single link for 2 nodes,
        # nothing for 1).
        if len(transit) == 2:
            net.add_link(
                transit[0],
                transit[1],
                cost=_uniform(rng, params.transit_cost),
                delay=_uniform(rng, params.delay),
                kind="transit",
            )
        elif len(transit) > 2:
            for i, node in enumerate(transit):
                nxt = transit[(i + 1) % len(transit)]
                if not net.has_link(node, nxt):
                    net.add_link(
                        node,
                        nxt,
                        cost=_uniform(rng, params.transit_cost),
                        delay=_uniform(rng, params.delay),
                        kind="transit",
                    )
            for i in range(len(transit)):
                for j in range(i + 2, len(transit)):
                    u, v = transit[i], transit[j]
                    if not net.has_link(u, v) and rng.random() < params.transit_chord_prob:
                        net.add_link(
                            u,
                            v,
                            cost=_uniform(rng, params.transit_cost),
                            delay=_uniform(rng, params.delay),
                            kind="transit",
                        )

        for t_node in transit:
            for _ in range(params.stubs_per_transit):
                members = net.add_nodes(stub_sizes[domain], kind="stub")
                _connect_random_tree(
                    net,
                    members,
                    rng,
                    params.stub_cost,
                    params.delay,
                    kind="stub",
                    extra_edge_prob=params.extra_edge_prob,
                )
                gateway = members[int(rng.integers(0, len(members)))]
                net.add_link(
                    gateway,
                    t_node,
                    cost=_uniform(rng, params.gateway_cost),
                    delay=_uniform(rng, params.delay),
                    kind="gateway",
                )
                domain += 1

    # Inter-domain links: a ring over transit domains (plus one chord for
    # 2 domains is redundant), connecting random backbone nodes.
    if params.transit_domains > 1:
        for i in range(params.transit_domains):
            j = (i + 1) % params.transit_domains
            if i == j or (params.transit_domains == 2 and i > j):
                continue
            u = domain_transit[i][int(rng.integers(0, len(domain_transit[i])))]
            v = domain_transit[j][int(rng.integers(0, len(domain_transit[j])))]
            if not net.has_link(u, v):
                net.add_link(
                    u,
                    v,
                    cost=_uniform(rng, params.inter_domain_cost),
                    delay=_uniform(rng, params.delay),
                    kind="inter-domain",
                )
    return net


def transit_stub_by_size(
    n: int,
    seed: SeedLike = None,
    params: TransitStubParams | None = None,
) -> Network:
    """Transit-stub network with *exactly* ``n`` nodes.

    Keeps the backbone shape of ``params`` (default 4 transit nodes x 4
    stub domains each) and distributes the remaining ``n - transit``
    nodes across stub domains as evenly as possible.  Used for the
    scalability experiment's 128/256/512/1024-node series and the 64- and
    32-node networks of the other experiments.
    """
    from dataclasses import replace as _replace

    params = params or TransitStubParams()
    transit = params.transit_domains * params.transit_nodes
    domains = transit * params.stubs_per_transit
    if n < transit + domains:
        # Shrink the backbone for very small networks rather than failing.
        params = _replace(params, transit_domains=1, transit_nodes=max(1, n // 8))
        transit = params.transit_nodes
        domains = transit * params.stubs_per_transit
        if n < transit + domains:
            raise ValueError(f"cannot build a transit-stub network with only {n} nodes")
    stub_total = n - transit
    base, rem = divmod(stub_total, domains)
    stub_sizes = [base + (1 if i < rem else 0) for i in range(domains)]
    net = transit_stub(params=params, seed=seed, stub_sizes=stub_sizes)
    assert net.num_nodes == n, f"generator produced {net.num_nodes} nodes, wanted {n}"
    return net


def random_geometric(
    n: int,
    radius: float = 0.35,
    cost_scale: float = 10.0,
    seed: SeedLike = None,
) -> Network:
    """Random geometric graph on the unit square.

    Nodes within ``radius`` of each other are linked with cost
    proportional to Euclidean distance; a minimum-spanning-tree pass
    guarantees connectivity.  Handy for clustering tests because spatial
    locality translates directly into traversal-cost locality.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = as_generator(seed)
    points = rng.random((n, 2))
    net = Network()
    net.add_nodes(n)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    for i in range(n):
        for j in range(i + 1, n):
            if dist[i, j] <= radius:
                net.add_link(i, j, cost=cost_scale * float(dist[i, j]) + 1e-6, delay=0.001 + float(dist[i, j]) * 0.05)
    # Ensure connectivity: link each non-reached component via nearest pair.
    while not net.is_connected():
        seen = {0}
        stack = [0]
        while stack:
            cur = stack.pop()
            for nxt in net.neighbors(cur):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        outside = [v for v in range(n) if v not in seen]
        best = min(((i, j) for i in seen for j in outside), key=lambda p: dist[p[0], p[1]])
        net.add_link(best[0], best[1], cost=cost_scale * float(dist[best]) + 1e-6, delay=0.001 + float(dist[best]) * 0.05)
    return net


def line(n: int, cost: float = 1.0, delay: float = 0.001) -> Network:
    """Path graph 0-1-2-...-(n-1) with uniform link costs."""
    if n < 1:
        raise ValueError("n must be positive")
    net = Network()
    net.add_nodes(n)
    for i in range(n - 1):
        net.add_link(i, i + 1, cost=cost, delay=delay)
    return net


def ring(n: int, cost: float = 1.0, delay: float = 0.001) -> Network:
    """Cycle graph over ``n >= 3`` nodes with uniform link costs."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    net = line(n, cost=cost, delay=delay)
    net.add_link(n - 1, 0, cost=cost, delay=delay)
    return net


def star(n: int, cost: float = 1.0, delay: float = 0.001) -> Network:
    """Star graph: node 0 is the hub, nodes 1..n-1 are leaves."""
    if n < 2:
        raise ValueError("a star needs at least 2 nodes")
    net = Network()
    net.add_nodes(n)
    for i in range(1, n):
        net.add_link(0, i, cost=cost, delay=delay)
    return net


def grid(rows: int, cols: int, cost: float = 1.0, delay: float = 0.001) -> Network:
    """2-D grid graph with uniform link costs; node id = row * cols + col."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    net = Network()
    net.add_nodes(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                net.add_link(node, node + 1, cost=cost, delay=delay)
            if r + 1 < rows:
                net.add_link(node, node + cols, cost=cost, delay=delay)
    return net


def motivating_network() -> tuple[Network, dict[str, int]]:
    """The Figure 3 example network of the paper's airline-OIS scenario.

    Returns the network plus a name -> node-id map with entries for the
    three stream source hosts (``WEATHER``, ``FLIGHTS``, ``CHECK-INS``),
    the five in-network processing nodes ``N1..N5`` and the five sinks
    ``Sink1..Sink5``.  Link costs are chosen so that the optimization
    opportunities discussed in Section 1.1 actually arise: the
    FLIGHTS x CHECK-INS join is cheap at N1, the link FLIGHTS-N2 is
    congested (expensive), and Sink3/Sink4 sit near N3.
    """
    net = Network()
    names = [
        "FLIGHTS", "WEATHER", "CHECK-INS",
        "N1", "N2", "N3", "N4", "N5",
        "Sink1", "Sink2", "Sink3", "Sink4", "Sink5",
    ]
    ids = {name: net.add_node(kind="stub") for name in names}
    edges = [
        ("FLIGHTS", "N1", 1.0),
        ("FLIGHTS", "N2", 8.0),   # congested link from the example
        ("CHECK-INS", "N1", 1.0),
        ("WEATHER", "N2", 1.0),
        ("N1", "N2", 2.0),
        ("N1", "N3", 2.0),
        ("N2", "N3", 2.0),
        ("N2", "N4", 3.0),
        ("N4", "N5", 2.0),
        ("N4", "Sink1", 1.0),
        ("N5", "Sink2", 1.0),
        ("N3", "Sink3", 1.0),
        ("N3", "Sink4", 1.0),
        ("N1", "Sink5", 1.0),
    ]
    for u, v, cost in edges:
        net.add_link(ids[u], ids[v], cost=cost, delay=0.005)
    return net, ids
