"""Routing helpers: all-pairs costs and explicit path reconstruction.

The optimizers only ever need the all-pairs traversal-cost matrix (data is
assumed to follow cheapest paths, matching the paper's "total data
transferred along each link times the link cost" when flows are routed
minimally).  The runtime simulator additionally reconstructs the concrete
node sequence of each flow so that per-link utilization and delays can be
simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.graph import Network


def all_pairs_costs(network: Network) -> np.ndarray:
    """All-pairs shortest-path traversal-cost matrix of ``network``.

    Thin convenience wrapper over :meth:`Network.cost_matrix`; exists so
    call sites that only hold a matrix do not need the network object.
    """
    return network.cost_matrix()


def shortest_path_nodes(network: Network, src: int, dst: int) -> list[int]:
    """The node sequence of the cheapest path from ``src`` to ``dst``.

    Includes both endpoints; ``src == dst`` yields ``[src]``.
    """
    if src == dst:
        return [src]
    preds = network.predecessors()
    path = [dst]
    cur = dst
    while cur != src:
        cur = int(preds[src, cur])
        if cur < 0:
            raise ValueError(f"no path from {src} to {dst}")
        path.append(cur)
    path.reverse()
    return path


def path_links(network: Network, src: int, dst: int) -> list[tuple[int, int]]:
    """The (u, v) link hops of the cheapest path from ``src`` to ``dst``."""
    nodes = shortest_path_nodes(network, src, dst)
    return list(zip(nodes[:-1], nodes[1:]))


@dataclass
class RoutingTables:
    """Precomputed routing state shared by optimizers and the runtime.

    Bundles the cost matrix, delay matrix and predecessor matrix captured
    at a single network version.  :meth:`fresh` re-captures after network
    mutations.

    Attributes:
        network: The network the tables were computed from.
        costs: All-pairs traversal-cost matrix.
        delays: All-pairs one-way delay matrix (seconds).
        version: Network version the tables correspond to.
    """

    network: Network
    costs: np.ndarray
    delays: np.ndarray
    version: int

    @classmethod
    def of(cls, network: Network) -> "RoutingTables":
        """Capture routing tables for the network's current state."""
        return cls(
            network=network,
            costs=network.cost_matrix(),
            delays=network.delay_matrix(),
            version=network.version,
        )

    @property
    def stale(self) -> bool:
        """Whether the network has been mutated since capture."""
        return self.version != self.network.version

    def fresh(self) -> "RoutingTables":
        """Return up-to-date tables (self if nothing changed)."""
        if not self.stale:
            return self
        return RoutingTables.of(self.network)

    def cost(self, u: int, v: int) -> float:
        """Traversal cost between two nodes."""
        return float(self.costs[u, v])

    def delay(self, u: int, v: int) -> float:
        """One-way delay between two nodes (seconds)."""
        return float(self.delays[u, v])
