"""Tests for sliding-window semantics across the stack."""

import numpy as np
import pytest

import repro
from repro.core.containment import contains
from repro.core.cost import RateModel
from repro.query.query import DEFAULT_WINDOW, JoinPredicate, Query, ViewSignature
from repro.query.stream import StreamSpec
from repro.runtime.dataplane import run_dataplane


def _streams():
    return {
        "A": StreamSpec("A", 0, 60.0),
        "B": StreamSpec("B", 5, 60.0),
    }


def _query(window, name="q", sel=0.01, sink=10):
    return Query(
        name, ["A", "B"], sink=sink,
        predicates=[JoinPredicate("A", "B", sel)],
        window=window,
    )


class TestQueryWindow:
    def test_default_window(self):
        assert _query(DEFAULT_WINDOW).window == DEFAULT_WINDOW

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            _query(0.0)

    def test_signature_carries_window(self):
        assert _query(2.0).view_signature().window == 2.0

    def test_single_stream_signature_window_normalized(self):
        sig = _query(2.0).view_signature({"A"})
        assert sig.window == DEFAULT_WINDOW

    def test_different_windows_different_signatures(self):
        a = _query(0.5, "qa").view_signature()
        b = _query(1.0, "qb").view_signature()
        assert a != b

    def test_viewsignature_validation(self):
        with pytest.raises(ValueError, match="window"):
            ViewSignature(frozenset({"A", "B"}), frozenset(), frozenset(), window=-1.0)


class TestWindowedRates:
    def test_default_window_classical_rate(self):
        rates = RateModel(_streams())
        q = _query(DEFAULT_WINDOW)
        assert rates.rate_for(q, {"A", "B"}) == pytest.approx(0.01 * 60 * 60)

    def test_rate_scales_with_window(self):
        rates = RateModel(_streams())
        narrow = rates.rate_for(_query(0.25, "qn"), {"A", "B"})
        wide = rates.rate_for(_query(1.0, "qw"), {"A", "B"})
        assert wide == pytest.approx(4 * narrow)

    def test_multiway_window_exponent(self):
        streams = dict(_streams())
        streams["C"] = StreamSpec("C", 8, 60.0)
        rates = RateModel(streams)
        q = Query(
            "q3", ["A", "B", "C"], sink=10,
            predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.01)],
            window=1.0,
        )
        # two joins => (2W)^2 = 4x the classical rate
        classical = 0.01 * 0.01 * 60 * 60 * 60
        assert rates.rate_for(q, frozenset(q.sources)) == pytest.approx(4 * classical)

    def test_shape_invariance_with_windows(self):
        from repro.core.enumeration import all_join_trees

        streams = dict(_streams())
        streams["C"] = StreamSpec("C", 40.0 if False else 40.0, 40.0)
        streams["C"] = StreamSpec("C", 8, 40.0)
        rates = RateModel(streams)
        q = Query(
            "q3", ["A", "B", "C"], sink=10,
            predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.02)],
            window=0.8,
        )
        roots = {
            rates.rate_for(q, t.sources)
            for t in all_join_trees([frozenset((s,)) for s in q.sources])
        }
        assert len(roots) == 1


class TestWindowReuse:
    def test_same_window_reusable(self):
        a = _query(1.0, "qa").view_signature()
        b = _query(1.0, "qb", sink=3).view_signature()
        assert a == b

    def test_wider_window_contains_narrower(self):
        wide = _query(1.0, "qw").view_signature()
        narrow = _query(0.5, "qn").view_signature()
        assert contains(wide, narrow)
        assert not contains(narrow, wide)


class TestWindowedDataPlane:
    def test_measured_rate_tracks_window(self):
        """Doubling the window roughly doubles the measured join rate,
        matching the (2W)-scaled model prediction."""
        net = repro.transit_stub_by_size(16, seed=111)
        streams = {"A": StreamSpec("A", 0, 40.0), "B": StreamSpec("B", 3, 40.0)}
        rates = RateModel(streams)
        measured = {}
        for window in (0.5, 1.0):
            q = _query(window, f"q_{window}", sel=0.02, sink=10)
            a, b = repro.Leaf.of("A"), repro.Leaf.of("B")
            join = repro.Join(a, b)
            d = repro.Deployment(query=q, plan=join, placement={a: 0, b: 3, join: 6})
            report = run_dataplane(net, d, rates, duration=60.0, seed=9)
            predicted = report.predicted_rates["A*B"]
            assert report.measured_rates["A*B"] == pytest.approx(predicted, rel=0.35)
            measured[window] = report.measured_rates["A*B"]
        assert measured[1.0] == pytest.approx(2 * measured[0.5], rel=0.5)


class TestWorkloadWindows:
    def test_window_range_generates_varied_windows(self):
        net = repro.transit_stub_by_size(32, seed=112)
        w = repro.generate_workload(
            net,
            repro.WorkloadParams(num_queries=10, window_range=(0.2, 2.0)),
            seed=1,
        )
        windows = {q.window for q in w}
        assert len(windows) > 1
        assert all(0.2 <= q.window <= 2.0 for q in w)

    def test_invalid_window_range(self):
        with pytest.raises(ValueError, match="window_range"):
            repro.WorkloadParams(window_range=(0.0, 1.0))

    def test_sql_window_passthrough(self):
        q = repro.parse_query(
            "SELECT A.x FROM A, B WHERE A.k = B.k", "q", 0, window=1.5
        )
        assert q.window == 1.5
