"""Tests for the SQL parser on the paper's query style."""

import pytest

from repro.query.sql import (
    DEFAULT_FILTER_SELECTIVITY,
    DEFAULT_JOIN_SELECTIVITY,
    SqlError,
    parse_query,
)

Q1 = """
SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
FROM FLIGHTS, WEATHER, CHECK-INS
WHERE FLIGHTS.DEPARTING = 'ATLANTA'
  AND FLIGHTS.DESTN = WEATHER.CITY
  AND FLIGHTS.NUM = CHECK-INS.FLNUM
  AND FLIGHTS.DP-TIME - CURRENT_TIME < 12:00
"""

Q2 = """
SELECT FLIGHTS.STATUS, CHECK-INS.STATUS
FROM FLIGHTS, CHECK-INS
WHERE FLIGHTS.DEPARTING = 'ATLANTA'
  AND FLIGHTS.NUM = CHECK-INS.FLNUM
  AND FLIGHTS.DP-TIME - CURRENT_TIME < 12:00
"""


class TestPaperQueries:
    def test_q1_structure(self):
        q = parse_query(Q1, name="Q1", sink=9)
        assert set(q.sources) == {"FLIGHTS", "WEATHER", "CHECK-INS"}
        assert q.sink == 9
        assert len(q.predicates) == 2
        assert len(q.filters) == 2
        assert all(f.stream == "FLIGHTS" for f in q.filters)
        assert q.is_join_connected()

    def test_q2_structure(self):
        q = parse_query(Q2, name="Q2", sink=4)
        assert set(q.sources) == {"FLIGHTS", "CHECK-INS"}
        assert len(q.predicates) == 1
        pred = q.predicates[0]
        assert pred.streams == frozenset({"FLIGHTS", "CHECK-INS"})

    def test_q1_q2_share_flights_checkins_signature(self):
        """The motivating reuse: Q1's FLIGHTS x CHECK-INS sub-view equals Q2's."""
        q1 = parse_query(Q1, name="Q1", sink=9)
        q2 = parse_query(Q2, name="Q2", sink=4)
        sub = {"FLIGHTS", "CHECK-INS"}
        assert q1.view_signature(sub) == q2.view_signature(sub)

    def test_projection_recorded(self):
        q = parse_query(Q2, name="Q2", sink=0)
        assert q.projection == ("FLIGHTS.STATUS", "CHECK-INS.STATUS")


class TestSelectivities:
    def test_defaults(self):
        q = parse_query("SELECT A.x FROM A, B WHERE A.k = B.k AND A.v > 5", "q", 0)
        assert q.predicates[0].selectivity == DEFAULT_JOIN_SELECTIVITY
        assert q.filters[0].selectivity == DEFAULT_FILTER_SELECTIVITY

    def test_explicit_join_selectivity(self):
        q = parse_query(
            "SELECT A.x FROM A, B WHERE A.k = B.k",
            "q",
            0,
            join_selectivities={frozenset({"A", "B"}): 0.42},
        )
        assert q.predicates[0].selectivity == 0.42

    def test_explicit_filter_selectivity(self):
        q = parse_query(
            "SELECT A.x FROM A WHERE A.v > 5",
            "q",
            0,
            filter_selectivities={"A.v > 5": 0.13},
        )
        assert q.filters[0].selectivity == 0.13


class TestParsing:
    def test_single_stream_no_where(self):
        q = parse_query("SELECT A.x FROM A", "q", 2)
        assert q.sources == ("A",)
        assert q.predicates == ()

    def test_case_insensitive_keywords(self):
        q = parse_query("select A.x from A, B where A.k = B.k", "q", 0)
        assert len(q.predicates) == 1

    def test_join_attrs_recorded(self):
        q = parse_query("SELECT A.x FROM A, B WHERE A.key1 = B.key2", "q", 0)
        p = q.predicates[0]
        assert {p.left_attr, p.right_attr} == {"key1", "key2"}

    def test_quoted_literal_with_and_inside(self):
        q = parse_query(
            "SELECT A.x FROM A, B WHERE A.city = 'LAND AND SEA' AND A.k = B.k",
            "q",
            0,
        )
        assert len(q.filters) == 1
        assert "LAND AND SEA" in q.filters[0].predicate

    def test_multiple_filters_same_stream(self):
        q = parse_query(
            "SELECT A.x FROM A WHERE A.v > 5 AND A.w < 3",
            "q",
            0,
        )
        assert len(q.filters) == 2


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlError, match="SELECT"):
            parse_query("SELECT A.x", "q", 0)

    def test_empty_select(self):
        with pytest.raises(SqlError, match="SELECT"):
            parse_query("SELECT  FROM A", "q", 0)

    def test_bad_stream_name(self):
        with pytest.raises(SqlError, match="invalid stream"):
            parse_query("SELECT A.x FROM A, 1BAD", "q", 0)

    def test_join_with_unknown_stream(self):
        with pytest.raises(SqlError, match="unknown stream"):
            parse_query("SELECT A.x FROM A WHERE A.k = B.k", "q", 0)

    def test_filter_on_unknown_stream(self):
        with pytest.raises(SqlError, match="unknown stream"):
            parse_query("SELECT A.x FROM A, B WHERE A.k = B.k AND C.v > 5", "q", 0)

    def test_condition_without_stream(self):
        with pytest.raises(SqlError, match="references no stream"):
            parse_query("SELECT A.x FROM A WHERE 1 = 1", "q", 0)

    def test_multi_stream_non_equijoin(self):
        with pytest.raises(SqlError, match="not supported"):
            parse_query("SELECT A.x FROM A, B WHERE A.v + B.w > 5 AND A.k = B.k", "q", 0)

    def test_self_join_condition(self):
        with pytest.raises(SqlError, match="self-join"):
            parse_query("SELECT A.x FROM A WHERE A.j = A.k", "q", 0)

    def test_cross_product_rejected_by_query_model(self):
        with pytest.raises(ValueError, match="disconnected"):
            parse_query("SELECT A.x FROM A, B", "q", 0)


class TestWindowClause:
    def test_window_clause_parsed(self):
        q = parse_query(
            "SELECT A.x FROM A, B WHERE A.k = B.k WINDOW 2.5", "q", 0
        )
        assert q.window == 2.5
        assert len(q.predicates) == 1

    def test_window_without_where(self):
        q = parse_query("SELECT A.x FROM A WINDOW 1.5", "q", 0)
        assert q.window == 1.5
        assert q.sources == ("A",)

    def test_window_case_insensitive(self):
        q = parse_query("SELECT A.x FROM A, B WHERE A.k = B.k window 3", "q", 0)
        assert q.window == 3.0

    def test_window_conflict_rejected(self):
        with pytest.raises(SqlError, match="both"):
            parse_query(
                "SELECT A.x FROM A, B WHERE A.k = B.k WINDOW 2", "q", 0, window=1.0
            )

    def test_nonpositive_window_rejected(self):
        with pytest.raises(SqlError, match="positive"):
            parse_query("SELECT A.x FROM A WINDOW 0", "q", 0)

    def test_no_window_clause_uses_default(self):
        from repro.query.query import DEFAULT_WINDOW

        q = parse_query("SELECT A.x FROM A, B WHERE A.k = B.k", "q", 0)
        assert q.window == DEFAULT_WINDOW
