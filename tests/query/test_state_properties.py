"""Property-based tests of DeploymentState under random apply/undeploy
sequences: the accounting invariants must hold at every step."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import RateModel
from repro.core.exhaustive import OptimalPlanner
from repro.network.topology import random_geometric
from repro.query.deployment import DeploymentState

from tests.conftest import make_catalog, make_query


def _env(seed):
    net = random_geometric(14, seed=seed % 4)
    names, streams, sel = make_catalog(net, 5, seed)
    rates = RateModel(streams)
    rng = np.random.default_rng(seed)
    queries = [make_query(f"q{i}", names, sel, net, rng, k=3) for i in range(6)]
    return net, rates, queries


def _check_invariants(state, deployed_names):
    # per-query attribution sums to the total
    attributed = sum(state.query_cost(name) for name in deployed_names)
    assert attributed == pytest.approx(state.total_cost())
    # every live operator is referenced by at least one deployed query
    for sig, node in state.operators():
        users = state.queries_using(sig, node)
        assert users, f"orphan operator {sig.label()}@{node}"
        assert users <= deployed_names
    # flows belong to deployed queries and have non-negative rates
    for flow in state.flows():
        assert flow.query in deployed_names
        assert flow.rate >= 0
    # deployments list matches
    assert {d.query.name for d in state.deployments} == deployed_names


class TestStateOperationSequences:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 200),
        ops=st.lists(st.integers(0, 11), min_size=1, max_size=18),
    )
    def test_random_apply_undeploy_sequence(self, seed, ops):
        net, rates, queries = _env(seed)
        planner = OptimalPlanner(net, rates, reuse=True)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        deployed: set[str] = set()
        for op in ops:
            q = queries[op % len(queries)]
            if q.name in deployed:
                reclaimed = state.undeploy(q.name)
                assert reclaimed >= -1e-9
                deployed.discard(q.name)
            else:
                # reusing a view another query owns may become invalid
                # after that query departs mid-sequence; replan fresh.
                deployment = planner.plan(q, state)
                added = state.apply(deployment)
                assert added >= -1e-9
                deployed.add(q.name)
            _check_invariants(state, deployed)
        # tear down whatever is left
        for name in sorted(deployed):
            state.undeploy(name)
        assert state.total_cost() == pytest.approx(0.0)
        assert state.num_operators == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_clone_equivalence_under_operations(self, seed):
        net, rates, queries = _env(seed)
        planner = OptimalPlanner(net, rates)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        for q in queries[:3]:
            state.apply(planner.plan(q, state))
        clone = state.clone()
        assert clone.total_cost() == pytest.approx(state.total_cost())
        assert set(clone.operators()) == set(state.operators())
        # diverge: mutating the clone leaves the original untouched
        clone.undeploy(queries[0].name)
        assert queries[0].name in {d.query.name for d in state.deployments}

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_apply_order_independence_without_reuse(self, seed):
        """Without reuse, total cost is order-independent (flows are
        per-query additive)."""
        net, rates, queries = _env(seed)
        planner = OptimalPlanner(net, rates, reuse=False)
        costs = net.cost_matrix()
        totals = []
        for order in (queries[:4], list(reversed(queries[:4]))):
            state = DeploymentState(costs, rates.rate_for, rates.source)
            for q in order:
                state.apply(planner.plan(q, state))
            totals.append(state.total_cost())
        assert totals[0] == pytest.approx(totals[1])
