"""Tests for Deployment and the reuse-aware DeploymentState accounting."""

import numpy as np
import pytest

from repro.core.cost import RateModel, deployment_cost
from repro.query.deployment import Deployment, DeploymentState
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import Filter, StreamSpec


def _manual_deployment(query, tree_nodes):
    """Build the A-B chain deployment with explicit operator nodes."""
    a, b = Leaf.of("A"), Leaf.of("B")
    join = Join(a, b)
    placement = {a: 0, b: 3, join: tree_nodes["join"]}
    return Deployment(query=query, plan=join, placement=placement)


@pytest.fixture()
def ab_query():
    return Query("qab", ["A", "B"], sink=7, predicates=[JoinPredicate("A", "B", 0.01)])


class TestDeploymentValidation:
    def test_missing_placement_rejected(self, ab_query):
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        with pytest.raises(ValueError, match="missing a placement"):
            Deployment(query=ab_query, plan=join, placement={a: 0, b: 3})

    def test_wrong_coverage_rejected(self, ab_query):
        a = Leaf.of("A")
        with pytest.raises(ValueError, match="plan covers"):
            Deployment(query=ab_query, plan=a, placement={a: 0})

    def test_operator_nodes_and_reused_leaves(self, ab_query):
        d = _manual_deployment(ab_query, {"join": 2})
        assert list(d.operator_nodes.values()) == [2]
        assert d.reused_leaves() == []


class TestApplyAccounting:
    def test_cost_matches_standalone_formula(self, small_net, abc_rates, abc_query, abc_state):
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        tree = Join(Join(a, b), c)
        inner = tree.left
        placement = {a: 0, b: 3, c: 6, inner: 2, tree: 5}
        d = Deployment(query=abc_query, plan=tree, placement=placement)
        costs = small_net.cost_matrix()
        assert abc_state.apply(d) == pytest.approx(deployment_cost(d, costs, abc_rates))
        assert abc_state.total_cost() == pytest.approx(deployment_cost(d, costs, abc_rates))

    def test_colocated_flows_are_free(self, small_net, abc_rates, ab_query):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        # operator at A's source, sink at the same node as the operator:
        q = Query("q0", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.01)])
        d = Deployment(query=q, plan=join, placement={a: 0, b: 3, join: 0})
        cost = state.apply(d)
        # only the B -> node0 flow is paid
        assert cost == pytest.approx(80.0 * costs[3, 0])

    def test_base_leaf_must_sit_at_source(self, abc_state, ab_query):
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        d = Deployment(query=ab_query, plan=join, placement={a: 1, b: 3, join: 2})
        with pytest.raises(ValueError, match="must be placed at its source"):
            abc_state.apply(d)

    def test_double_apply_rejected(self, abc_state, ab_query):
        d = _manual_deployment(ab_query, {"join": 2})
        abc_state.apply(d)
        with pytest.raises(ValueError, match="already deployed"):
            abc_state.apply(d)

    def test_two_queries_pay_independently(self, small_net, abc_rates):
        """Without explicit reuse, identical flows are charged per query."""
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        cost1 = state.apply(_manual_deployment(
            Query("q1", ["A", "B"], sink=7, predicates=[JoinPredicate("A", "B", 0.01)]),
            {"join": 2},
        ))
        cost2 = state.apply(_manual_deployment(
            Query("q2", ["A", "B"], sink=7, predicates=[JoinPredicate("A", "B", 0.01)]),
            {"join": 2},
        ))
        assert cost1 == pytest.approx(cost2)
        assert state.total_cost() == pytest.approx(cost1 + cost2)
        # identical (signature, node) operators merge into one instance
        assert state.num_operators == 1
        assert state.queries_using(
            Query("x", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.01)])
            .view_signature(),
            2,
        ) == {"q1", "q2"}

    def test_filtered_base_stream_becomes_view(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        q = Query(
            "qf",
            ["A", "B"],
            sink=7,
            predicates=[JoinPredicate("A", "B", 0.01)],
            filters=[Filter("A", "A.x > 1", 0.5)],
        )
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        d = Deployment(query=q, plan=join, placement={a: 0, b: 3, join: 2})
        cost = state.apply(d)
        # filter halves A's rate before shipping
        expected = (
            50.0 * 0.5 * costs[0, 2]
            + 80.0 * costs[3, 2]
            + abc_rates.rate_for(q, frozenset({"A", "B"})) * costs[2, 7]
        )
        assert cost == pytest.approx(expected)
        # the filtered stream registers as a view operator at the source
        assert state.num_operators == 2


class TestReuseAccounting:
    def _deploy_q1(self, state, abc_rates):
        q1 = Query("q1", ["A", "B"], sink=7, predicates=[JoinPredicate("A", "B", 0.01)])
        d = _manual_deployment(q1, {"join": 2})
        state.apply(d)
        return q1

    def test_reuse_pays_only_shipping(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        q1 = self._deploy_q1(state, abc_rates)
        q2 = Query("q2", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.01)])
        reuse_leaf = Leaf.of("A", "B")
        d2 = Deployment(query=q2, plan=reuse_leaf, placement={reuse_leaf: 2})
        cost2 = state.apply(d2)
        rate = abc_rates.rate_for(q2, frozenset({"A", "B"}))
        assert cost2 == pytest.approx(rate * costs[2, 5])

    def test_reuse_of_missing_view_rejected(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        q2 = Query("q2", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.01)])
        leaf = Leaf.of("A", "B")
        d = Deployment(query=q2, plan=leaf, placement={leaf: 2})
        with pytest.raises(ValueError, match="no such operator"):
            state.apply(d)

    def test_reuse_inflation_applied(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(
            costs, abc_rates.rate_for, abc_rates.source, reuse_inflation=1.5
        )
        q1 = self._deploy_q1(state, abc_rates)
        q2 = Query("q2", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.01)])
        leaf = Leaf.of("A", "B")
        cost2 = state.apply(Deployment(query=q2, plan=leaf, placement={leaf: 2}))
        rate = abc_rates.rate_for(q2, frozenset({"A", "B"}))
        assert cost2 == pytest.approx(1.5 * rate * costs[2, 5])

    def test_advertised_views(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        q1 = self._deploy_q1(state, abc_rates)
        views = state.advertised_views()
        sig = q1.view_signature()
        assert views == {sig: {2}}
        assert state.has_view(sig)
        assert state.has_view(sig, 2)
        assert not state.has_view(sig, 3)


class TestUndeploy:
    def test_undeploy_reclaims_cost(self, small_net, abc_rates, ab_query):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        cost = state.apply(_manual_deployment(ab_query, {"join": 2}))
        reclaimed = state.undeploy("qab")
        assert reclaimed == pytest.approx(cost)
        assert state.total_cost() == pytest.approx(0.0)
        assert state.num_operators == 0
        assert state.deployments == []

    def test_undeploy_keeps_shared_operator(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        q1 = Query("q1", ["A", "B"], sink=7, predicates=[JoinPredicate("A", "B", 0.01)])
        state.apply(_manual_deployment(q1, {"join": 2}))
        q2 = Query("q2", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.01)])
        leaf = Leaf.of("A", "B")
        state.apply(Deployment(query=q2, plan=leaf, placement={leaf: 2}))
        state.undeploy("q1")
        assert state.num_operators == 1  # q2 still references the view
        state.undeploy("q2")
        assert state.num_operators == 0

    def test_undeploy_unknown_query(self, abc_state):
        with pytest.raises(KeyError):
            abc_state.undeploy("nope")


class TestStateUtilities:
    def test_clone_is_independent(self, small_net, abc_rates, ab_query):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        state.apply(_manual_deployment(ab_query, {"join": 2}))
        clone = state.clone()
        clone.undeploy("qab")
        assert state.total_cost() > 0
        assert clone.total_cost() == 0

    def test_cost_of_does_not_mutate(self, small_net, abc_rates, ab_query):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        d = _manual_deployment(ab_query, {"join": 2})
        predicted = state.cost_of(d)
        assert state.total_cost() == 0
        assert state.apply(d) == pytest.approx(predicted)

    def test_recompute_costs_after_network_change(self, small_net, abc_rates, ab_query):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        state.apply(_manual_deployment(ab_query, {"join": 2}))
        before = state.total_cost()
        after = state.recompute_costs(costs * 2.0)
        assert after == pytest.approx(2 * before)

    def test_query_cost_attribution(self, small_net, abc_rates):
        costs = small_net.cost_matrix()
        state = DeploymentState(costs, abc_rates.rate_for, abc_rates.source)
        q1 = Query("q1", ["A", "B"], sink=7, predicates=[JoinPredicate("A", "B", 0.01)])
        c1 = state.apply(_manual_deployment(q1, {"join": 2}))
        assert state.query_cost("q1") == pytest.approx(c1)
        assert state.query_cost("ghost") == 0.0

    def test_invalid_inflation(self, small_net, abc_rates):
        with pytest.raises(ValueError):
            DeploymentState(
                small_net.cost_matrix(), abc_rates.rate_for, abc_rates.source, 0.5
            )
