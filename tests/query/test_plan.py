"""Tests for plan trees (Leaf/Join) and their canonical structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.plan import Join, Leaf, plan_from_view_sets
from repro.utils import double_factorial_odd


class TestLeaf:
    def test_base_stream_leaf(self):
        leaf = Leaf.of("A")
        assert leaf.is_base_stream
        assert leaf.stream == "A"
        assert leaf.sources == frozenset({"A"})
        assert leaf.label == "A"

    def test_view_leaf(self):
        leaf = Leaf.of("B", "A")
        assert not leaf.is_base_stream
        assert leaf.label == "A*B"
        with pytest.raises(ValueError):
            _ = leaf.stream

    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            Leaf(frozenset())

    def test_accepts_plain_set(self):
        leaf = Leaf({"A", "B"})
        assert isinstance(leaf.view, frozenset)
        assert hash(leaf)  # hashable after coercion


class TestJoin:
    def test_children_canonical_order(self):
        a, b = Leaf.of("A"), Leaf.of("B")
        j1, j2 = Join(a, b), Join(b, a)
        assert j1 == j2
        assert hash(j1) == hash(j2)
        assert j1.left.sources == frozenset({"A"})

    def test_sources_union(self):
        j = Join(Leaf.of("A"), Join(Leaf.of("B"), Leaf.of("C")))
        assert j.sources == frozenset({"A", "B", "C"})

    def test_overlapping_children_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Join(Leaf.of("A", "B"), Leaf.of("B", "C"))

    def test_structural_equality_of_trees(self):
        t1 = Join(Join(Leaf.of("A"), Leaf.of("B")), Leaf.of("C"))
        t2 = Join(Leaf.of("C"), Join(Leaf.of("B"), Leaf.of("A")))
        assert t1 == t2

    def test_different_shapes_not_equal(self):
        t1 = Join(Join(Leaf.of("A"), Leaf.of("B")), Leaf.of("C"))
        t2 = Join(Join(Leaf.of("A"), Leaf.of("C")), Leaf.of("B"))
        assert t1 != t2


class TestTraversal:
    def _tree(self):
        return Join(Join(Leaf.of("A"), Leaf.of("B")), Join(Leaf.of("C"), Leaf.of("D")))

    def test_leaves_in_order(self):
        assert [l.label for l in self._tree().leaves()] == ["A", "B", "C", "D"]

    def test_joins_postorder(self):
        joins = self._tree().joins()
        assert len(joins) == 3
        assert joins[-1] is self._tree() or joins[-1] == self._tree()
        # children joins come before the root
        assert joins[0].sources < joins[-1].sources

    def test_subtrees_count(self):
        assert len(list(self._tree().subtrees())) == 7  # 4 leaves + 3 joins

    def test_edges(self):
        edges = self._tree().edges()
        assert len(edges) == 6  # 2 per join

    def test_num_joins(self):
        assert self._tree().num_joins == 3
        assert Leaf.of("A").num_joins == 0

    def test_pretty(self):
        t = Join(Leaf.of("A"), Leaf.of("B"))
        assert t.pretty() == "(A x B)"


class TestPlanFromViewSets:
    def test_left_deep(self):
        t = plan_from_view_sets([{"A"}, {"B"}, {"C"}])
        assert t.sources == frozenset({"A", "B", "C"})
        assert t.num_joins == 2

    def test_single_view(self):
        t = plan_from_view_sets([{"A", "B"}])
        assert isinstance(t, Leaf)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plan_from_view_sets([])


class TestEnumerationCounts:
    """Tree enumeration must produce exactly (2k-3)!! distinct trees."""

    @settings(max_examples=6, deadline=None)
    @given(k=st.integers(1, 6))
    def test_count_matches_double_factorial(self, k):
        from repro.core.enumeration import all_join_trees

        views = [frozenset((f"S{i}",)) for i in range(k)]
        trees = all_join_trees(views)
        assert len(trees) == double_factorial_odd(k)
        assert len(set(trees)) == len(trees)  # all distinct
