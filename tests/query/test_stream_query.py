"""Tests for StreamSpec, Filter, JoinPredicate, Query and ViewSignature."""

import pytest

from repro.query.query import JoinPredicate, Query, ViewSignature
from repro.query.stream import Filter, StreamSpec


class TestStreamSpec:
    def test_valid(self):
        s = StreamSpec("FLIGHTS", 3, 120.0)
        assert s.name == "FLIGHTS"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            StreamSpec("", 0, 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            StreamSpec("X", 0, 0.0)

    def test_rejects_negative_source(self):
        with pytest.raises(ValueError):
            StreamSpec("X", -1, 1.0)


class TestFilter:
    def test_valid(self):
        f = Filter("A", "A.x > 5", 0.3)
        assert f.selectivity == 0.3

    def test_rejects_selectivity_out_of_range(self):
        with pytest.raises(ValueError):
            Filter("A", "p", 0.0)
        with pytest.raises(ValueError):
            Filter("A", "p", 1.5)

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            Filter("", "p", 0.5)


class TestJoinPredicate:
    def test_normalizes_order(self):
        p = JoinPredicate("ZED", "ALPHA", 0.1, left_attr="z", right_attr="a")
        assert (p.left, p.right) == ("ALPHA", "ZED")
        assert (p.left_attr, p.right_attr) == ("a", "z")

    def test_equality_order_insensitive(self):
        assert JoinPredicate("A", "B", 0.1) == JoinPredicate("B", "A", 0.1)
        assert hash(JoinPredicate("A", "B", 0.1)) == hash(JoinPredicate("B", "A", 0.1))

    def test_rejects_self_join(self):
        with pytest.raises(ValueError):
            JoinPredicate("A", "A", 0.1)

    def test_rejects_bad_selectivity(self):
        with pytest.raises(ValueError):
            JoinPredicate("A", "B", 0.0)

    def test_streams_property(self):
        assert JoinPredicate("A", "B", 0.5).streams == frozenset({"A", "B"})


class TestQueryValidation:
    def test_minimal_single_source(self):
        q = Query("q", ["A"], sink=0)
        assert q.num_joins == 0

    def test_duplicate_source_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            Query("q", ["A", "A"], sink=0)

    def test_unknown_predicate_stream_rejected(self):
        with pytest.raises(ValueError, match="not in FROM"):
            Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "C", 0.1)])

    def test_duplicate_predicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate predicate"):
            Query(
                "q",
                ["A", "B"],
                sink=0,
                predicates=[JoinPredicate("A", "B", 0.1), JoinPredicate("B", "A", 0.2)],
            )

    def test_unknown_filter_stream_rejected(self):
        with pytest.raises(ValueError, match="filter"):
            Query("q", ["A"], sink=0, filters=[Filter("B", "p", 0.5)])

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(ValueError, match="disconnected"):
            Query("q", ["A", "B", "C"], sink=0, predicates=[JoinPredicate("A", "B", 0.1)])

    def test_disconnected_allowed_with_flag(self):
        q = Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.1)],
            allow_cross_products=True,
        )
        assert not q.is_join_connected()

    def test_negative_sink_rejected(self):
        with pytest.raises(ValueError, match="sink"):
            Query("q", ["A"], sink=-1)


class TestQueryHelpers:
    def _chain(self):
        return Query(
            "q",
            ["A", "B", "C", "D"],
            sink=0,
            predicates=[
                JoinPredicate("A", "B", 0.1),
                JoinPredicate("B", "C", 0.2),
                JoinPredicate("C", "D", 0.3),
            ],
        )

    def test_selectivity_lookup(self):
        q = self._chain()
        assert q.selectivity("A", "B") == 0.1
        assert q.selectivity("B", "A") == 0.1
        assert q.selectivity("A", "D") == 1.0  # no predicate

    def test_subset_connectivity(self):
        q = self._chain()
        assert q.is_join_connected(frozenset({"A", "B", "C"}))
        assert not q.is_join_connected(frozenset({"A", "C"}))
        assert q.is_join_connected(frozenset({"A"}))

    def test_filters_on(self):
        q = Query(
            "q",
            ["A", "B"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.1)],
            filters=[Filter("A", "p1", 0.5), Filter("A", "p2", 0.4)],
        )
        assert len(q.filters_on("A")) == 2
        assert q.filters_on("B") == ()

    def test_num_joins(self):
        assert self._chain().num_joins == 3


class TestViewSignature:
    def _query(self):
        return Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.1), JoinPredicate("B", "C", 0.2)],
            filters=[Filter("A", "A.x > 1", 0.5)],
        )

    def test_full_signature(self):
        q = self._query()
        sig = q.view_signature()
        assert sig.sources == frozenset({"A", "B", "C"})
        assert len(sig.predicates) == 2
        assert len(sig.filters) == 1

    def test_subset_restricts_predicates_and_filters(self):
        q = self._query()
        sig = q.view_signature({"B", "C"})
        assert sig.predicates == frozenset({JoinPredicate("B", "C", 0.2)})
        assert sig.filters == frozenset()

    def test_subset_outside_sources_rejected(self):
        with pytest.raises(ValueError):
            self._query().view_signature({"A", "Z"})

    def test_signature_equality_is_reuse_condition(self):
        """Two queries restricting to the same sub-view share signatures."""
        q1 = self._query()
        q2 = Query(
            "q2",
            ["B", "C", "D"],
            sink=5,
            predicates=[JoinPredicate("B", "C", 0.2), JoinPredicate("C", "D", 0.9)],
        )
        assert q1.view_signature({"B", "C"}) == q2.view_signature({"B", "C"})

    def test_signature_differs_on_selectivity(self):
        q1 = self._query()
        q2 = Query(
            "q2",
            ["B", "C"],
            sink=5,
            predicates=[JoinPredicate("B", "C", 0.3)],
        )
        assert q1.view_signature({"B", "C"}) != q2.view_signature({"B", "C"})

    def test_signature_differs_on_filters(self):
        q1 = self._query()
        sig_with = q1.view_signature({"A", "B"})
        q3 = Query(
            "q3",
            ["A", "B"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.1)],
        )
        assert q3.view_signature({"A", "B"}) != sig_with

    def test_invalid_signature_construction(self):
        with pytest.raises(ValueError):
            ViewSignature(frozenset(), frozenset(), frozenset())
        with pytest.raises(ValueError):
            ViewSignature(
                frozenset({"A"}),
                frozenset({JoinPredicate("A", "B", 0.1)}),
                frozenset(),
            )
        with pytest.raises(ValueError):
            ViewSignature(
                frozenset({"A"}),
                frozenset(),
                frozenset({Filter("B", "p", 0.5)}),
            )

    def test_is_base_and_label(self):
        sig = ViewSignature(frozenset({"A"}), frozenset(), frozenset())
        assert sig.is_base
        sig2 = ViewSignature(frozenset({"B", "A"}), frozenset(), frozenset())
        assert sig2.label() == "A*B"
