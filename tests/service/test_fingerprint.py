"""Canonical query fingerprints."""

import pytest

from repro.query.query import JoinPredicate, Query
from repro.query.stream import Filter
from repro.service.fingerprint import canonical_form, query_fingerprint


def make_query(name="q", sources=("A", "B", "C"), sink=3, sel=0.01, window=0.5,
               filters=()):
    ordered = sorted(sources)
    preds = [
        JoinPredicate(a, b, sel) for a, b in zip(ordered[:-1], ordered[1:])
    ]
    return Query(
        name, sources, sink=sink, predicates=preds, filters=filters, window=window
    )


class TestFingerprint:
    def test_name_insensitive(self):
        assert query_fingerprint(make_query("q1")) == query_fingerprint(make_query("q2"))

    def test_source_order_insensitive(self):
        a = make_query(sources=("A", "B", "C"))
        b = make_query(sources=("C", "A", "B"))
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_sink_sensitive(self):
        assert query_fingerprint(make_query(sink=3)) != query_fingerprint(make_query(sink=4))

    def test_selectivity_sensitive(self):
        assert query_fingerprint(make_query(sel=0.01)) != query_fingerprint(make_query(sel=0.02))

    def test_window_sensitive(self):
        assert query_fingerprint(make_query(window=0.5)) != query_fingerprint(
            make_query(window=1.0)
        )

    def test_filter_sensitive(self):
        filtered = make_query(filters=(Filter("A", "x > 0", 0.5),))
        assert query_fingerprint(filtered) != query_fingerprint(make_query())

    def test_filter_order_insensitive(self):
        f1 = Filter("A", "x > 0", 0.5)
        f2 = Filter("B", "y < 9", 0.25)
        a = make_query(filters=(f1, f2))
        b = make_query(filters=(f2, f1))
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_extra_source_changes_fingerprint(self):
        assert query_fingerprint(make_query(sources=("A", "B"))) != query_fingerprint(
            make_query(sources=("A", "B", "C"))
        )

    def test_canonical_form_is_deterministic_text(self):
        text = canonical_form(make_query())
        assert "sources=A,B,C" in text
        assert text == canonical_form(make_query(sources=("C", "B", "A")))

    def test_fingerprint_is_hex(self):
        fp = query_fingerprint(make_query())
        assert len(fp) == 32
        int(fp, 16)  # parses as hex
