"""Admission controller: budget, queueing, backpressure, rejection."""

import pytest

from repro.query.query import JoinPredicate, Query
from repro.service.admission import AdmissionController, AdmissionStatus


def q(name):
    return Query(name, ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.1)])


class TestBudget:
    def test_admits_under_budget(self):
        ctl = AdmissionController(budget=2)
        decision = ctl.request(q("a"), live_count=1)
        assert decision.status is AdmissionStatus.ADMITTED
        assert decision.admitted

    def test_queues_at_budget(self):
        ctl = AdmissionController(budget=2)
        decision = ctl.request(q("a"), live_count=2)
        assert decision.status is AdmissionStatus.QUEUED
        assert decision.queue_position == 1
        assert ctl.queue_depth == 1

    def test_no_overtaking_while_queue_nonempty(self):
        ctl = AdmissionController(budget=2)
        ctl.request(q("a"), live_count=2)
        # budget freed, but "a" is ahead in line
        decision = ctl.request(q("b"), live_count=1)
        assert decision.status is AdmissionStatus.QUEUED
        assert decision.queue_position == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(budget=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_per_tick=0)


class TestQueueBound:
    def test_rejects_past_bound(self):
        ctl = AdmissionController(budget=1, max_queue=1)
        ctl.request(q("a"), live_count=1)
        decision = ctl.request(q("b"), live_count=1)
        assert decision.rejected
        assert "queue full" in decision.reason
        assert ctl.rejected_total == 1

    def test_zero_queue_rejects_at_budget(self):
        ctl = AdmissionController(budget=1, max_queue=0)
        assert ctl.request(q("a"), live_count=0).admitted
        assert ctl.request(q("b"), live_count=1).rejected


class TestDrain:
    def test_fifo_and_capacity_bounded(self):
        ctl = AdmissionController(budget=3)
        for name in ("a", "b", "c"):
            ctl.request(q(name), live_count=3)
        admitted = ctl.drain(live_count=1)  # two slots free
        assert [query.name for query in admitted] == ["a", "b"]
        assert ctl.queue_depth == 1

    def test_per_tick_limit(self):
        ctl = AdmissionController(budget=10, max_per_tick=1)
        for name in ("a", "b"):
            ctl.request(q(name), live_count=10)
        assert [query.name for query in ctl.drain(live_count=0)] == ["a"]

    def test_drain_counts_admissions(self):
        ctl = AdmissionController(budget=2)
        ctl.request(q("a"), live_count=2)
        ctl.drain(live_count=0)
        assert ctl.admitted_total == 1

    def test_drain_with_no_capacity(self):
        ctl = AdmissionController(budget=2)
        ctl.request(q("a"), live_count=2)
        assert ctl.drain(live_count=2) == []


class TestWithdraw:
    def test_withdraw_queued(self):
        ctl = AdmissionController(budget=1)
        ctl.request(q("a"), live_count=1)
        assert ctl.withdraw("a")
        assert ctl.queue_depth == 0
        assert not ctl.withdraw("a")

    def test_is_queued(self):
        ctl = AdmissionController(budget=1)
        ctl.request(q("a"), live_count=1)
        assert ctl.is_queued("a")
        assert not ctl.is_queued("b")
        assert ctl.queued_names() == ["a"]
