"""The query lifecycle service: caching, epochs, admission, churn."""

import pytest

import repro
from repro.service import (
    AdmissionController,
    AdmissionStatus,
    PlanCache,
    StreamQueryService,
    SubmitEvent,
    churn_trace,
    query_fingerprint,
)
from repro.service.cache import CachedPlan
from repro.query.plan import Leaf


class CountingOptimizer:
    """Optimizer wrapper that counts planning invocations."""

    name = "counting"

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def plan(self, query, state=None):
        self.calls += 1
        return self.inner.plan(query, state)


def build_service(budget=8, max_queue=None, max_per_tick=None, seed=31):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = CountingOptimizer(repro.TopDownOptimizer(hierarchy, rates, ads=ads))
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(
            budget=budget, max_queue=max_queue, max_per_tick=max_per_tick
        ),
    )
    return service, workload, optimizer


def renamed(query, name):
    return repro.Query(
        name,
        sources=sorted(query.sources, reverse=True),  # permuted on purpose
        sink=query.sink,
        predicates=query.predicates,
        filters=query.filters,
        window=query.window,
    )


class TestPlanCache:
    def test_identical_resubmission_skips_optimizer(self):
        service, workload, optimizer = build_service()
        query = workload.queries[0]
        service.submit(query)
        calls = optimizer.calls
        assert calls == 1

        decision = service.submit(renamed(query, "again"))
        assert decision.admitted
        assert optimizer.calls == calls  # cache hit: no second invocation
        assert service.cache.hits == 1

    def test_permuted_sources_share_the_entry(self):
        service, workload, _ = build_service()
        query = workload.queries[0]
        assert query_fingerprint(query) == query_fingerprint(renamed(query, "x"))

    def test_hit_deployment_is_bound_to_the_new_query(self):
        service, workload, _ = build_service()
        query = workload.queries[0]
        service.submit(query)
        service.submit(renamed(query, "again"))
        deployed = {d.query.name: d for d in service.engine.state.deployments}
        assert deployed["again"].query.name == "again"
        assert deployed["again"].plan == deployed[query.name].plan
        assert deployed["again"].stats["plan_cache"] == "hit"

    def test_distinct_queries_miss(self):
        service, workload, optimizer = build_service()
        service.submit(workload.queries[0])
        service.submit(workload.queries[1])
        assert optimizer.calls == 2

    def test_invalid_cached_plan_is_replanned(self):
        service, workload, optimizer = build_service()
        query = workload.queries[0]
        # poison the cache: a plan that reuses a view nobody deployed
        fingerprint = query_fingerprint(query)
        key = service.cache.key(
            fingerprint, service.statistics_epoch, service.topology_epoch
        )
        leaf = Leaf(frozenset(query.sources))
        service.cache.put(key, CachedPlan(plan=leaf, placement={leaf: 0}))
        decision = service.submit(query)
        assert decision.admitted
        assert optimizer.calls == 1  # fell through to a real plan
        assert service.cache.invalidations == 1


class TestEpochs:
    def test_statistics_change_forces_replan(self):
        service, workload, optimizer = build_service()
        query = workload.queries[0]
        service.submit(query)
        assert optimizer.calls == 1

        doubled = {
            name: repro.StreamSpec(name, spec.source, spec.rate * 2.0)
            for name, spec in service.rates.streams.items()
        }
        service.rates.update_streams(doubled)
        decision = service.submit(renamed(query, "after-stats"))
        assert decision.admitted
        assert service.statistics_epoch == 1
        assert optimizer.calls == 2  # epoch bump evicted the cached plan

    def test_ingest_statistics_bumps_epoch(self):
        from repro.workload.statistics import estimate_statistics

        service, workload, _ = build_service()
        estimated = estimate_statistics(
            service.rates.streams,
            {pair: 0.01 for pair in map(frozenset, [("S0", "S1")])},
            observation_time=50.0,
            seed=3,
        )
        assert service.ingest_statistics(estimated) == 1
        assert service.rates.version == 1

    def test_topology_change_forces_replan(self):
        service, workload, optimizer = build_service()
        query = workload.queries[0]
        service.submit(query)
        link = service.engine.hottest_links(1)[0]
        service.network.set_link_cost(link.u, link.v, link.cost * 10)

        decision = service.submit(renamed(query, "after-topo"))
        assert decision.admitted
        assert service.topology_epoch == 1
        assert optimizer.calls == 2

    def test_unchanged_epochs_stay_zero(self):
        service, workload, _ = build_service()
        for query in workload.queries[:3]:
            service.submit(query)
        assert service.statistics_epoch == 0
        assert service.topology_epoch == 0

    def test_update_streams_must_keep_catalog(self):
        service, workload, _ = build_service()
        with pytest.raises(ValueError):
            service.rates.update_streams({})


class TestAdmission:
    def test_budget_queues_and_drains(self):
        service, workload, _ = build_service(budget=2)
        decisions = [service.submit(q, lifetime=2.0) for q in workload.queries[:4]]
        statuses = [d.status for d in decisions]
        assert statuses[:2] == [AdmissionStatus.ADMITTED] * 2
        assert statuses[2:] == [AdmissionStatus.QUEUED] * 2
        assert len(service.live_queries) == 2

        report1 = service.tick(time=2.0)  # both live queries expire
        assert set(report1.retired) == {q.name for q in workload.queries[:2]}
        assert set(report1.deployed) == {q.name for q in workload.queries[2:4]}

    def test_bounded_queue_rejects(self):
        service, workload, _ = build_service(budget=1, max_queue=1)
        assert service.submit(workload.queries[0]).admitted
        assert service.submit(workload.queries[1]).status is AdmissionStatus.QUEUED
        decision = service.submit(workload.queries[2])
        assert decision.rejected
        assert "queue full" in decision.reason

    def test_per_tick_limit(self):
        service, workload, _ = build_service(budget=8, max_per_tick=1)
        service.submit(workload.queries[0], lifetime=1.0)
        for q in workload.queries[1:4]:
            # fill the queue behind a full-budget facade: queue directly
            service.admission.request(q, live_count=8)
        report = service.tick(time=5.0)
        assert len(report.deployed) == 1

    def test_duplicate_name_rejected(self):
        service, workload, _ = build_service()
        query = workload.queries[0]
        service.submit(query)
        decision = service.submit(query)
        assert decision.rejected
        assert "already deployed" in decision.reason

    def test_queued_duplicate_rejected(self):
        service, workload, _ = build_service(budget=1)
        service.submit(workload.queries[0])
        service.submit(workload.queries[1])
        decision = service.submit(workload.queries[1])
        assert decision.rejected
        assert "already queued" in decision.reason

    def test_unknown_stream_rejected(self):
        service, workload, _ = build_service()
        bad = repro.Query("bad", ["NOPE", "S0"], sink=0,
                          predicates=[repro.JoinPredicate("NOPE", "S0", 0.1)])
        decision = service.submit(bad)
        assert decision.rejected
        assert "unknown streams" in decision.reason

    def test_bad_sink_rejected(self):
        service, workload, _ = build_service()
        query = workload.queries[0]
        bad = repro.Query("bad", query.sources, sink=10_000,
                          predicates=query.predicates, window=query.window)
        decision = service.submit(bad)
        assert decision.rejected
        assert "not a network node" in decision.reason

    def test_non_positive_lifetime_rejected(self):
        service, workload, _ = build_service()
        assert service.submit(workload.queries[0], lifetime=0.0).rejected


class TestLifecycle:
    def test_lifetime_expiry_retires(self):
        service, workload, _ = build_service()
        service.submit(workload.queries[0], lifetime=3.0, time=0.0)
        assert service.is_live(workload.queries[0].name)
        service.tick(time=2.0)
        assert service.is_live(workload.queries[0].name)
        report = service.tick(time=3.0)
        assert report.retired == [workload.queries[0].name]
        assert not service.live_queries

    def test_explicit_retire_live(self):
        service, workload, _ = build_service()
        service.submit(workload.queries[0])
        assert service.retire(workload.queries[0].name) is True
        assert not service.live_queries
        assert service.total_cost() == 0.0

    def test_retire_queued(self):
        service, workload, _ = build_service(budget=1)
        service.submit(workload.queries[0])
        service.submit(workload.queries[1])
        assert service.retire(workload.queries[1].name) is False
        assert service.admission.queue_depth == 0

    def test_retire_unknown_raises(self):
        service, workload, _ = build_service()
        with pytest.raises(KeyError):
            service.retire("ghost")

    def test_ads_follow_retirement(self):
        service, workload, _ = build_service()
        query = workload.queries[0]
        service.submit(query)
        assert service.ads.views()  # operators advertised
        service.retire(query.name)
        assert not service.ads.views()

    def test_metrics_recorded(self):
        service, workload, _ = build_service()
        service.submit(workload.queries[0])
        service.tick()
        names = service.metrics.metrics()
        for metric in (
            "service_queue_depth",
            "service_live_queries",
            "service_cache_hit_rate",
            "service_planning_seconds",
            "service_admitted_total",
            "service_rejected_total",
        ):
            assert metric in names
        assert service.metrics.last("service_live_queries") == 1.0


class TestReplay:
    def test_replay_drains_everything(self):
        service, workload, optimizer = build_service(budget=4)
        trace = churn_trace(workload, lifetime=3.0, arrivals_per_tick=2, repeats=2)
        report = service.replay(trace)
        s = report.summary
        assert s["submitted"] == 2 * len(workload)
        assert s["rejected"] == 0
        assert s["deployed_total"] == s["retired_total"] == s["submitted"]
        assert s["final_live"] == 0
        # second round is served from the cache
        assert s["cache_hits"] > 0
        assert optimizer.calls == s["plans_computed"]
        assert s["plans_computed"] < s["submitted"]

    def test_repeated_rounds_reuse_plans(self):
        service, workload, optimizer = build_service(budget=16)
        trace = churn_trace(workload, lifetime=None, arrivals_per_tick=4, repeats=1)
        service.replay(trace, drain=False)
        first_round = optimizer.calls
        assert first_round == len(workload)

    def test_events_sorted_by_time(self):
        service, workload, _ = build_service()
        events = [
            SubmitEvent(time=2.0, query=workload.queries[1], lifetime=1.0),
            SubmitEvent(time=1.0, query=workload.queries[0], lifetime=1.0),
        ]
        report = service.replay(events)
        assert [d.query for d in report.decisions] == [
            workload.queries[0].name,
            workload.queries[1].name,
        ]

    def test_churn_trace_validation(self):
        service, workload, _ = build_service()
        with pytest.raises(ValueError):
            churn_trace(workload, arrivals_per_tick=0)
        with pytest.raises(ValueError):
            churn_trace(workload, repeats=0)


class TestFailureIntegration:
    def test_requires_hierarchy(self):
        service, workload, _ = build_service()
        service.hierarchy = None
        with pytest.raises(ValueError):
            service.handle_node_failure(0)
