"""Admission queue depth and queue-wait time as registry instruments."""

import pytest

import repro
from repro.obs import MetricRegistry
from repro.service import AdmissionController


@pytest.fixture(scope="module")
def instr_env():
    net = repro.transit_stub_by_size(32, seed=31)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=32,
    )
    return net, hierarchy, workload, workload.rate_model()


def make_service(env, budget=2):
    net, hierarchy, workload, rates = env
    ads = repro.AdvertisementIndex(hierarchy)
    return repro.StreamQueryService(
        repro.TopDownOptimizer(hierarchy, rates, ads=ads),
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=budget),
    )


class TestBindInstruments:
    def test_declares_gauge_and_histogram(self):
        controller = AdmissionController(budget=1)
        registry = MetricRegistry()
        controller.bind_instruments(registry)
        depth = registry.get("admission_queue_depth")
        wait = registry.get("admission_queue_wait_ticks")
        assert depth is not None and depth.kind == "gauge"
        assert wait is not None and wait.kind == "histogram"
        assert depth.value == 0.0

    def test_idempotent_rebind(self):
        controller = AdmissionController(budget=1)
        registry = MetricRegistry()
        controller.bind_instruments(registry)
        controller.bind_instruments(registry)  # must not raise on re-declare
        assert registry.names().count("admission_queue_depth") == 1

    def test_custom_buckets(self):
        controller = AdmissionController(budget=1)
        registry = MetricRegistry()
        controller.bind_instruments(registry, buckets=(1.0, 10.0))
        assert registry.get("admission_queue_wait_ticks").bounds == (1.0, 10.0)


class TestGaugeTracksDepth:
    def test_request_drain_withdraw(self, instr_env):
        _, _, workload, _ = instr_env
        controller = AdmissionController(budget=1)
        registry = MetricRegistry()
        controller.bind_instruments(registry)
        gauge = registry.get("admission_queue_depth")

        queries = workload.queries
        assert controller.request(queries[0], live_count=0, time=0.0).admitted
        assert gauge.value == 0.0
        controller.request(queries[1], live_count=1, time=0.0)
        controller.request(queries[2], live_count=1, time=0.0)
        assert gauge.value == 2.0 == float(controller.queue_depth)
        assert controller.withdraw(queries[2].name, time=1.0)
        assert gauge.value == 1.0
        controller.drain(live_count=0, time=2.0)
        assert gauge.value == 0.0


class TestWaitHistogram:
    def test_observes_virtual_wait(self, instr_env):
        _, _, workload, _ = instr_env
        controller = AdmissionController(budget=1)
        registry = MetricRegistry()
        controller.bind_instruments(registry)
        hist = registry.get("admission_queue_wait_ticks")

        queries = workload.queries
        controller.request(queries[0], live_count=0, time=0.0)  # admitted
        controller.request(queries[1], live_count=1, time=1.0)  # queued @1
        controller.request(queries[2], live_count=1, time=2.0)  # queued @2
        controller.drain(live_count=0, time=6.0)  # only one slot frees
        assert hist.count == 1
        assert hist.sum == 5.0  # waited ticks 1 -> 6
        controller.drain(live_count=0, time=9.0)
        assert hist.count == 2
        assert hist.sum == 5.0 + 7.0

    def test_withdrawn_query_never_observed(self, instr_env):
        _, _, workload, _ = instr_env
        controller = AdmissionController(budget=1)
        registry = MetricRegistry()
        controller.bind_instruments(registry)
        queries = workload.queries
        controller.request(queries[0], live_count=1, time=0.0)
        controller.withdraw(queries[0].name, time=3.0)
        controller.drain(live_count=0, time=5.0)
        assert registry.get("admission_queue_wait_ticks").count == 0


class TestServiceIntegration:
    def test_service_binds_admission_instruments(self, instr_env):
        service = make_service(instr_env, budget=1)
        names = service.registry.names()
        assert "admission_queue_depth" in names
        assert "admission_queue_wait_ticks" in names

    def test_lifecycle_shows_up_in_registry(self, instr_env):
        _, _, workload, _ = instr_env
        service = make_service(instr_env, budget=1)
        service.submit(workload.queries[0], lifetime=1.0)
        service.submit(workload.queries[1], lifetime=1.0)
        depth = service.registry.get("admission_queue_depth")
        assert depth.value == 1.0
        service.tick(2.0)  # retires the first, drains the second
        assert depth.value == 0.0
        wait = service.registry.get("admission_queue_wait_ticks")
        assert wait.count == 1
        assert wait.sum == 2.0

    def test_exposition_includes_queue_metrics(self, instr_env):
        service = make_service(instr_env)
        text = service.registry.exposition()
        assert "admission_queue_depth" in text
        assert "admission_queue_wait_ticks" in text
