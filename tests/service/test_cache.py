"""Plan cache: LRU bounds, hit accounting, epoch eviction."""

from repro.query.plan import Join, Leaf
from repro.service.cache import CachedPlan, PlanCache


def entry(node_id=0):
    a, b = Leaf.of("A"), Leaf.of("B")
    plan = Join(a, b)
    return CachedPlan(plan=plan, placement={a: 0, b: 1, plan: node_id})


class TestLookups:
    def test_miss_then_hit(self):
        cache = PlanCache()
        key = cache.key("fp", 0, 0)
        assert cache.get(key) is None
        cache.put(key, entry())
        assert cache.get(key) is not None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_epoch_is_part_of_the_key(self):
        cache = PlanCache()
        cache.put(cache.key("fp", 0, 0), entry())
        assert cache.get(cache.key("fp", 1, 0)) is None
        assert cache.get(cache.key("fp", 0, 1)) is None
        assert cache.get(cache.key("fp", 0, 0)) is not None

    def test_hit_rate_zero_before_lookups(self):
        assert PlanCache().hit_rate == 0.0


class TestEviction:
    def test_lru_capacity(self):
        cache = PlanCache(capacity=2)
        k1, k2, k3 = (cache.key(f"fp{i}", 0, 0) for i in range(3))
        cache.put(k1, entry())
        cache.put(k2, entry())
        cache.get(k1)  # refresh k1; k2 becomes LRU
        cache.put(k3, entry())
        assert k1 in cache
        assert k2 not in cache
        assert k3 in cache
        assert cache.evictions == 1

    def test_unbounded(self):
        cache = PlanCache(capacity=None)
        for i in range(1000):
            cache.put(cache.key(f"fp{i}", 0, 0), entry())
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_evict_stale_epochs(self):
        cache = PlanCache()
        cache.put(cache.key("fp1", 0, 0), entry())
        cache.put(cache.key("fp2", 0, 0), entry())
        cache.put(cache.key("fp3", 1, 0), entry())
        removed = cache.evict_stale(1, 0)
        assert removed == 2
        assert len(cache) == 1
        assert cache.invalidations == 2

    def test_demote_rebooks_hit_as_miss(self):
        cache = PlanCache()
        key = cache.key("fp", 0, 0)
        cache.put(key, entry())
        assert cache.get(key) is not None
        cache.demote(key)
        assert cache.hits == 0
        assert cache.misses == 1
        assert key not in cache

    def test_clear(self):
        cache = PlanCache()
        cache.put(cache.key("fp", 0, 0), entry())
        cache.clear()
        assert len(cache) == 0
