"""End-to-end smoke tests for the ``serve`` subcommand."""

import pytest

import repro
from repro.cli import build_parser, main, serve_main


class TestServeCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.budget == 8
        assert args.repeats == 2
        assert args.func.__name__ == "_cmd_serve"

    def test_serve_generated_workload(self, capsys):
        rc = main([
            "serve",
            "--nodes", "24", "--streams", "5", "--queries", "6",
            "--budget", "4", "--repeats", "2", "--lifetime", "3",
            "--max-cs", "4", "--seed", "9",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "query lifecycle service" in out
        assert "plan cache" in out
        assert "hit rate" in out
        assert "deployments/s" in out

    def test_serve_prints_final_gauges_on_shutdown(self, capsys):
        rc = main([
            "serve",
            "--nodes", "16", "--streams", "4", "--queries", "4",
            "--budget", "4", "--repeats", "1", "--lifetime", "2",
            "--max-cs", "4", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "final gauges:" in out
        # drained clean shutdown: nothing queued, nothing live
        assert "service_queue_depth = 0" in out
        assert "service_live_queries = 0" in out
        assert "service_cache_hit_rate = " in out
        assert "planning latency: p50" in out

    def test_serve_replays_a_trace_file(self, tmp_path, capsys):
        net = repro.transit_stub_by_size(16, seed=4)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=4, num_queries=4, joins_per_query=(1, 2)),
            seed=5,
        )
        trace_file = tmp_path / "trace.json"
        trace_file.write_text(repro.workload_to_json(workload))

        rc = main([
            "serve", "--trace", str(trace_file),
            "--budget", "2", "--repeats", "2", "--lifetime", "2",
            "--max-cs", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2x 4 queries" in out
        assert "rejected 0" in out

    def test_serve_main_console_entry(self, capsys):
        rc = serve_main([
            "--nodes", "16", "--streams", "4", "--queries", "3",
            "--budget", "4", "--repeats", "1", "--max-cs", "4", "--seed", "2",
        ])
        assert rc == 0
        assert "query lifecycle service" in capsys.readouterr().out

    def test_bottom_up_algorithm(self, capsys):
        rc = main([
            "serve", "--nodes", "16", "--streams", "4", "--queries", "3",
            "--algorithm", "bottom-up", "--max-cs", "4", "--seed", "2",
        ])
        assert rc == 0
