"""TimeSeriesStore ring buffers, aggregations, and the registry scraper."""

import pytest

from repro.obs.metrics import MetricRegistry
from repro.obs.timeseries import (
    WALL_CLOCK_SERIES,
    TelemetryScraper,
    TimeSeriesStore,
    scoped_name,
    series_to_csv,
)


class TestTimeSeriesStore:
    def test_append_and_lookup(self):
        store = TimeSeriesStore()
        store.append("a", 1.0, 10.0)
        store.append("a", 2.0, 12.0)
        store.append("b", 1.0, 0.5)
        assert store.names() == ["a", "b"]
        assert store.series("a") == [(1.0, 10.0), (2.0, 12.0)]
        assert store.last("a") == 12.0
        assert store.last_time("a") == 2.0
        assert store.last("missing") is None
        assert len(store) == 2

    def test_capacity_is_a_ring_buffer(self):
        store = TimeSeriesStore(capacity=3)
        for t in range(6):
            store.append("a", float(t), float(t * 10))
        assert store.series("a") == [(3.0, 30.0), (4.0, 40.0), (5.0, 50.0)]
        with pytest.raises(ValueError):
            TimeSeriesStore(capacity=0)

    def test_window_filters_by_time(self):
        store = TimeSeriesStore()
        for t in range(10):
            store.append("a", float(t), float(t))
        assert store.window("a", duration=3.0) == [
            (6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0),
        ]
        assert store.window("a", duration=2.0, now=5.0) == [
            (3.0, 3.0), (4.0, 4.0), (5.0, 5.0),
        ]
        assert store.window("a") == store.series("a")

    def test_delta_and_rate(self):
        store = TimeSeriesStore()
        store.append("c", 1.0, 10.0)
        assert store.delta("c") is None  # one sample is not a trend
        store.append("c", 3.0, 16.0)
        assert store.delta("c") == 6.0
        assert store.rate("c") == 3.0
        store.append("c", 3.0, 16.0)  # zero elapsed inside the window
        assert store.rate("c", window=0.0) is None

    def test_ewma_smooths_toward_recent_values(self):
        store = TimeSeriesStore()
        for t, v in enumerate([0.0, 0.0, 0.0, 10.0]):
            store.append("a", float(t), v)
        smoothed = store.ewma("a", alpha=0.5)
        assert 0.0 < smoothed < 10.0
        assert smoothed == 5.0  # 0 -> 0 -> 0 -> (0.5*10 + 0.5*0)
        with pytest.raises(ValueError):
            store.ewma("a", alpha=0.0)

    def test_bucketed_quantile_brackets_the_exact_rank(self):
        store = TimeSeriesStore()
        for t in range(100):
            store.append("lat", float(t), float(t))
        p50 = store.quantile("lat", 0.5)
        p95 = store.quantile("lat", 0.95)
        assert 40.0 <= p50 <= 60.0
        assert 90.0 <= p95 <= 99.0
        assert store.quantile("lat", 0.0) == 0.0
        # constant series short-circuits to the constant
        store.append("flat", 0.0, 7.0)
        store.append("flat", 1.0, 7.0)
        assert store.quantile("flat", 0.9) == 7.0
        with pytest.raises(ValueError):
            store.quantile("lat", 1.5)

    def test_aggregate_dispatch(self):
        store = TimeSeriesStore()
        for t, v in enumerate([1.0, 5.0, 3.0]):
            store.append("a", float(t), v)
        assert store.aggregate("a", "last") == 3.0
        assert store.aggregate("a", "min") == 1.0
        assert store.aggregate("a", "max") == 5.0
        assert store.aggregate("a", "mean") == 3.0
        assert store.aggregate("a", "delta") == 2.0
        assert store.aggregate("a", "quantile", q=0.5) is not None
        assert store.aggregate("missing", "last") is None
        with pytest.raises(ValueError):
            store.aggregate("a", "median")
        with pytest.raises(ValueError):
            store.aggregate("a", "quantile")  # q is required

    def test_to_dict_roundtrip(self):
        store = TimeSeriesStore()
        store.append("b", 1.0, 2.0)
        store.append("a", 1.0, 1.0)
        doc = store.to_dict()
        assert list(doc) == ["a", "b"]  # sorted for determinism
        rebuilt = TimeSeriesStore.from_dict(doc)
        assert rebuilt.to_dict() == doc


class TestTelemetryScraper:
    def _registry(self):
        registry = MetricRegistry()
        counter = registry.counter("reqs_total", help="requests")
        gauge = registry.gauge("depth", help="queue depth")
        hist = registry.histogram("wait", help="wait", buckets=(1.0, 5.0, 10.0))
        return registry, counter, gauge, hist

    def test_scrapes_counters_gauges_histograms(self):
        registry, counter, gauge, hist = self._registry()
        store = TimeSeriesStore()
        scraper = TelemetryScraper(store)
        scraper.register("svc", registry)
        counter.inc(3, time=0.5)
        gauge.set(7, time=0.5)
        for v in (0.5, 2.0, 8.0):
            hist.observe(v, time=0.5)
        appended = scraper.scrape(1.0)
        assert appended > 0
        assert store.last("svc.reqs_total") == 3.0
        assert store.last("svc.depth") == 7.0
        assert store.last("svc.wait_count") == 3.0
        assert store.last("svc.wait_sum") == 10.5
        assert store.last("svc.wait_p50") is not None
        assert store.last("svc.wait_p95") is not None

    def test_unset_gauges_and_empty_histogram_quantiles_are_skipped(self):
        registry, counter, gauge, hist = self._registry()
        store = TimeSeriesStore()
        scraper = TelemetryScraper(store)
        scraper.register("svc", registry)
        counter.inc(time=0.0)
        scraper.scrape(1.0)
        assert store.last("svc.depth") is None  # never set
        assert store.last("svc.wait_count") == 0.0  # count/sum always emit
        assert store.last("svc.wait_p50") is None  # but no quantiles

    def test_cadence_gates_scrapes(self):
        registry, counter, *_ = self._registry()
        store = TimeSeriesStore()
        scraper = TelemetryScraper(store, cadence=2.0)
        scraper.register("svc", registry)
        counter.inc(time=0.0)
        assert scraper.due(1.0)
        assert scraper.scrape(1.0) > 0
        assert not scraper.due(2.0)
        assert scraper.scrape(2.0) == 0
        assert scraper.scrape(2.0, force=True) > 0
        assert scraper.due(4.5)
        with pytest.raises(ValueError):
            TelemetryScraper(store, cadence=0.0)

    def test_wall_clock_series_dropped_by_default(self):
        registry = MetricRegistry()
        wall = registry.histogram("service_planning_seconds", help="wall")
        wall.observe(0.01, time=0.0)
        assert "service_planning_seconds" in WALL_CLOCK_SERIES

        store = TimeSeriesStore()
        scraper = TelemetryScraper(store, include_wall_clock=False)
        scraper.register("svc", registry)
        scraper.scrape(1.0)
        assert store.names() == []

        kept = TimeSeriesStore()
        keeper = TelemetryScraper(kept, include_wall_clock=True)
        keeper.register("svc", registry)
        keeper.scrape(1.0)
        assert "svc.service_planning_seconds_count" in kept.names()

    def test_register_is_idempotent_and_sources_plug_in(self):
        registry, counter, *_ = self._registry()
        store = TimeSeriesStore()
        scraper = TelemetryScraper(store)
        scraper.register("svc", registry)
        scraper.register("svc", registry)
        scraper.add_source("extra", lambda: {"custom": 42.0})
        assert scraper.scopes() == ["svc", "extra"]
        counter.inc(time=0.0)
        scraper.scrape(1.0)
        assert store.series("svc.reqs_total") == [(1.0, 3.0)] or store.series(
            "svc.reqs_total"
        ) == [(1.0, 1.0)]  # scraped once, not twice
        assert len(store.series("svc.reqs_total")) == 1
        assert store.last("extra.custom") == 42.0

    def test_scoped_name(self):
        assert scoped_name("svc", "m") == "svc.m"
        assert scoped_name("", "m") == "m"


class TestCsvExport:
    def make_store(self):
        store = TimeSeriesStore()
        store.append("b.second", 1.0, 4.0)
        store.append("a.first", 1.0, 2.0)
        store.append("a.first", 2.0, 2.5)
        return store

    def test_long_form_rows_sorted_by_series_then_time(self):
        assert self.make_store().to_csv() == (
            "series,time,value\n"
            "a.first,1.0,2.0\n"
            "a.first,2.0,2.5\n"
            "b.second,1.0,4.0\n"
        )

    def test_empty_store_is_header_only(self):
        assert TimeSeriesStore().to_csv() == "series,time,value\n"

    def test_values_round_trip_through_repr(self):
        store = TimeSeriesStore()
        store.append("x", 1.0, 0.1 + 0.2)  # the classic non-decimal float
        row = store.to_csv().splitlines()[1]
        assert float(row.split(",")[2]) == 0.1 + 0.2

    def test_prefix_columns_lead_each_row(self):
        csv = series_to_csv(
            {"x": [[1.0, 2.0]]}, prefix={"candidate": "reuse"}
        )
        assert csv == (
            "candidate,series,time,value\n"
            "reuse,x,1.0,2.0\n"
        )

    def test_fields_with_commas_or_quotes_are_rfc4180_quoted(self):
        csv = series_to_csv(
            {'weird,"name"': [[1.0, 2.0]]}, prefix={"tag": "a,b"}
        )
        assert '"a,b","weird,""name""",1.0,2.0' in csv

    def test_csv_matches_the_envelope_series_section(self):
        store = self.make_store()
        assert store.to_csv() == series_to_csv(store.to_dict())
