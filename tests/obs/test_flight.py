"""FlightRecorder ring buffer and debug-bundle freezing."""

import json
from types import SimpleNamespace

import pytest

from repro.obs.flight import BUNDLE_KIND, FlightRecorder


def hop(trace_id, send=1.0, deliver=1.1, src=0, dst=1, kind="deploy"):
    return SimpleNamespace(
        context=SimpleNamespace(trace_id=trace_id),
        kind=kind,
        src=src,
        dst=dst,
        send_time=send,
        deliver_time=deliver,
    )


class TestFlightRecorder:
    def test_ring_buffer_caps_entries(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("event", float(i), "svc", n=i)
        assert len(rec) == 3
        assert [e["n"] for e in rec.entries()] == [2, 3, 4]
        assert rec.recorded_total == 5
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_record_tick_extracts_report_fields(self):
        rec = FlightRecorder()
        report = SimpleNamespace(
            deployed=["q1"], retired=[], parked=["q2"],
            migrated=[("q3", 1, 2)], drift_streams=[],
        )
        rec.record_tick("svc", 4.0, report)
        (entry,) = rec.entries()
        assert entry["kind"] == "tick"
        assert entry["time"] == 4.0
        assert entry["deployed"] == ["q1"]
        assert entry["parked"] == ["q2"]
        assert entry["migrated"] == [["q3", 1, 2]]
        assert "retired" not in entry  # empty fields stay off the entry

    def test_record_event_tolerates_time_and_scope_keys(self):
        rec = FlightRecorder()
        rec.record_event("svc", 2.0, {"rule": "r", "time": 1.5, "scope": "x"})
        (entry,) = rec.entries()
        assert entry["time"] == 2.0  # recorder's stamp wins
        assert entry["scope"] == "svc"
        assert entry["rule"] == "r"

    def test_hops_and_trace_ids(self):
        rec = FlightRecorder()
        n = rec.record_hops("svc", [hop("t-2"), hop("t-1"), hop("t-2")])
        assert n == 3
        assert rec.trace_ids() == ["t-1", "t-2"]

    def test_bundle_freezes_and_is_bounded(self):
        rec = FlightRecorder(capacity=8, max_bundles=2)
        rec.record_hops("svc", [hop("t-1")])
        doc = rec.bundle("breaker_open", 5.0, scope="svc", context={"opens": 1})
        assert doc["kind"] == BUNDLE_KIND
        assert doc["trace_ids"] == ["t-1"]
        assert doc["context"] == {"opens": 1}
        assert doc["entries"] == rec.entries()
        json.dumps(doc, allow_nan=False)
        for i in range(3):
            rec.bundle(f"alert:{i}", 6.0 + i)
        assert len(rec.bundles) == 2  # bounded
        assert rec.bundles_total == 4
        snap = rec.snapshot()
        assert snap["bundles_total"] == 4
        assert len(snap["bundles"]) == 2
