"""Plan explanations: content, rendering, and JSON round-trips."""

import json

import pytest

from repro.core.exhaustive import OptimalPlanner
from repro.core.top_down import TopDownOptimizer
from repro.hierarchy import build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.obs import PlanExplanation, Tracer, build_explanation
from repro.query.deployment import DeploymentState
from repro.serialization import (
    explanation_from_json,
    explanation_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.workload.generator import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def env():
    net = transit_stub_by_size(32, seed=6)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(3, 4)),
        seed=13,
    )
    hierarchy = build_hierarchy(net, max_cs=8, seed=0)
    return net, hierarchy, workload


class TestExplainFlag:
    def test_explain_attaches_an_explanation(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        optimizer = TopDownOptimizer(hierarchy, rates)
        query = workload.queries[0]
        deployment = optimizer.plan(query, None, explain=True)
        exp = deployment.explanation
        assert isinstance(exp, PlanExplanation)
        assert exp.query == query.name
        assert exp.algorithm == "top-down"
        assert exp.plan == deployment.plan.pretty()
        assert exp.sink == query.sink
        assert len(exp.operators) == deployment.plan.num_joins
        assert exp.cost_estimate == pytest.approx(deployment.stats["est_cost"])
        assert exp.totals["plans_examined"] > 0
        assert all(step["step"] == "task" for step in exp.levels)

    def test_without_explain_no_explanation(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        optimizer = TopDownOptimizer(hierarchy, rates)
        deployment = optimizer.plan(workload.queries[0], None)
        assert deployment.explanation is None

    def test_operator_inputs_carry_rates_and_ship_costs(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        optimizer = OptimalPlanner(net, rates)
        deployment = optimizer.plan(workload.queries[1], None, explain=True)
        for op in deployment.explanation.operators:
            assert op["node"] in net.nodes()
            for inp in op["inputs"]:
                assert inp["kind"] in ("base stream", "reused view", "join output")
                assert inp["rate"] > 0
                assert inp["ship_cost"] >= 0

    def test_reused_views_are_reported(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        optimizer = OptimalPlanner(net, rates)
        query = workload.queries[0]
        state.apply(optimizer.plan(query, state))
        # identical sources resubmitted: the second plan can reuse views
        clone = query.rename(f"{query.name}.again") if hasattr(query, "rename") else None
        if clone is None:
            from repro.query.query import Query

            clone = Query(
                f"{query.name}.again",
                sources=query.sources,
                sink=query.sink,
                predicates=query.predicates,
                window=query.window,
            )
        deployment = optimizer.plan(clone, state, explain=True)
        reused_leaves = [l for l in deployment.plan.leaves() if not l.is_base_stream]
        assert len(deployment.explanation.reused_views) == len(reused_leaves)
        text = deployment.explanation.render()
        if reused_leaves:
            assert "reused (not recomputed):" in text
        else:
            assert "reused: nothing" in text

    def test_render_is_operator_readable(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        optimizer = TopDownOptimizer(hierarchy, rates)
        deployment = optimizer.plan(workload.queries[2], None, explain=True)
        text = deployment.explanation.render()
        assert "plan explanation:" in text
        assert "join order:" in text
        assert "JOIN" in text
        assert "per planning step:" in text


class TestSerialization:
    def test_explanation_round_trips_through_json(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        optimizer = TopDownOptimizer(hierarchy, rates)
        deployment = optimizer.plan(workload.queries[0], None, explain=True)
        exp = deployment.explanation
        doc = explanation_to_json(exp)
        json.loads(doc)  # valid JSON
        rebuilt = explanation_from_json(doc)
        assert rebuilt.to_dict() == exp.to_dict()
        assert rebuilt.render() == exp.render()

    def test_trace_round_trips_through_json(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        tracer = Tracer()
        optimizer = TopDownOptimizer(hierarchy, rates, tracer=tracer)
        optimizer.plan(workload.queries[0], None)
        root = tracer.last_root
        doc = trace_to_json(root)
        rebuilt = trace_from_json(doc)
        assert rebuilt.to_dict() == root.to_dict()

    def test_wrong_kind_is_rejected(self):
        with pytest.raises(ValueError, match="not a serialized trace"):
            trace_from_json('{"kind": "repro.query"}')
        with pytest.raises(ValueError, match="not a serialized explanation"):
            explanation_from_json('{"kind": "repro.trace"}')


class TestBuildExplanation:
    def test_build_without_trace_falls_back_to_stats(self, env):
        net, hierarchy, workload = env
        rates = workload.rate_model()
        optimizer = OptimalPlanner(net, rates)
        deployment = optimizer.plan(workload.queries[0], None)
        exp = build_explanation(deployment)
        assert exp.levels == []
        assert exp.totals["plans_examined"] == deployment.stats["plans_examined"]
        assert exp.operators  # plan-side content needs no trace
