"""Causal tracer: contexts, hops, trees, exports, flow-cost accounting."""

import pytest

from repro.core import TopDownOptimizer
from repro.core.cost import deployment_cost
from repro.hierarchy import build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.obs import NULL_CAUSAL, CausalTracer, TraceContext
from repro.runtime import simulate_deployment
from repro.runtime.messages import DeployCommand
from repro.runtime.simulator import Simulator, SimNode
from repro.serialization import (
    causal_trace_from_json,
    causal_trace_to_json,
    chrome_trace_to_json,
)
from repro.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def env():
    net = transit_stub_by_size(32, seed=2)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=8, num_queries=6, joins_per_query=(2, 4)),
        seed=3,
    )
    rates = workload.rate_model()
    hierarchy = build_hierarchy(net, max_cs=4, seed=0)
    deployment = TopDownOptimizer(hierarchy, rates).plan(workload.queries[0])
    return net, rates, deployment


class TestTraceContext:
    def test_child_links_and_counts_hops(self):
        root = TraceContext(trace_id="t", span_id="a")
        child = root.child("b")
        grandchild = child.child("c")
        assert child.trace_id == "t"
        assert child.parent_id == "a"
        assert child.hop == 1
        assert grandchild.parent_id == "b"
        assert grandchild.hop == 2

    def test_is_frozen_and_json_ready(self):
        ctx = TraceContext(trace_id="t", span_id="a")
        with pytest.raises(AttributeError):
            ctx.span_id = "other"
        assert ctx.to_dict() == {
            "trace_id": "t", "span_id": "a", "parent_id": None, "hop": 0,
        }


class TestCausalTracerUnits:
    def test_ids_are_deterministic(self):
        def collect():
            tracer = CausalTracer()
            tracer.new_trace("deploy:q", node=3)
            tracer.record_hop("QuerySubmit", 3, 5, time=0.0)
            tracer.record_hop("PlanRequest", 5, 7, time=1.0)
            return [h.context.span_id for h in tracer.hops]

        assert collect() == collect()

    def test_record_hop_parents_under_active_context(self):
        tracer = CausalTracer()
        root = tracer.new_trace("deploy:q", node=3, est_cost=12.5)
        hop = tracer.record_hop("QuerySubmit", 3, 5, time=0.0, link_delay=0.01)
        assert hop.context.trace_id == root.trace_id
        assert hop.context.parent_id == root.span_id
        assert hop.deliver_time == pytest.approx(0.01)
        assert tracer.trace_ids() == [root.trace_id]

    def test_record_hop_without_context_opens_a_root(self):
        tracer = CausalTracer()
        hop = tracer.record_hop("DeployCommand", 1, 2, time=0.0)
        assert hop.context.parent_id is None
        assert tracer.trace_ids() == [hop.context.trace_id]

    def test_span_tree_carries_hop_tags(self):
        tracer = CausalTracer()
        tracer.new_trace("deploy:q", node=3)
        tracer.record_hop("QuerySubmit", 3, 5, time=0.0, link_cost=4.0)
        tree = tracer.span_tree(tracer.trace_ids()[0])
        assert tree.name == "deploy:q"
        (child,) = tree.children
        assert child.name == "QuerySubmit"
        assert child.tags["src"] == 3
        assert child.tags["dst"] == 5
        assert child.tags["link_cost"] == 4.0
        assert tracer.span_tree(tracer.trace_ids()[0]).render()

    def test_span_tree_unknown_trace_raises(self):
        with pytest.raises(KeyError):
            CausalTracer().span_tree("nope")

    def test_null_tracer_is_inert(self):
        assert not NULL_CAUSAL.enabled
        assert NULL_CAUSAL.trace_ids() == []
        assert NULL_CAUSAL.summary()["hops"] == 0


class TestSimulatorIntegration:
    def make_sim(self, net):
        sim = Simulator(net)

        class Sink(SimNode):
            def on_message(self, src, message):
                pass

        for node in net.nodes():
            sim.register(Sink(node))
        return sim

    def test_on_send_stamps_messages_and_records_cost(self):
        net = transit_stub_by_size(16, seed=1)
        sim = self.make_sim(net)
        tracer = CausalTracer()
        sim.attach_trace(tracer)
        root = tracer.new_trace("deploy:q", node=0)
        sim.send(0, 5, DeployCommand("q", "op1"))
        sim.run()
        (root_hop, hop) = tracer.hops
        assert hop.kind == "DeployCommand"
        assert hop.context.trace_id == root.trace_id
        assert hop.link_cost == pytest.approx(float(net.cost_matrix()[0, 5]))
        assert hop.link_delay == pytest.approx(net.path_delay(0, 5))
        assert hop.deliveries == 1
        assert hop.deliver_time == pytest.approx(hop.send_time + hop.link_delay)

    def test_resend_is_a_retransmit_under_the_original(self):
        net = transit_stub_by_size(16, seed=1)
        sim = self.make_sim(net)
        tracer = CausalTracer()
        sim.attach_trace(tracer)
        tracer.new_trace("deploy:q", node=0)
        message = DeployCommand("q", "op1")
        sim.send(0, 5, message)
        sim.send(0, 5, DeployCommand("q", "op1"))  # same identity, new object
        sim.run()
        _, first, resend = tracer.hops
        assert not first.retransmit
        assert first.retransmit_count == 1
        assert resend.retransmit
        assert resend.context.trace_id == first.context.trace_id
        assert resend.context.parent_id == first.context.span_id
        assert tracer.retransmissions() == 1
        # one tree, no fresh roots
        assert len(tracer.trace_ids()) == 1


class TestFlowAccounting:
    def test_flow_hops_sum_to_communication_cost(self, env):
        net, rates, deployment = env
        tracer = CausalTracer()
        simulate_deployment(net, deployment, trace=tracer, rates=rates)
        (trace_id,) = tracer.trace_ids()
        expected = deployment_cost(deployment, net.cost_matrix(), rates)
        assert tracer.flow_cost(trace_id) == pytest.approx(expected, rel=0, abs=1e-9)

    def test_every_hop_lands_in_the_single_deploy_tree(self, env):
        net, rates, deployment = env
        tracer = CausalTracer()
        timeline = simulate_deployment(net, deployment, trace=tracer, rates=rates)
        (trace_id,) = tracer.trace_ids()
        assert all(h.context.trace_id == trace_id for h in tracer.hops)
        tree = tracer.span_tree(trace_id)
        assert tree.name == f"deploy:{deployment.query.name}"
        # the whole tree hangs off one root: every span is reachable
        assert sum(1 for _ in tree.walk()) == len(tracer.hops)
        # every delivery the simulator counted is on some non-flow hop
        # (the synthetic root contributes none, flow hops are costed
        # edges, relays count one each)
        delivered = sum(
            h.deliveries for h in tracer.hops if not h.tags.get("flow")
        )
        assert delivered == timeline.messages


class TestExports:
    def test_json_envelope_round_trips(self, env):
        net, rates, deployment = env
        tracer = CausalTracer()
        simulate_deployment(net, deployment, trace=tracer, rates=rates)
        doc = causal_trace_from_json(causal_trace_to_json(tracer))
        assert doc["kind"] == "repro.causal_trace"
        (trace,) = doc["traces"]
        assert trace["flow_cost"] == pytest.approx(
            tracer.flow_cost(trace["trace_id"])
        )
        assert len(trace["hops"]) == len(tracer.hops)
        assert doc["summary"]["hops"] == len(tracer.hops)

    def test_chrome_trace_events(self, env):
        import json

        net, rates, deployment = env
        tracer = CausalTracer()
        simulate_deployment(net, deployment, trace=tracer, rates=rates)
        events = json.loads(chrome_trace_to_json(tracer))
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1  # one process per trace
        assert meta[0]["args"]["name"] == tracer.trace_ids()[0]
        assert len(spans) == len(tracer.hops)
        for event in spans:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["cat"] in ("causal", "flow")
