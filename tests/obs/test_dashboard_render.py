"""Dashboard renderer edge cases: sparklines that must never explode.

Regression suite for degenerate series -- constant, single-sample,
NaN/inf-contaminated -- which previously could divide by zero or emit
invalid SVG coordinates.
"""

import math

from repro.obs.dashboard import SPARK_CHARS, _svg_spark, sparkline

NAN = float("nan")
INF = float("inf")


class TestSparkline:
    def test_empty_series_is_empty(self):
        assert sparkline([]) == ""

    def test_single_sample_renders_lowest_bar(self):
        assert sparkline([5.0]) == SPARK_CHARS[0]

    def test_constant_series_renders_flat_at_lowest_bar(self):
        assert sparkline([3.0] * 6) == SPARK_CHARS[0] * 6

    def test_nan_renders_as_gap_without_poisoning_the_scale(self):
        out = sparkline([0.0, NAN, 8.0])
        assert len(out) == 3
        assert out[1] == " "
        assert out[0] == SPARK_CHARS[0]
        assert out[2] == SPARK_CHARS[-1]

    def test_infinities_render_as_gaps(self):
        out = sparkline([INF, 1.0, -INF, 2.0])
        assert out[0] == " " and out[2] == " "
        assert out[1] != " " and out[3] != " "

    def test_all_non_finite_is_all_gaps(self):
        assert sparkline([NAN, INF, -INF]) == "   "

    def test_max_value_stays_in_the_character_ladder(self):
        out = sparkline([0.0, 1.0])
        assert out[1] == SPARK_CHARS[7]

    def test_width_keeps_the_newest_samples(self):
        values = list(range(100))
        out = sparkline(values, width=8)
        assert len(out) == 8
        # oldest retained sample maps low, newest maps high
        assert out[0] == SPARK_CHARS[0]
        assert out[-1] == SPARK_CHARS[-1]

    def test_nan_tail_within_constant_series(self):
        out = sparkline([2.0, 2.0, NAN])
        assert out == SPARK_CHARS[0] * 2 + " "


class TestSvgSpark:
    def test_empty_series_renders_nothing(self):
        assert _svg_spark([]) == ""

    def test_all_non_finite_renders_nothing(self):
        assert _svg_spark([NAN, INF]) == ""

    def test_single_sample_draws_a_midline(self):
        svg = _svg_spark([7.0])
        assert svg.startswith('<svg class="spark"')
        assert "polyline" in svg

    def test_constant_series_is_valid_markup(self):
        svg = _svg_spark([4.0, 4.0, 4.0])
        assert "nan" not in svg.lower()
        assert "inf" not in svg.lower()

    def test_non_finite_samples_are_dropped_not_plotted(self):
        clean = _svg_spark([1.0, 2.0, 3.0])
        dirty = _svg_spark([1.0, NAN, 2.0, INF, 3.0])
        assert "nan" not in dirty.lower() and "inf" not in dirty.lower()
        # dropping the junk leaves exactly the finite polyline
        assert dirty == clean

    def test_coordinates_stay_inside_the_viewbox(self):
        svg = _svg_spark([0.0, 100.0, 50.0], width=140, height=26)
        points = svg.split('points="')[1].split('"')[0]
        for pair in points.split():
            x, y = map(float, pair.split(","))
            assert 0.0 <= x <= 140.0
            assert 0.0 <= y <= 26.0

    def test_math_nan_guard_matches_the_math_module(self):
        # Belt and braces: values produced by real math, not literals.
        out = sparkline([math.inf, math.nan, 1.0])
        assert out[:2] == "  "
