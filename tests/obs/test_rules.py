"""Alerting-rule lifecycle, rule types, and the default SLO pack."""

import json

import pytest

from repro.obs.rules import (
    AbsenceRule,
    BurnRateRule,
    FairnessSkewRule,
    RecordingRule,
    RuleState,
    RulesEngine,
    ThresholdRule,
    default_rule_pack,
)
from repro.obs.timeseries import TimeSeriesStore


def make_store(**series):
    store = TimeSeriesStore()
    for name, points in series.items():
        for t, v in points:
            store.append(name, t, v)
    return store


class TestLifecycle:
    def test_pending_firing_resolved_inactive(self):
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 10.0, for_ticks=2.0)
        engine = RulesEngine(store, [rule])

        store.append("x", 1.0, 5.0)
        assert engine.evaluate(1.0) == []
        assert rule.state is RuleState.INACTIVE

        store.append("x", 2.0, 20.0)  # breach starts
        events = engine.evaluate(2.0)
        assert rule.state is RuleState.PENDING
        assert [e["to"] for e in events] == ["pending"]

        store.append("x", 3.0, 20.0)  # sustained but < for_ticks
        assert engine.evaluate(3.0) == []
        assert rule.state is RuleState.PENDING

        store.append("x", 4.0, 20.0)  # sustained >= for_ticks
        events = engine.evaluate(4.0)
        assert rule.state is RuleState.FIRING
        assert [e["to"] for e in events] == ["firing"]
        assert rule.fired_at == 4.0
        assert rule.fire_count == 1

        store.append("x", 5.0, 5.0)  # clears
        events = engine.evaluate(5.0)
        assert rule.state is RuleState.RESOLVED
        assert [e["to"] for e in events] == ["resolved"]

        store.append("x", 6.0, 5.0)  # one tick in RESOLVED, then quiet
        events = engine.evaluate(6.0)
        assert rule.state is RuleState.INACTIVE
        assert [e["to"] for e in events] == ["inactive"]

    def test_reentry_from_resolved_restarts_the_hysteresis_clock(self):
        """FIRING -> RESOLVED -> PENDING -> FIRING: a breach that comes
        back right after resolving must serve the full ``for_ticks``
        dwell again -- the first episode's pending_since never bleeds
        into the second."""
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 10.0, for_ticks=2.0)
        engine = RulesEngine(store, [rule])

        # episode one: breach at t=1, fire at t=3, clear at t=4
        for t in (1.0, 2.0, 3.0):
            store.append("x", t, 20.0)
            engine.evaluate(t)
        assert rule.state is RuleState.FIRING
        assert rule.fire_count == 1
        store.append("x", 4.0, 5.0)
        engine.evaluate(4.0)
        assert rule.state is RuleState.RESOLVED

        # episode two: breach returns while still RESOLVED
        store.append("x", 5.0, 20.0)
        events = engine.evaluate(5.0)
        assert rule.state is RuleState.PENDING
        assert [e["to"] for e in events] == ["pending"]
        assert rule.pending_since == 5.0  # fresh clock, not episode one's

        # one sustained tick is not enough for for_ticks=2 ...
        store.append("x", 6.0, 20.0)
        engine.evaluate(6.0)
        assert rule.state is RuleState.PENDING

        # ... two are: second independent firing
        store.append("x", 7.0, 20.0)
        events = engine.evaluate(7.0)
        assert rule.state is RuleState.FIRING
        assert [e["to"] for e in events] == ["firing"]
        assert rule.fire_count == 2
        assert rule.fired_at == 7.0

    def test_reentry_transitions_are_all_journaled(self):
        """The engine's event log carries both complete episodes in
        order -- reports count ``to == "firing"`` transitions, so a
        swallowed re-entry would undercount alerts."""
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 10.0, for_ticks=1.0)
        engine = RulesEngine(store, [rule])
        pattern = [20.0, 20.0, 5.0, 20.0, 20.0, 5.0]
        for i, value in enumerate(pattern, start=1):
            store.append("x", float(i), value)
            engine.evaluate(float(i))
        transitions = [e["to"] for e in engine.events]
        assert transitions == [
            "pending", "firing", "resolved",
            "pending", "firing", "resolved",
        ]
        assert sum(1 for t in transitions if t == "firing") == 2

    def test_resolved_quiet_tick_then_reentry_from_inactive(self):
        """If the breach returns only after the RESOLVED tick has
        decayed to INACTIVE, the rule still re-enters cleanly."""
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 10.0, for_ticks=0.0)
        engine = RulesEngine(store, [rule])
        store.append("x", 1.0, 20.0)
        engine.evaluate(1.0)
        assert rule.state is RuleState.FIRING
        store.append("x", 2.0, 5.0)
        engine.evaluate(2.0)
        assert rule.state is RuleState.RESOLVED
        store.append("x", 3.0, 5.0)
        engine.evaluate(3.0)
        assert rule.state is RuleState.INACTIVE
        store.append("x", 4.0, 20.0)
        engine.evaluate(4.0)
        assert rule.state is RuleState.FIRING
        assert rule.fire_count == 2

    def test_pending_unbreach_goes_straight_inactive(self):
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 10.0, for_ticks=3.0)
        engine = RulesEngine(store, [rule])
        store.append("x", 1.0, 20.0)
        engine.evaluate(1.0)
        assert rule.state is RuleState.PENDING
        store.append("x", 2.0, 1.0)
        engine.evaluate(2.0)
        assert rule.state is RuleState.INACTIVE
        assert rule.fire_count == 0

    def test_for_ticks_zero_fires_immediately(self):
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 0.0)
        engine = RulesEngine(store, [rule])
        store.append("x", 1.0, 1.0)
        events = engine.evaluate(1.0)
        assert rule.state is RuleState.FIRING
        # pending and firing happen on the same tick; one event reported
        assert [e["to"] for e in events] == ["firing"]

    def test_engine_history_and_firing(self):
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "x", ">", 0.0)
        engine = RulesEngine(store, [rule])
        store.append("x", 1.0, 1.0)
        engine.evaluate(1.0)
        assert engine.firing() == [rule]
        assert len(engine.events) == 1
        snap = engine.snapshot()
        assert snap["alerts"][0]["state"] == "firing"
        assert snap["events"] == engine.events


class TestRuleTypes:
    def test_threshold_warmup_guard(self):
        store = make_store(
            hit_rate=[(1.0, 0.0)],
            lookups=[(1.0, 1.0)],
        )
        rule = ThresholdRule(
            "r", "hit_rate", "<", 0.5,
            activate_series="lookups", activate_at=5.0,
        )
        # cold: lookups < 5, a 0.0 hit rate is not a breach yet
        assert not rule.breached(rule.value(store, 1.0), 1.0)
        store.append("hit_rate", 3.0, 0.0)
        store.append("lookups", 3.0, 10.0)
        assert rule.breached(rule.value(store, 3.0), 3.0)

    def test_threshold_missing_series_never_breaches(self):
        store = TimeSeriesStore()
        rule = ThresholdRule("r", "missing", ">", 0.0)
        assert rule.evaluate(store, 1.0) is None
        assert rule.state is RuleState.INACTIVE

    def test_threshold_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            ThresholdRule("r", "x", "~", 1.0)

    def test_absence_rule_counts_never_reported_as_absent(self):
        store = TimeSeriesStore()
        rule = AbsenceRule("r", "hb", stale_after=3.0)
        assert rule.breached(rule.value(store, 10.0), 10.0)
        store.append("hb", 9.0, 1.0)
        assert not rule.breached(rule.value(store, 10.0), 10.0)
        assert rule.breached(rule.value(store, 13.5), 13.5)

    def test_burn_rate_math(self):
        # 20 total, 14 good over the window -> error 0.3, budget 0.1
        store = make_store(
            good=[(0.0, 0.0), (8.0, 14.0)],
            total=[(0.0, 0.0), (8.0, 20.0)],
        )
        rule = BurnRateRule("r", "good", "total", objective=0.9, max_burn=2.0)
        value = rule.value(store, 8.0)
        assert value == pytest.approx(3.0)
        assert rule.breached(value, 8.0)
        with pytest.raises(ValueError):
            BurnRateRule("r2", "good", "total", objective=1.0, max_burn=1.0)

    def test_burn_rate_needs_traffic(self):
        store = make_store(good=[(0.0, 0.0)], total=[(0.0, 0.0)])
        rule = BurnRateRule("r", "good", "total", objective=0.9, max_burn=1.0)
        assert rule.value(store, 1.0) is None

    def test_fairness_skew_weight_normalized(self):
        store = make_store(gold=[(1.0, 8.0)], bronze=[(1.0, 1.0)])
        rule = FairnessSkewRule(
            "r", {"gold": 2.0, "bronze": 1.0}, threshold=3.0
        )
        # shares 4.0 vs 1.0 -> skew 4.0 > 3.0
        value = rule.value(store, 1.0)
        assert value == pytest.approx(4.0)
        assert rule.breached(value, 1.0)

    def test_fairness_skew_inf_stays_json_safe(self):
        store = make_store(gold=[(1.0, 8.0)], bronze=[(1.0, 0.0)])
        rule = FairnessSkewRule("r", {"gold": 1.0, "bronze": 1.0}, threshold=3.0)
        rule.evaluate(store, 1.0)
        snap = rule.snapshot()
        assert snap["value"] == "inf"
        json.dumps(snap, allow_nan=False)  # must not raise

    def test_fairness_skew_quiet_below_min_total(self):
        store = make_store(gold=[(1.0, 0.5)], bronze=[(1.0, 0.1)])
        rule = FairnessSkewRule(
            "r", {"gold": 1.0, "bronze": 1.0}, threshold=2.0, min_total=4.0
        )
        assert rule.value(store, 1.0) is None
        with pytest.raises(ValueError):
            FairnessSkewRule("r2", {"gold": 1.0}, threshold=2.0)

    def test_recording_rule_derives_series(self):
        store = make_store(a=[(1.0, 3.0)], b=[(1.0, 4.0)])
        rule = RecordingRule("sum_ab", ["a", "b"], combine="sum")
        rule.evaluate(store, 1.0)
        assert store.last("sum_ab") == 7.0
        # derived series is immediately visible to alert rules
        alert = ThresholdRule("r", "sum_ab", ">", 5.0)
        engine = RulesEngine(store, [alert])
        events = engine.evaluate(1.0)
        assert [e["to"] for e in events] == ["firing"]

    def test_duplicate_rule_names_raise(self):
        store = TimeSeriesStore()
        engine = RulesEngine(store, [ThresholdRule("r", "x", ">", 1.0)])
        with pytest.raises(ValueError):
            engine.add(ThresholdRule("r", "y", "<", 1.0))
        assert engine.rule("r").series == "x"
        with pytest.raises(KeyError):
            engine.rule("missing")


class TestDefaultPack:
    def test_pack_shape(self):
        rules = default_rule_pack(["service"])
        names = {r.name for r in rules}
        assert "service:cache_hit_rate_low" in names
        assert "service:admission_queue_wait_high" in names
        assert "service:breaker_tripped" in names
        assert "service:migration_failures" in names
        assert "service:admission_slo_burn" in names
        assert "service:telemetry_stalled" in names
        assert "service.service_submitted_total" in names  # recording rule

    def test_pack_is_per_scope_plus_fleet_fairness(self):
        rules = default_rule_pack(
            ["shard0", "shard1"],
            tenant_weights={"fleet.tenant_live_a": 1.0, "fleet.tenant_live_b": 2.0},
        )
        names = {r.name for r in rules}
        assert "shard0:breaker_tripped" in names
        assert "shard1:breaker_tripped" in names
        assert "fleet:tenant_fairness_skew" in names

    def test_pack_loads_into_an_engine(self):
        # A reporting queue-depth gauge keeps the liveness absence rule
        # quiet; nothing else has data, so no rule transitions.
        store = make_store(**{"service.service_queue_depth": [(1.0, 0.0)]})
        engine = RulesEngine(store, default_rule_pack(["service"]))
        assert engine.evaluate(1.0) == []
