"""Prometheus text-format edge cases in ``MetricRegistry.exposition``.

Regression tests for the format corners a real scraper chokes on:
empty histograms must still emit a full bucket ladder with ``+Inf``,
``_sum`` and ``_count``; HELP text must escape backslashes and
newlines; series names must be sanitized to the legal charset; and a
caller-supplied infinite bucket bound must not duplicate the implicit
``+Inf`` bucket.
"""

import math

import pytest

from repro.obs.metrics import MetricRegistry


class TestEmptyHistogramExposition:
    def test_empty_histogram_emits_full_ladder(self):
        reg = MetricRegistry()
        reg.histogram("wait", help="wait ticks", buckets=(1.0, 5.0))
        text = reg.exposition()
        assert 'wait_bucket{le="1"} 0' in text
        assert 'wait_bucket{le="5"} 0' in text
        assert 'wait_bucket{le="+Inf"} 0' in text
        assert "wait_sum 0" in text
        assert "wait_count 0" in text

    def test_populated_histogram_cumulative_buckets(self):
        reg = MetricRegistry()
        h = reg.histogram("wait", buckets=(1.0, 5.0))
        for v in (0.5, 3.0, 100.0):
            h.observe(v)
        text = reg.exposition()
        assert 'wait_bucket{le="1"} 1' in text
        assert 'wait_bucket{le="5"} 2' in text
        assert 'wait_bucket{le="+Inf"} 3' in text
        assert "wait_count 3" in text


class TestHelpEscaping:
    def test_backslash_and_newline_escaped(self):
        reg = MetricRegistry()
        reg.counter("c_total", help="path C:\\tmp\nsecond line")
        text = reg.exposition()
        assert "# HELP c_total path C:\\\\tmp\\nsecond line" in text
        # the escaped help stays on one physical line
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert len(help_lines) == 1


class TestNameSanitization:
    def test_illegal_characters_become_underscores(self):
        reg = MetricRegistry()
        reg.counter("tenant-gold.requests total", help="h").inc()
        text = reg.exposition()
        assert "tenant_gold_requests_total 1" in text
        assert "tenant-gold" not in text

    def test_leading_digit_gets_prefixed(self):
        reg = MetricRegistry()
        reg.gauge("9lives").set(1)
        text = reg.exposition()
        assert "_9lives 1" in text
        assert "\n9lives" not in text


class TestInfiniteBucketBounds:
    def test_inf_bound_not_duplicated(self):
        reg = MetricRegistry()
        h = reg.histogram("lat", buckets=(1.0, math.inf))
        h.observe(0.5)
        text = reg.exposition()
        assert text.count('le="+Inf"') == 1
        assert h.bounds == (1.0,)

    def test_duplicate_bounds_deduped(self):
        reg = MetricRegistry()
        h = reg.histogram("lat2", buckets=(1.0, 1.0, 2.0))
        assert h.bounds == (1.0, 2.0)

    def test_all_infinite_bounds_rejected(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(math.inf,))
