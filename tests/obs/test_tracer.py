"""Span tracer: nesting, counters, serialization, and the no-op default.

The acceptance-critical properties live here too: a disabled tracer
records nothing (no samples, no spans) and never changes what the
optimizers compute -- plans and costs are bit-identical with tracing on
and off.
"""

import numpy as np
import pytest

from repro.core.bottom_up import BottomUpOptimizer
from repro.core.exhaustive import OptimalPlanner
from repro.core.top_down import TopDownOptimizer
from repro.hierarchy import build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.obs import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.tracer import NULL_SPAN
from repro.workload.generator import WorkloadParams, generate_workload


class TestSpanBasics:
    def test_spans_nest_and_time(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("outer", algorithm="x") as outer:
            with tracer.span("inner") as inner:
                inner.incr("work", 3)
                inner.incr("work", 2)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.counters["work"] == 5
        assert outer.duration == 3.0  # ticks 0..3
        assert inner.duration == 1.0  # ticks 1..2
        assert tracer.current is None

    def test_siblings_attach_to_the_same_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.find("b")[0] is root.children[1]

    def test_current_incr_and_tag_hit_the_open_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.incr("hits")
            tracer.tag(mode="test")
            assert tracer.current is root
        assert root.counters == {"hits": 1}
        assert root.tags == {"mode": "test"}
        # with nothing open, both are silently dropped
        tracer.incr("hits")
        tracer.tag(mode="late")
        assert root.counters == {"hits": 1}

    def test_total_sums_over_the_subtree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.incr("n", 1)
            with tracer.span("kid") as kid:
                kid.incr("n", 2)
                with tracer.span("grandkid") as g:
                    g.incr("n", 4)
        assert root.total("n") == 7

    def test_exception_inside_a_span_still_closes_it(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is None  # stack unwound cleanly
        assert tracer.last_root.duration >= 0.0

    def test_round_trip_through_to_dict(self):
        tracer = Tracer()
        with tracer.span("root", algorithm="top-down") as root:
            root.incr("plans_examined", 42)
            with tracer.span("task", level=2):
                pass
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "root"
        assert rebuilt.tags == {"algorithm": "top-down"}
        assert rebuilt.counters == {"plans_examined": 42}
        assert [c.name for c in rebuilt.children] == ["task"]
        assert rebuilt.duration == pytest.approx(root.duration)

    def test_render_contains_tags_counters_and_depth(self):
        tracer = Tracer()
        with tracer.span("optimize", algorithm="bu") as root:
            with tracer.span("climb", level=1) as climb:
                climb.incr("plans_examined", 9)
        text = root.render()
        assert "optimize algorithm=bu" in text
        assert "\n  climb level=1 plans_examined=9" in text

    def test_render_max_depth_marks_pruned_children(self):
        tracer = Tracer()
        with tracer.span("optimize") as root:
            with tracer.span("task"):
                with tracer.span("subtask"):
                    pass
            with tracer.span("task"):
                pass
        truncated = root.render(max_depth=0)
        assert truncated.splitlines()[0].startswith("optimize")
        assert "… (+3 pruned)" in truncated
        assert "task" not in truncated
        middle = root.render(max_depth=1)
        assert "task" in middle
        assert "subtask" not in middle
        assert "… (+1 pruned)" in middle
        # An unbounded render (or one deep enough) never shows a marker.
        assert "pruned" not in root.render()
        assert "pruned" not in root.render(max_depth=2)

    def test_render_leaf_at_max_depth_has_no_marker(self):
        tracer = Tracer()
        with tracer.span("only") as root:
            pass
        assert root.render(max_depth=0).count("\n") == 0


class TestReentrancy:
    def test_concurrent_threads_get_isolated_stacks(self):
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(4)
        errors: list[Exception] = []

        def work(i: int) -> None:
            try:
                barrier.wait()
                for _ in range(50):
                    with tracer.span(f"outer{i}") as outer:
                        with tracer.span(f"inner{i}") as inner:
                            inner.incr("ops")
                        assert tracer.current is outer
                    assert tracer.current is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Every outer span is a root (threads never parent under each
        # other), and each parents exactly its own inner span.
        assert len(tracer.roots) == 4 * 50
        for root in tracer.roots:
            assert root.name.startswith("outer")
            suffix = root.name[len("outer"):]
            assert [c.name for c in root.children] == [f"inner{suffix}"]

    def test_copied_context_cannot_pop_foreign_span(self):
        import contextvars

        tracer = Tracer()
        span = tracer.span("outer")
        span.__enter__()

        def nested() -> None:
            # This context sees the open span as parent but exits only
            # its own; the outer stack is untouched afterwards.
            with tracer.span("child"):
                assert tracer.current.name == "child"

        contextvars.copy_context().run(nested)
        assert tracer.current is span
        span.__exit__(None, None, None)
        assert tracer.current is None
        assert [c.name for c in span.children] == ["child"]


class TestNullTracer:
    def test_null_tracer_allocates_nothing(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything", x=1) is NULL_SPAN
        assert NullTracer().span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("work", q="q1") as span:
            span.incr("n", 5)
            span.tag(foo="bar")
        assert span.counters == {}
        assert span.tags == {}
        assert NULL_TRACER.roots == ()
        assert NULL_TRACER.last_root is None


@pytest.fixture(scope="module")
def traced_env():
    net = transit_stub_by_size(32, seed=3)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=6, num_queries=5, joins_per_query=(3, 4)),
        seed=8,
    )
    hierarchy = build_hierarchy(net, max_cs=8, seed=0)
    return net, hierarchy, workload


class TestOptimizerTracing:
    def test_top_down_task_spans_nest_under_recursion(self, traced_env):
        net, hierarchy, workload = traced_env
        rates = workload.rate_model()
        tracer = Tracer()
        optimizer = TopDownOptimizer(hierarchy, rates, tracer=tracer)
        optimizer.plan(workload.queries[0], None)
        root = tracer.last_root
        assert root.name == "optimize"
        tasks = root.find("task")
        assert tasks, "top-down planning must open task spans"
        # the first task is the root cluster's; fragment tasks for lower
        # levels nest *inside* it, mirroring the recursion
        top = tasks[0]
        assert top in root.children
        assert top.find("task")[1:], "recursive fragments must nest in the parent task"
        levels = [t.tags["level"] for t in top.walk() if t.name == "task"]
        assert levels[0] == max(levels)
        assert root.total("plans_examined") > 0

    def test_disabled_tracer_adds_no_spans(self, traced_env):
        net, hierarchy, workload = traced_env
        rates = workload.rate_model()
        optimizer = TopDownOptimizer(hierarchy, rates)  # default NULL_TRACER
        deployment = optimizer.plan(workload.queries[0], None)
        assert optimizer.tracer is NULL_TRACER
        assert "trace" not in deployment.stats

    @pytest.mark.parametrize("make", [
        lambda net, h, r: TopDownOptimizer(h, r),
        lambda net, h, r: BottomUpOptimizer(h, r),
        lambda net, h, r: OptimalPlanner(net, r),
    ], ids=["top-down", "bottom-up", "optimal"])
    def test_tracing_never_changes_plans_or_costs(self, traced_env, make):
        net, hierarchy, workload = traced_env
        rates = workload.rate_model()
        plain = make(net, hierarchy, rates)
        traced = make(net, hierarchy, rates)
        traced.tracer = Tracer()
        if hasattr(traced, "ads"):
            traced.ads.tracer = traced.tracer
        for query in workload:
            a = plain.plan(query, None)
            b = traced.plan(query, None, explain=True)
            assert a.plan.pretty() == b.plan.pretty()
            assert {n.pretty(): p for n, p in a.placement.items()} == {
                n.pretty(): p for n, p in b.placement.items()
            }
            cost_a = a.stats.get("est_cost", a.stats.get("cost_estimate"))
            cost_b = b.stats.get("est_cost", b.stats.get("cost_estimate"))
            assert cost_a == cost_b or np.isclose(cost_a, cost_b, rtol=0, atol=0)

    def test_explain_true_uses_a_one_shot_tracer(self, traced_env):
        net, hierarchy, workload = traced_env
        rates = workload.rate_model()
        optimizer = BottomUpOptimizer(hierarchy, rates)
        assert not optimizer.tracer.enabled
        deployment = optimizer.plan(workload.queries[1], None, explain=True)
        assert deployment.explanation is not None
        assert deployment.stats["trace"]["name"] == "optimize"
        # the optimizer's own tracer stays disabled
        assert not optimizer.tracer.enabled
