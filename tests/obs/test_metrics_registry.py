"""Typed metric registry: instrument semantics, export formats, log compat."""

import json
import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.metrics import series_summary
from repro.runtime.metrics import MetricsLog


class TestCounter:
    def test_monotonic(self):
        reg = MetricRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_sync_total_adopts_external_totals(self):
        reg = MetricRegistry()
        c = reg.counter("admitted_total")
        c.sync_total(3)
        c.sync_total(3)  # equal is fine
        c.sync_total(7)
        assert c.value == 7
        with pytest.raises(ValueError, match="cannot decrease"):
            c.sync_total(6)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricRegistry().gauge("depth")
        assert g.value is None
        g.set(4)
        g.inc(2)
        g.dec(5)
        assert g.value == 1


class TestHistogram:
    def test_buckets_and_summary(self):
        h = MetricRegistry().histogram("lat", buckets=[0.1, 1.0, 10.0])
        for v in (0.05, 0.5, 0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count == 5
        assert h.bucket_counts == [1, 2, 1, 1]  # le=0.1, 1, 10, +Inf
        assert h.sum == pytest.approx(23.05)
        s = h.summary()
        assert s["count"] == 5
        assert s["min"] == 0.05
        assert s["max"] == 20.0
        assert 0.1 <= s["p50"] <= 1.0

    def test_percentiles_clamp_to_observed_range(self):
        h = MetricRegistry().histogram("lat", buckets=[1.0])
        h.observe(0.4)
        h.observe(0.6)
        assert h.percentile(0.0) >= 0.4
        assert h.percentile(1.0) <= 0.6

    def test_empty_histogram_is_nan(self):
        h = MetricRegistry().histogram("lat")
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(0.5))

    def test_bad_quantile_raises(self):
        h = MetricRegistry().histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(1.5)


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricRegistry()
        c = reg.counter("x_total")
        assert reg.counter("x_total") is c
        assert reg.get("x_total") is c
        with pytest.raises(TypeError, match="is a counter"):
            reg.gauge("x_total")
        with pytest.raises(TypeError, match="is a counter"):
            reg.histogram("x_total")
        assert reg.names() == ["x_total"]

    def test_instruments_record_into_the_backing_log(self):
        log = MetricsLog()
        reg = MetricRegistry(log)
        reg.counter("hits_total").inc(time=1.0)
        reg.gauge("depth").set(3.0, time=2.0)
        reg.histogram("lat").observe(0.25, time=3.0)
        assert log.series("hits_total") == [(1.0, 1.0)]
        assert log.series("depth") == [(2.0, 3.0)]
        assert log.series("lat") == [(3.0, 0.25)]

    def test_series_alias_keeps_legacy_names(self):
        log = MetricsLog()
        reg = MetricRegistry(log)
        g = reg.gauge("runtime_total_cost", series="total_cost")
        g.set(42.0, time=5.0)
        assert log.last("total_cost") == 42.0
        assert log.series("runtime_total_cost") == []

    def test_exposition_format(self):
        reg = MetricRegistry()
        reg.counter("reqs_total", help="Total requests.").inc(3)
        reg.gauge("depth").set(2.5)
        h = reg.histogram("lat", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        text = reg.exposition()
        assert "# HELP reqs_total Total requests." in text
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 3" in text
        assert "depth 2.5" in text
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text  # cumulative
        assert "lat_sum 0.55" in text
        assert "lat_count 2" in text
        assert text.endswith("\n")

    def test_snapshot_is_json_serializable(self):
        reg = MetricRegistry()
        reg.counter("c_total").inc()
        reg.gauge("g")
        reg.histogram("h")  # empty: NaN summary must become null
        doc = json.loads(json.dumps(reg.snapshot()))
        assert doc["c_total"] == {"type": "counter", "value": 1}
        assert doc["g"]["value"] is None
        assert doc["h"]["p95"] is None
        assert doc["h"]["count"] == 0


class TestSeriesStats:
    def test_series_stats_matches_exact_samples(self):
        log = MetricsLog()
        for i, v in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            log.record(float(i), "depth", v)
        stats = log.series_stats("depth")
        assert stats["count"] == 5
        assert stats["min"] == 1.0
        assert stats["max"] == 5.0
        assert stats["mean"] == 3.0
        assert stats["p50"] == 3.0
        assert stats["p95"] == pytest.approx(4.8)

    def test_series_stats_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricsLog().series_stats("nope")

    def test_series_summary_empty_is_nan(self):
        s = series_summary([])
        assert s["count"] == 0
        assert math.isnan(s["min"])

    def test_instrument_classes_are_exported(self):
        reg = MetricRegistry()
        assert isinstance(reg.counter("a_total"), Counter)
        assert isinstance(reg.gauge("b"), Gauge)
        assert isinstance(reg.histogram("c"), Histogram)
