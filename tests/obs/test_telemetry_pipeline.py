"""The Telemetry pipeline: binding, determinism, and the null contract.

Two contracts under test:

* with ``telemetry=None`` (the default) the service behaves
  byte-identically to one that never heard of telemetry -- same
  decisions, same placements, same metrics;
* with telemetry on, the same seed + scenario produces an *identical*
  ``repro.telemetry`` envelope on every run (alerts fire at the same
  virtual ticks, no wall clock leaks into the series).
"""

import json

import pytest

import repro
from repro.obs.telemetry import Telemetry, TelemetryConfig, ensure_telemetry
from repro.serialization import telemetry_from_json, telemetry_to_json
from repro.service import AdmissionController, StreamQueryService, churn_trace

#: summary keys that depend on wall-clock or the optional layers themselves
_VOLATILE = {
    "planning_seconds",
    "queries_per_second",
    "resilience",
    "faults",
    "adaptivity",
}


def build_service(telemetry=None, seed=47):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=6),
        telemetry=telemetry,
    )
    return service, workload


class TestEnsureTelemetry:
    def test_normalization(self):
        assert ensure_telemetry(None) is None
        pipeline = ensure_telemetry(TelemetryConfig(cadence=2.0))
        assert isinstance(pipeline, Telemetry)
        assert pipeline.scraper.cadence == 2.0
        assert ensure_telemetry(pipeline) is pipeline
        with pytest.raises(TypeError):
            ensure_telemetry(object())


class TestNullParity:
    def test_replay_is_identical_with_and_without_telemetry(self):
        plain, workload = build_service(telemetry=None)
        watched, _ = build_service(telemetry=TelemetryConfig())
        assert plain.telemetry is None and watched.telemetry is not None

        trace = churn_trace(workload, lifetime=4.0, repeats=2)
        report_plain = plain.replay(list(trace))
        report_watched = watched.replay(list(trace))

        assert report_plain.decisions == report_watched.decisions
        assert report_plain.ticks == report_watched.ticks
        clean = lambda s: {k: v for k, v in s.items() if k not in _VOLATILE}  # noqa: E731
        assert clean(report_plain.summary) == clean(report_watched.summary)

        placements = lambda svc: {  # noqa: E731
            d.query.name: sorted(d.placement.values())
            for d in svc.engine.state.deployments
        }
        assert placements(plain) == placements(watched)
        assert plain.total_cost() == watched.total_cost()
        # the pipeline only reads instruments; it adds none of its own
        assert set(plain.registry.names()) == set(watched.registry.names())

    def test_watched_service_produced_an_envelope_anyway(self):
        watched, workload = build_service(telemetry=TelemetryConfig())
        watched.replay(list(churn_trace(workload, lifetime=4.0, repeats=1)))
        envelope = watched.telemetry.envelope()
        assert envelope["kind"] == "repro.telemetry"
        assert envelope["scraper"]["scopes"] == ["service"]
        assert envelope["series"]
        assert envelope["alerts"]


class TestDeterminism:
    def _envelope(self, seed=47):
        service, workload = build_service(telemetry=TelemetryConfig(), seed=seed)
        service.replay(list(churn_trace(workload, lifetime=4.0, repeats=2)))
        return service.telemetry.envelope()

    def test_same_seed_same_envelope_bytes(self):
        first = telemetry_to_json(self._envelope())
        second = telemetry_to_json(self._envelope())
        assert first == second  # byte-identical, wall clock never leaks

    def test_wall_clock_series_never_scraped(self):
        envelope = self._envelope()
        assert not any(
            "service_planning_seconds" in name for name in envelope["series"]
        )

    def test_alert_events_at_identical_ticks(self):
        a, b = self._envelope(), self._envelope()
        events = lambda env: [  # noqa: E731
            (e["rule"], e["time"], e["to"]) for e in env["rules"]["events"]
        ]
        assert events(a) == events(b)

    def test_envelope_roundtrips_through_serialization(self):
        envelope = self._envelope()
        text = telemetry_to_json(envelope)
        assert telemetry_from_json(text) == json.loads(text)
        with pytest.raises(ValueError):
            telemetry_from_json(json.dumps({"kind": "repro.network"}))
