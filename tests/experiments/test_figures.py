"""Smoke tests for every figure driver at tiny scale.

Each driver must return a well-formed FigureResult whose series align
with the x axis, whose summary carries the documented headline keys, and
whose core qualitative relationships hold even at reduced averaging.
"""

import math

import pytest

from repro.experiments import (
    figure02_motivation,
    figure05_bottom_up_cluster_sweep,
    figure06_top_down_cluster_sweep,
    figure07_suboptimality_and_reuse,
    figure08_baseline_comparison,
    figure09_search_space_scalability,
    figure10_deployment_time,
    figure11_prototype_cumulative_cost,
)


def _check_shape(result):
    assert result.figure.startswith("fig")
    assert result.x
    for name, series in result.series.items():
        assert len(series) == len(result.x), name
    for key in result.summary:
        assert isinstance(result.summary[key], float)


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return figure02_motivation(queries=12, seed=0)

    def test_shape(self, result):
        _check_shape(result)
        assert set(result.series) == {
            "relaxation",
            "plan-then-deploy",
            "our-approach (top-down)",
        }

    def test_joint_wins(self, result):
        ours = result.series["our-approach (top-down)"][-1]
        assert ours <= result.series["relaxation"][-1]
        assert ours <= result.series["plan-then-deploy"][-1] * 1.01


class TestClusterSweeps:
    @pytest.fixture(scope="class")
    def bu(self):
        return figure05_bottom_up_cluster_sweep(
            workloads=1, queries=6, max_cs_values=(4, 16), num_nodes=64, seed=0
        )

    @pytest.fixture(scope="class")
    def td(self):
        return figure06_top_down_cluster_sweep(
            workloads=1, queries=6, max_cs_values=(4, 16), num_nodes=64, seed=0
        )

    def test_shapes(self, bu, td):
        _check_shape(bu)
        _check_shape(td)
        assert bu.figure == "fig5"
        assert td.figure == "fig6"

    def test_series_per_cluster_size(self, bu):
        assert set(bu.series) == {"cluster size=4", "cluster size=16"}

    def test_curves_nondecreasing(self, bu):
        for series in bu.series.values():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return figure07_suboptimality_and_reuse(
            workloads=1, queries=8, num_nodes=64, max_cs=16, seed=0
        )

    def test_shape(self, result):
        _check_shape(result)
        assert len(result.series) == 5

    def test_orderings(self, result):
        final = {k: v[-1] for k, v in result.series.items()}
        assert final["optimal"] <= final["top-down with reuse"] + 1e-6
        assert final["top-down with reuse"] <= final["top-down without reuse"] + 1e-6
        assert final["bottom-up with reuse"] <= final["bottom-up without reuse"] + 1e-6

    def test_summary_keys(self, result):
        for key in (
            "top_down_suboptimality_pct",
            "bottom_up_suboptimality_pct",
            "top_down_reuse_saving_pct",
            "bottom_up_reuse_saving_pct",
        ):
            assert key in result.summary
            assert key in result.expectations


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return figure08_baseline_comparison(
            workloads=1, queries=8, num_nodes=64, max_cs=16, seed=0
        )

    def test_shape(self, result):
        _check_shape(result)
        assert "in-network with reuse" in result.series

    def test_exhaustive_is_floor(self, result):
        final = {k: v[-1] for k, v in result.series.items()}
        floor = final["exhaustive (optimal)"]
        assert all(v >= floor - 1e-6 for v in final.values())


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return figure09_search_space_scalability(
            network_sizes=(64, 128), queries=4, num_streams=20, seed=0
        )

    def test_shape(self, result):
        _check_shape(result)

    def test_relationships(self, result):
        for i in range(len(result.x)):
            ex = result.series["exhaustive (Lemma 1)"][i]
            bound = result.series["analytical bound (Thm 2/4)"][i]
            td = result.series["top-down (measured)"][i]
            bu = result.series["bottom-up (measured)"][i]
            assert bound <= ex
            assert td <= bound
            assert bu <= bound


class TestPrototypeFigures:
    @pytest.fixture(scope="class")
    def f10(self):
        return figure10_deployment_time(queries=8, seed=0)

    @pytest.fixture(scope="class")
    def f11(self):
        return figure11_prototype_cumulative_cost(queries=8, seed=0)

    def test_f10_shape(self, f10):
        _check_shape(f10)
        assert any("Bottom-Up" in k for k in f10.series)
        assert all(
            v > 0 or math.isnan(v) for series in f10.series.values() for v in series
        )

    def test_f10_bu_faster(self, f10):
        assert f10.summary["bu_faster_than_td_pct"] > -5.0  # BU not slower overall

    def test_f11_shape(self, f11):
        _check_shape(f11)
        for series in f11.series.values():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_f11_td_wins(self, f11):
        final = {k: v[-1] for k, v in f11.series.items()}
        assert final["Top-Down (cluster size=8)"] <= final["Bottom-Up (cluster size=8)"] + 1e-6
