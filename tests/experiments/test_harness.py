"""Tests for the experiment harness and reporting utilities."""

import numpy as np
import pytest

from repro.experiments.harness import (
    average_curves,
    build_env,
    cumulative_costs,
    run_incremental,
)
from repro.experiments.reporting import format_series_table, format_summary
from repro.hierarchy import AdvertisementIndex
from repro.workload.generator import WorkloadParams


@pytest.fixture(scope="module")
def env():
    params = WorkloadParams(num_streams=6, num_queries=5, joins_per_query=(2, 3))
    return build_env(32, params, max_cs_values=(4, 8), seed=0)


class TestBuildEnv:
    def test_structure(self, env):
        assert env.network.num_nodes == 32
        assert len(env.workload) == 5
        assert set(env.hierarchies) == {4, 8}
        env.hierarchy(4).validate(full_coverage=True)

    def test_reproducible(self):
        params = WorkloadParams(num_streams=6, num_queries=3)
        a = build_env(32, params, seed=7)
        b = build_env(32, params, seed=7)
        assert [q.sources for q in a.workload] == [q.sources for q in b.workload]
        assert a.network.num_links == b.network.num_links

    def test_fresh_state_empty(self, env):
        state = env.fresh_state()
        assert state.total_cost() == 0.0
        assert state.num_operators == 0

    def test_optimizer_factory(self, env):
        td = env.optimizer("top-down", max_cs=4)
        assert td.name == "top-down"
        assert td.hierarchy is env.hierarchy(4)
        opt = env.optimizer("optimal")
        assert opt.name == "optimal"

    def test_optimizer_defaults_to_first_hierarchy(self, env):
        td = env.optimizer("top-down")
        assert td.hierarchy in env.hierarchies.values()


class TestRunIncremental:
    def test_curve_monotone_nondecreasing(self, env):
        optimizer = env.optimizer("top-down", max_cs=8)
        state = env.fresh_state()
        curve, deployments = run_incremental(optimizer, env.workload, state)
        assert len(curve) == len(env.workload)
        assert len(deployments) == len(env.workload)
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(state.total_cost())

    def test_ads_kept_in_sync(self, env):
        optimizer = env.optimizer("bottom-up", max_cs=8)
        state = env.fresh_state()
        ads = AdvertisementIndex(env.hierarchy(8))
        for name, spec in env.rates.streams.items():
            ads.advertise_base(name, spec.source)
        run_incremental(optimizer, env.workload, state, ads)
        assert set(ads.views()) == set(state.advertised_views())

    def test_cumulative_costs_helper(self, env):
        curve = cumulative_costs(env, "top-down", max_cs=8, reuse=True)
        assert len(curve) == len(env.workload)
        assert curve[-1] > 0


class TestAverageCurves:
    def test_pointwise_mean(self):
        assert average_curves([[1.0, 2.0], [3.0, 4.0]]) == [2.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_curves([])


class TestReporting:
    def _result(self, n=5):
        from repro.experiments.figures import FigureResult

        return FigureResult(
            figure="figX",
            title="test",
            x_label="x",
            x=list(range(n)),
            series={"a": [float(i) for i in range(n)], "b": [2.0 * i for i in range(n)]},
            summary={"metric": 12.5},
            expectations={"metric": 10.0},
        )

    def test_table_contains_all_series(self):
        table = format_series_table(self._result())
        assert "a" in table and "b" in table
        assert table.count("\n") >= 6

    def test_long_axis_subsampled(self):
        table = format_series_table(self._result(100), max_rows=8)
        lines = table.splitlines()
        assert len(lines) <= 12
        assert lines[-1].startswith("99")  # last point kept

    def test_summary_shows_paper_value(self):
        text = format_summary(self._result())
        assert "12.5" in text and "10" in text

    def test_nan_rendered_as_dash(self):
        from repro.experiments.figures import FigureResult

        r = FigureResult(
            figure="f", title="t", x_label="x", x=[1],
            series={"s": [float("nan")]},
            summary={"v": float("nan")},
        )
        assert "-" in format_series_table(r)


class TestFigureResultJson:
    def test_round_trip(self):
        from repro.experiments.figures import FigureResult

        original = FigureResult(
            figure="figX",
            title="t",
            x_label="x",
            x=[1, 2, 3],
            series={"a": [1.0, 2.0, 3.0]},
            summary={"m": 4.5},
            expectations={"m": 5.0},
        )
        restored = FigureResult.from_json(original.to_json())
        assert restored.figure == original.figure
        assert restored.series == original.series
        assert restored.summary == original.summary
        assert restored.expectations == original.expectations

    def test_json_handles_nan(self):
        from repro.experiments.figures import FigureResult

        r = FigureResult(
            figure="f", title="t", x_label="x", x=[1],
            series={"s": [float("nan")]},
        )
        restored = FigureResult.from_json(r.to_json())
        assert restored.series["s"][0] != restored.series["s"][0]  # NaN
