"""PerfLab: case registry, determinism enforcement, trajectory I/O."""

import json

import pytest

from repro.perf.lab import (
    CASES,
    QUICK_CASES,
    PerfLab,
    append_entry,
    load_trajectory,
)


class TestConstruction:
    def test_default_runs_the_quick_subset(self):
        lab = PerfLab()
        assert lab.cases == list(QUICK_CASES)

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown perf cases"):
            PerfLab(cases=["nope"])

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            PerfLab(repeats=0)

    def test_every_registered_case_is_callable(self):
        for name, runner in CASES.items():
            assert callable(runner), name


class TestRunCase:
    def test_entry_shape_and_determinism(self):
        lab = PerfLab(cases=["plan_top_down"], repeats=2)
        result = lab.run_case("plan_top_down")
        assert result["ops"]["trees_enumerated"] > 0
        assert result["ops"]["cost_evaluations"] > 0
        wall = result["wall_seconds"]
        assert len(wall["repeats"]) == 2
        assert wall["min"] <= wall["median"] <= wall["max"]
        # determinism enforcement: a second run produces the same ops
        assert lab.run_case("plan_top_down")["ops"] == result["ops"]

    def test_nondeterministic_case_raises(self, monkeypatch):
        from repro.perf.profiler import OpProfiler

        counter = iter([1, 2])

        def flaky():
            prof = OpProfiler()
            prof.count("ops", next(counter))
            return prof

        monkeypatch.setitem(CASES, "flaky", flaky)
        lab = PerfLab(cases=["flaky"], repeats=2)
        with pytest.raises(RuntimeError, match="non-deterministic"):
            lab.run_case("flaky")

    def test_run_produces_a_trajectory_entry(self):
        lab = PerfLab(cases=["plan_top_down"], repeats=1)
        entry = lab.run(label="unit")
        assert entry["label"] == "unit"
        assert entry["repeats"] == 1
        assert set(entry["cases"]) == {"plan_top_down"}


class TestDurabilityOverhead:
    def test_journal_never_leaks_work_into_the_planner(self):
        """durability_overhead must do the exact planner work of
        service_churn -- the journal only records decisions."""
        lab = PerfLab(
            cases=["service_churn", "durability_overhead"], repeats=1
        )
        churn = lab.run_case("service_churn")["ops"]
        durable = lab.run_case("durability_overhead")["ops"]
        wal_only = {"journal_records", "snapshots"}
        assert {k: v for k, v in durable.items() if k not in wal_only} == churn
        assert durable["journal_records"] > 0
        assert durable["snapshots"] > 0


class TestResourceOverhead:
    def test_unbounded_layer_never_leaks_work_into_the_planner(self):
        """resource_overhead must do the exact planner work of
        service_churn -- with all capacities infinite the manager
        injects no constraint and gates nothing."""
        lab = PerfLab(cases=["service_churn", "resource_overhead"], repeats=1)
        churn = lab.run_case("service_churn")["ops"]
        armed = lab.run_case("resource_overhead")["ops"]
        assert armed == churn


class TestLabOverhead:
    def test_harness_never_leaks_work_into_the_planner(self):
        """lab_overhead must do the exact planner work of service_churn
        -- the scenario lab's CandidateRun wrapper only observes (it
        scrapes telemetry and samples the cost integral)."""
        lab = PerfLab(cases=["service_churn", "lab_overhead"], repeats=1)
        churn = lab.run_case("service_churn")["ops"]
        wrapped = lab.run_case("lab_overhead")["ops"]
        lab_only = {"telemetry_samples", "telemetry_series"}
        assert {k: v for k, v in wrapped.items() if k not in lab_only} == churn
        assert wrapped["telemetry_samples"] > 0
        assert wrapped["telemetry_series"] > 0


class TestTrajectoryIO:
    def test_load_initializes_missing_file(self, tmp_path):
        doc = load_trajectory(tmp_path / "BENCH_trajectory.json")
        assert doc == {
            "kind": "repro.perf_trajectory", "version": 1, "entries": [],
        }

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        append_entry(path, {"label": "a", "cases": {}})
        doc = append_entry(path, {"label": "b", "cases": {}})
        assert [e["label"] for e in doc["entries"]] == ["a", "b"]
        on_disk = json.loads(path.read_text())
        assert on_disk == doc

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something.else"}))
        with pytest.raises(ValueError, match="not a perf trajectory"):
            load_trajectory(path)
