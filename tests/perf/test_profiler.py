"""Op-count profiler: counting, sampling, nesting, hook sites."""

import pytest

from repro.perf import OpProfiler, profiled
from repro.perf import profiler as perf_profiler


class TestOpProfiler:
    def test_counts_accumulate(self):
        prof = OpProfiler()
        prof.count("messages")
        prof.count("messages", 4)
        assert prof.ops == {"messages": 5}

    def test_sample_and_snapshot(self):
        ticks = iter([0.0, 1.0, 1.0, 3.0])
        prof = OpProfiler(clock=lambda: next(ticks))
        with prof.sample("plan"):
            pass
        with prof.sample("plan"):
            pass
        snap = prof.snapshot()
        assert snap["wall_seconds"]["plan"] == {
            "n": 2, "total": 3.0, "min": 1.0, "max": 2.0, "median": 1.5,
        }

    def test_add_time(self):
        prof = OpProfiler()
        prof.add_time("tick", 0.25)
        assert prof.snapshot()["wall_seconds"]["tick"]["total"] == 0.25

    def test_inactive_by_default(self):
        assert perf_profiler.active() is None

    def test_profiled_installs_and_uninstalls(self):
        with profiled() as prof:
            assert perf_profiler.active() is prof
        assert perf_profiler.active() is None

    def test_nesting_is_lifo(self):
        with profiled() as outer:
            with profiled() as inner:
                assert perf_profiler.active() is inner
            assert perf_profiler.active() is outer

    def test_out_of_order_uninstall_raises(self):
        a, b = OpProfiler(), OpProfiler()
        a.install()
        b.install()
        with pytest.raises(RuntimeError, match="nest"):
            a.uninstall()
        b.uninstall()
        a.uninstall()

    def test_uninstall_survives_failed_block(self):
        with pytest.raises(ValueError):
            with profiled():
                raise ValueError("boom")
        assert perf_profiler.active() is None


class TestHookSites:
    """The instrumented call sites count into the active profiler."""

    @pytest.fixture(scope="class")
    def env(self):
        from repro.hierarchy import build_hierarchy
        from repro.network.topology import transit_stub_by_size
        from repro.workload import WorkloadParams, generate_workload

        net = transit_stub_by_size(24, seed=4)
        workload = generate_workload(
            net,
            WorkloadParams(num_streams=6, num_queries=3, joins_per_query=(2, 3)),
            seed=5,
        )
        hierarchy = build_hierarchy(net, max_cs=4, seed=0)
        return net, workload, workload.rate_model(), hierarchy

    def test_hierarchical_planning_counts(self, env):
        from repro.core import TopDownOptimizer

        net, workload, rates, hierarchy = env
        with profiled() as prof:
            TopDownOptimizer(hierarchy, rates).plan(workload.queries[0])
        assert prof.ops["trees_enumerated"] > 0
        assert prof.ops["placements"] > 0
        assert prof.ops["cost_evaluations"] > 0

    def test_optimal_planner_counts_dp_states(self, env):
        from repro.core import make_optimizer

        net, workload, rates, _ = env
        with profiled() as prof:
            make_optimizer("optimal", net, rates).plan(workload.queries[0])
        assert prof.ops["dp_subsets"] > 0
        assert prof.ops["cost_evaluations"] > 0

    def test_protocol_counts_messages(self, env):
        from repro.core import TopDownOptimizer
        from repro.runtime import simulate_deployment

        net, workload, rates, hierarchy = env
        deployment = TopDownOptimizer(hierarchy, rates).plan(workload.queries[0])
        with profiled() as prof:
            timeline = simulate_deployment(net, deployment)
        assert prof.ops["messages"] >= timeline.messages - timeline.tasks

    def test_service_counts_ticks_and_cache_probes(self, env):
        from repro.core import TopDownOptimizer
        from repro.service import StreamQueryService

        net, workload, rates, hierarchy = env
        service = StreamQueryService(
            TopDownOptimizer(hierarchy, rates), net, rates, hierarchy=hierarchy
        )
        with profiled() as prof:
            for query in workload:
                service.submit(query, lifetime=5.0)
            for _ in range(3):
                service.tick()
        assert prof.ops["service_ticks"] == 3
        assert prof.ops["cache_probes"] == len(workload.queries)
        assert prof.snapshot()["wall_seconds"]["service_tick"]["n"] == 3

    def test_counts_are_deterministic(self, env):
        from repro.core import TopDownOptimizer

        net, workload, rates, hierarchy = env

        def run():
            with profiled() as prof:
                TopDownOptimizer(hierarchy, rates).plan(workload.queries[1])
            return prof.ops

        assert run() == run()
