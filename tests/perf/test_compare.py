"""Regression comparator: baselines, thresholds, blocking vs advisory."""

import pytest

from repro.perf.compare import compare_trajectory


def entry(ops, wall=None, case="plan"):
    data = {"ops": dict(ops)}
    if wall is not None:
        data["wall_seconds"] = {"median": wall}
    return {"label": "", "cases": {case: data}}


class TestCompare:
    def test_empty_trajectory_raises(self):
        with pytest.raises(ValueError, match="no entries"):
            compare_trajectory({"entries": []})

    def test_single_entry_is_trivially_clean(self):
        report = compare_trajectory({"entries": [entry({"messages": 100})]})
        assert report.ok
        assert report.baseline_entries == 1
        (finding,) = report.findings
        assert finding.ratio == 1.0
        assert not finding.regressed

    def test_flat_history_is_clean(self):
        doc = {"entries": [entry({"messages": 100}) for _ in range(4)]}
        report = compare_trajectory(doc)
        assert report.ok
        assert all(f.ratio == 1.0 for f in report.findings)

    def test_op_count_regression_is_blocking(self):
        doc = {"entries": [entry({"messages": 100}), entry({"messages": 130})]}
        report = compare_trajectory(doc, op_threshold=0.25)
        assert not report.ok
        (finding,) = report.blocking_regressions
        assert finding.metric == "messages"
        assert finding.ratio == pytest.approx(1.3)

    def test_increase_below_threshold_passes(self):
        doc = {"entries": [entry({"messages": 100}), entry({"messages": 120})]}
        assert compare_trajectory(doc, op_threshold=0.25).ok

    def test_wall_clock_regression_is_advisory_only(self):
        doc = {
            "entries": [
                entry({"messages": 100}, wall=1.0),
                entry({"messages": 100}, wall=10.0),
            ]
        }
        report = compare_trajectory(doc)
        assert report.ok  # wall never blocks
        advisory = [f for f in report.regressions if not f.blocking]
        (finding,) = advisory
        assert finding.metric == "wall_median"
        assert finding.kind == "wall"

    def test_median_of_n_absorbs_one_noisy_run(self):
        doc = {
            "entries": [
                entry({"messages": 100}),
                entry({"messages": 100}),
                entry({"messages": 400}),  # the stray outlier
                entry({"messages": 100}),
                entry({"messages": 110}),
            ]
        }
        # baseline = median(100, 100, 400, 100) = 100; 110 is within +25%
        assert compare_trajectory(doc).ok

    def test_baseline_window_limits_history(self):
        old = [entry({"messages": 10}) for _ in range(5)]
        recent = [entry({"messages": 100}) for _ in range(5)]
        doc = {"entries": old + recent + [entry({"messages": 110})]}
        report = compare_trajectory(doc, baseline_window=5)
        assert report.baseline_entries == 5
        assert report.ok  # the ancient cheap entries aged out

    def test_new_metric_without_history_is_skipped(self):
        doc = {"entries": [entry({"messages": 100}), entry({"brand_new": 7})]}
        report = compare_trajectory(doc)
        assert report.findings == []
        assert report.ok

    def test_zero_baseline_does_not_divide(self):
        doc = {"entries": [entry({"messages": 0}), entry({"messages": 0})]}
        (finding,) = compare_trajectory(doc).findings
        assert finding.ratio == 1.0

    def test_render_and_to_dict(self):
        doc = {
            "entries": [
                entry({"messages": 100}, wall=1.0),
                entry({"messages": 200}, wall=5.0),
            ]
        }
        report = compare_trajectory(doc)
        text = report.render()
        assert "! plan.messages" in text
        assert "~ plan.wall_median" in text
        assert "REGRESSED (1 blocking)" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert len(payload["findings"]) == 2

    def test_render_without_findings(self):
        report = compare_trajectory({"entries": [entry({})]})
        assert report.render() == "no comparable metrics"
