"""Tests for the workload generator and the airline OIS scenario."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import deployment_cost
from repro.core.exhaustive import OptimalPlanner
from repro.network.topology import transit_stub_by_size
from repro.query.deployment import DeploymentState
from repro.workload.generator import Workload, WorkloadParams, generate_workload
from repro.workload.scenarios import airline_ois_scenario


@pytest.fixture(scope="module")
def net():
    return transit_stub_by_size(64, seed=0)


class TestWorkloadParams:
    def test_defaults_match_paper(self):
        p = WorkloadParams()
        assert p.num_streams == 10
        assert p.joins_per_query == (2, 5)

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            WorkloadParams(num_streams=1)

    def test_invalid_joins_range(self):
        with pytest.raises(ValueError):
            WorkloadParams(joins_per_query=(0, 3))
        with pytest.raises(ValueError):
            WorkloadParams(joins_per_query=(4, 2))

    def test_too_many_joins_for_streams(self):
        with pytest.raises(ValueError, match="distinct streams"):
            WorkloadParams(num_streams=4, joins_per_query=(2, 5))

    def test_bad_style(self):
        with pytest.raises(ValueError, match="predicate style"):
            WorkloadParams(predicate_style="web")


class TestGenerateWorkload:
    def test_basic_shape(self, net):
        w = generate_workload(net, WorkloadParams(num_queries=15), seed=1)
        assert len(w) == 15
        assert len(w.streams) == 10
        assert len(w.selectivities) == 45  # C(10, 2)

    def test_reproducible(self, net):
        w1 = generate_workload(net, seed=7)
        w2 = generate_workload(net, seed=7)
        assert [q.sources for q in w1] == [q.sources for q in w2]
        assert [q.sink for q in w1] == [q.sink for q in w2]
        assert w1.selectivities == w2.selectivities

    def test_joins_within_range(self, net):
        params = WorkloadParams(joins_per_query=(2, 5))
        w = generate_workload(net, params, seed=2)
        for q in w:
            assert 2 <= q.num_joins <= 5

    def test_sources_and_sinks_on_network(self, net):
        w = generate_workload(net, seed=3)
        nodes = set(net.nodes())
        for spec in w.streams.values():
            assert spec.source in nodes
        for q in w:
            assert q.sink in nodes

    def test_rates_in_range(self, net):
        params = WorkloadParams(rate_range=(10.0, 20.0))
        w = generate_workload(net, params, seed=4)
        for spec in w.streams.values():
            assert 10.0 <= spec.rate <= 20.0

    def test_selectivities_in_range(self, net):
        w = generate_workload(net, seed=5)
        lo, hi = w.params.selectivity_range
        assert all(lo <= s <= hi for s in w.selectivities.values())

    def test_queries_are_join_connected(self, net):
        for style in ("chain", "star", "clique"):
            w = generate_workload(net, WorkloadParams(predicate_style=style), seed=6)
            for q in w:
                assert q.is_join_connected()

    def test_shared_pairs_share_signatures(self, net):
        """Overlap between queries must create matching sub-signatures."""
        w = generate_workload(net, WorkloadParams(num_streams=5, num_queries=30, joins_per_query=(2, 3)), seed=8)
        found = False
        for i, qa in enumerate(w.queries):
            for qb in w.queries[i + 1 :]:
                common = set(qa.sources) & set(qb.sources)
                for pair in [frozenset(p) for p in zip(sorted(common)[:-1], sorted(common)[1:])]:
                    if qa.is_join_connected(frozenset(pair)) and qb.is_join_connected(frozenset(pair)):
                        if qa.view_signature(pair) == qb.view_signature(pair):
                            found = True
        assert found

    def test_rate_model_roundtrip(self, net):
        w = generate_workload(net, seed=9)
        rm = w.rate_model()
        q = w.queries[0]
        assert rm.rate_for(q, frozenset(q.sources)) > 0

    def test_plannable_by_optimal(self, net):
        w = generate_workload(net, WorkloadParams(num_queries=3), seed=10)
        rm = w.rate_model()
        planner = OptimalPlanner(net, rm)
        state = DeploymentState(net.cost_matrix(), rm.rate_for, rm.source)
        for q in w:
            state.apply(planner.plan(q, state))
        assert state.total_cost() > 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_always_valid(self, seed, net):
        w = generate_workload(net, WorkloadParams(num_queries=5), seed=seed)
        for q in w:
            assert len(q.sources) == q.num_joins + 1
            assert q.is_join_connected()


class TestAirlineScenario:
    def test_structure(self):
        sc = airline_ois_scenario()
        assert set(sc.streams) == {"FLIGHTS", "WEATHER", "CHECK-INS"}
        assert sc.q1.sources == ("FLIGHTS", "WEATHER", "CHECK-INS")
        assert sc.q2.num_joins == 1
        assert sc.network.is_connected()

    def test_q1_q2_share_reuse_signature(self):
        sc = airline_ois_scenario()
        sub = {"FLIGHTS", "CHECK-INS"}
        assert sc.q1.view_signature(sub) == sc.q2.view_signature(sub)

    def test_network_aware_ordering_differs_from_volume_ordering(self):
        """The paper's point 1: the network flips the best join order."""
        from repro.baselines.plan_then_deploy import best_static_tree

        sc = airline_ois_scenario()
        static_tree, _ = best_static_tree(sc.q1, sc.rates)
        first_static = static_tree.joins()[0].sources
        opt = OptimalPlanner(sc.network, sc.rates).plan(sc.q1)
        first_joint = opt.plan.joins()[0].sources
        assert first_static == frozenset({"FLIGHTS", "WEATHER"})
        assert first_joint == frozenset({"FLIGHTS", "CHECK-INS"})

    def test_reuse_opportunity_realized(self):
        """The paper's point 2: with Q2 deployed, Q1 reuses its join."""
        sc = airline_ois_scenario()
        rm = sc.rates
        state = DeploymentState(sc.network.cost_matrix(), rm.rate_for, rm.source)
        planner = OptimalPlanner(sc.network, rm, reuse=True)
        state.apply(planner.plan(sc.q2, state))
        d1 = planner.plan(sc.q1, state)
        assert d1.reused_leaves()
        reused = d1.reused_leaves()[0]
        assert reused.view == frozenset({"FLIGHTS", "CHECK-INS"})


class TestNetworkMonitoringScenario:
    def test_structure(self):
        from repro.workload.scenarios import network_monitoring_scenario

        sc = network_monitoring_scenario(seed=1)
        assert set(sc.streams) == {"NETFLOW", "SNMP", "ALERTS", "SYSLOG"}
        assert len(sc.queries) == 4
        assert sc.network.is_connected()
        for q in sc.queries:
            assert q.is_join_connected()

    def test_rates_reflect_telemetry_reality(self):
        from repro.workload.scenarios import network_monitoring_scenario

        sc = network_monitoring_scenario()
        assert sc.streams["NETFLOW"].rate > sc.streams["SNMP"].rate
        assert sc.streams["ALERTS"].rate < sc.streams["SYSLOG"].rate

    def test_reuse_chains_across_dashboards(self):
        """The SOC's NETFLOW x ALERTS view serves triage and NOC too."""
        from repro.workload.scenarios import network_monitoring_scenario

        sc = network_monitoring_scenario(seed=2)
        soc = sc.queries[0]
        for later in sc.queries[2:]:
            sub = frozenset({"NETFLOW", "ALERTS"})
            assert soc.view_signature(sub) == later.view_signature(sub)

    def test_incremental_reuse_saves(self):
        from repro.core.exhaustive import OptimalPlanner
        from repro.query.deployment import DeploymentState
        from repro.workload.scenarios import network_monitoring_scenario

        sc = network_monitoring_scenario(seed=3)
        totals = {}
        for reuse in (False, True):
            state = DeploymentState(
                sc.network.cost_matrix(), sc.rates.rate_for, sc.rates.source
            )
            planner = OptimalPlanner(sc.network, sc.rates, reuse=reuse)
            for q in sc.queries:
                state.apply(planner.plan(q, state))
            totals[reuse] = state.total_cost()
        assert totals[True] <= totals[False]

    def test_plannable_by_all_hierarchical_algorithms(self):
        import repro
        from repro.workload.scenarios import network_monitoring_scenario

        sc = network_monitoring_scenario(seed=4)
        hierarchy = repro.build_hierarchy(sc.network, max_cs=6, seed=0)
        for name in ("top-down", "bottom-up"):
            optimizer = repro.make_optimizer(
                name, sc.network, sc.rates, hierarchy=hierarchy
            )
            state = repro.DeploymentState(
                sc.network.cost_matrix(), sc.rates.rate_for, sc.rates.source
            )
            for q in sc.queries:
                state.apply(optimizer.plan(q, state))
            assert state.total_cost() > 0
