"""Drift schedules: step, ramp, periodic, and their composition."""

import math

import pytest

from repro.query.stream import StreamSpec
from repro.workload import (
    DriftTimeline,
    PeriodicDrift,
    RampDrift,
    StepDrift,
    drift_timeline,
)


def catalog():
    return {
        "A": StreamSpec("A", 0, rate=100.0),
        "B": StreamSpec("B", 1, rate=40.0),
        "C": StreamSpec("C", 2, rate=10.0),
    }


class TestEvents:
    def test_step_is_flat_then_jumps(self):
        step = StepDrift("A", at=5.0, factor=4.0)
        assert step.factor_at(4.999) == 1.0
        assert step.factor_at(5.0) == 4.0
        assert step.factor_at(100.0) == 4.0

    def test_ramp_interpolates_linearly(self):
        ramp = RampDrift("A", start=10.0, end=20.0, factor=3.0)
        assert ramp.factor_at(0.0) == 1.0
        assert ramp.factor_at(15.0) == pytest.approx(2.0)
        assert ramp.factor_at(20.0) == 3.0
        assert ramp.factor_at(99.0) == 3.0
        with pytest.raises(ValueError):
            RampDrift("A", start=5.0, end=5.0, factor=2.0)

    def test_periodic_oscillates_around_one(self):
        periodic = PeriodicDrift("A", period=24.0, amplitude=0.5)
        assert periodic.factor_at(0.0) == pytest.approx(1.0)
        assert periodic.factor_at(6.0) == pytest.approx(1.5)
        assert periodic.factor_at(18.0) == pytest.approx(0.5)
        # mean over a full period is 1.0
        samples = [periodic.factor_at(t * 0.1) for t in range(240)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=1e-6)
        with pytest.raises(ValueError):
            PeriodicDrift("A", period=0.0, amplitude=0.5)
        with pytest.raises(ValueError):
            PeriodicDrift("A", period=24.0, amplitude=1.0)


class TestTimeline:
    def test_rates_at_reprices_only_the_drifting_stream(self):
        timeline = DriftTimeline(catalog(), [StepDrift("C", at=5.0, factor=6.0)])
        before, after = timeline.rates_at(0.0), timeline.rates_at(10.0)
        assert before == {"A": 100.0, "B": 40.0, "C": 10.0}
        assert after == {"A": 100.0, "B": 40.0, "C": 60.0}

    def test_events_on_one_stream_compose_multiplicatively(self):
        timeline = DriftTimeline(
            catalog(),
            [
                StepDrift("A", at=0.0, factor=2.0),
                PeriodicDrift("A", period=8.0, amplitude=0.5),
            ],
        )
        assert timeline.factor("A", 2.0) == pytest.approx(2.0 * 1.5)

    def test_streams_at_preserves_sources(self):
        timeline = DriftTimeline(catalog(), [StepDrift("B", at=1.0, factor=3.0)])
        specs = timeline.streams_at(2.0)
        assert specs["B"].source == 1
        assert specs["B"].rate == pytest.approx(120.0)
        assert specs["A"] == catalog()["A"]

    def test_unknown_stream_is_rejected(self):
        with pytest.raises(ValueError):
            DriftTimeline(catalog(), [StepDrift("NOPE", at=1.0, factor=2.0)])

    def test_settle_time_ignores_periodic_events(self):
        timeline = DriftTimeline(
            catalog(),
            [
                StepDrift("A", at=5.0, factor=2.0),
                RampDrift("B", start=3.0, end=12.0, factor=2.0),
                PeriodicDrift("C", period=100.0, amplitude=0.3),
            ],
        )
        assert timeline.settle_time() == 12.0


class TestFactory:
    def test_default_target_is_the_lowest_rate_stream(self):
        timeline = drift_timeline(catalog(), kind="step", at=3.0, factor=5.0)
        assert timeline.events == [StepDrift("C", at=3.0, factor=5.0)]

    def test_ramp_and_periodic_kinds(self):
        ramp = drift_timeline(
            catalog(), kind="ramp", stream="A", at=2.0, duration=6.0, factor=3.0
        )
        assert ramp.events == [RampDrift("A", start=2.0, end=8.0, factor=3.0)]
        periodic = drift_timeline(
            catalog(), kind="periodic", stream="B", period=12.0, amplitude=0.4
        )
        assert isinstance(periodic.events[0], PeriodicDrift)
        assert periodic.events[0].period == 12.0

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            drift_timeline(catalog(), kind="sawtooth")
