"""Tests for the statistics-gathering substrate."""

import numpy as np
import pytest

import repro
from repro.core.cost import deployment_cost
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec
from repro.workload.statistics import (
    StatisticsCollector,
    estimate_statistics,
    simulate_observation,
)


@pytest.fixture()
def true_stats():
    streams = {
        "A": StreamSpec("A", 0, 80.0),
        "B": StreamSpec("B", 3, 50.0),
        "C": StreamSpec("C", 6, 120.0),
    }
    selectivities = {
        frozenset(("A", "B")): 0.02,
        frozenset(("B", "C")): 0.01,
    }
    return streams, selectivities


class TestCollector:
    def test_rate_estimation(self):
        collector = StatisticsCollector({"A": 0})
        for _ in range(500):
            collector.observe("A")
        est = collector.estimate(observation_time=10.0)
        assert est.streams["A"].rate == pytest.approx(50.0)
        assert est.streams["A"].source == 0

    def test_unknown_stream_rejected(self):
        collector = StatisticsCollector({"A": 0})
        with pytest.raises(KeyError):
            collector.observe("Z")

    def test_unobserved_stream_rejected_at_estimate(self):
        collector = StatisticsCollector({"A": 0, "B": 1})
        collector.observe("A")
        with pytest.raises(ValueError, match="never observed"):
            collector.estimate(10.0)

    def test_invalid_window(self):
        collector = StatisticsCollector({"A": 0})
        collector.observe("A")
        with pytest.raises(ValueError):
            collector.estimate(0.0)

    def test_selectivity_from_histograms(self):
        """Deterministic histograms give an exact collision probability."""
        collector = StatisticsCollector({"A": 0, "B": 1})
        # A: values 0, 1 equally; B: always 0 => collision prob = 0.5
        for v in (0, 1, 0, 1):
            collector.observe("A", {"k": v})
        for _ in range(4):
            collector.observe("B", {"k": 0})
        est = collector.estimate(1.0)
        assert est.selectivity("A", "B") == pytest.approx(0.5)

    def test_no_collision_uses_floor(self):
        collector = StatisticsCollector({"A": 0, "B": 1}, min_selectivity=1e-5)
        collector.observe("A", {"k": 1})
        collector.observe("B", {"k": 2})
        est = collector.estimate(1.0)
        assert est.selectivity("A", "B") == 1e-5

    def test_unshared_attribute_gives_no_estimate(self):
        collector = StatisticsCollector({"A": 0, "B": 1})
        collector.observe("A", {"x": 1})
        collector.observe("B", {"y": 1})
        est = collector.estimate(1.0)
        assert est.selectivity("A", "B") == 1.0  # default


class TestSimulatedObservation:
    def test_estimates_close_to_truth(self, true_stats):
        streams, selectivities = true_stats
        est = estimate_statistics(streams, selectivities, observation_time=100.0, seed=1)
        for name, spec in streams.items():
            assert est.streams[name].rate == pytest.approx(spec.rate, rel=0.15)
        for pair, sel in selectivities.items():
            assert est.selectivities[pair] == pytest.approx(sel, rel=0.5)

    def test_longer_observation_reduces_rate_error(self, true_stats):
        streams, selectivities = true_stats
        errors = {}
        for time in (2.0, 200.0):
            errs = []
            for seed in range(8):
                est = estimate_statistics(streams, selectivities, time, seed=seed)
                errs.extend(
                    abs(est.streams[n].rate - s.rate) / s.rate for n, s in streams.items()
                )
            errors[time] = float(np.mean(errs))
        assert errors[200.0] < errors[2.0]

    def test_reproducible(self, true_stats):
        streams, selectivities = true_stats
        a = estimate_statistics(streams, selectivities, 10.0, seed=3)
        b = estimate_statistics(streams, selectivities, 10.0, seed=3)
        assert a.streams == b.streams
        assert a.selectivities == b.selectivities

    def test_invalid_window(self, true_stats):
        streams, selectivities = true_stats
        with pytest.raises(ValueError):
            simulate_observation(streams, selectivities, observation_time=-1.0)


class TestPlanningWithEstimates:
    def test_estimated_stats_yield_near_true_cost(self, true_stats):
        """Planning with estimated statistics should land within a few
        percent of planning with the truth, evaluated at true rates."""
        streams, selectivities = true_stats
        net = repro.transit_stub_by_size(32, seed=121)

        def query_from(sel_lookup, name):
            return Query(
                name, ["A", "B", "C"], sink=20,
                predicates=[
                    JoinPredicate("A", "B", sel_lookup(frozenset(("A", "B")))),
                    JoinPredicate("B", "C", sel_lookup(frozenset(("B", "C")))),
                ],
            )

        true_rates = repro.RateModel(streams)
        true_query = query_from(lambda p: selectivities[p], "q_true")
        true_plan = repro.OptimalPlanner(net, true_rates).plan(true_query)
        best = deployment_cost(true_plan, net.cost_matrix(), true_rates)

        est = estimate_statistics(streams, selectivities, observation_time=50.0, seed=5)
        est_rates = est.rate_model()
        est_query = query_from(lambda p: est.selectivities[p], "q_est")
        est_plan = repro.OptimalPlanner(net, est_rates).plan(est_query)
        # evaluate the estimated plan under TRUE statistics: same plan
        # tree/placement, true query semantics
        realized = repro.Deployment(
            query=true_query,
            plan=est_plan.plan,
            placement={
                node: est_plan.placement[node] for node in est_plan.plan.subtrees()
            },
        )
        achieved = deployment_cost(realized, net.cost_matrix(), true_rates)
        assert achieved <= best * 1.25
