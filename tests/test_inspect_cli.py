"""Tests for the inspect renderers and the CLI."""

import pytest

import repro
from repro.cli import build_parser, main
from repro.inspect import (
    describe_deployment,
    render_hierarchy,
    render_plan,
    summarize_state,
)
from repro.query.plan import Join, Leaf


@pytest.fixture(scope="module")
def small_system():
    net = repro.transit_stub_by_size(24, seed=71)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=5, num_queries=3, joins_per_query=(2, 3)),
        seed=72,
    )
    rates = workload.rate_model()
    state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    deployments = [optimizer.plan(q, state) for q in workload]
    for d in deployments:
        state.apply(d)
    return net, hierarchy, rates, state, deployments


class TestRenderHierarchy:
    def test_mentions_every_level(self, small_system):
        net, hierarchy, *_ = small_system
        text = render_hierarchy(hierarchy)
        for level in range(1, hierarchy.height + 1):
            assert f"L{level} cluster" in text

    def test_marks_coordinators(self, small_system):
        net, hierarchy, *_ = small_system
        text = render_hierarchy(hierarchy)
        assert f"*{hierarchy.root.coordinator}" in text

    def test_elides_long_member_lists(self, small_system):
        net, hierarchy, *_ = small_system
        text = render_hierarchy(hierarchy, max_members=1)
        assert "..." in text


class TestRenderPlan:
    def test_tree_structure(self):
        plan = Join(Join(Leaf.of("A"), Leaf.of("B")), Leaf.of("C"))
        text = render_plan(plan)
        assert "JOIN" in text
        assert "stream A" in text
        assert text.count("|--") + text.count("`--") == 4  # 2 joins' children

    def test_placement_annotations(self):
        a, b = Leaf.of("A"), Leaf.of("B")
        plan = Join(a, b)
        text = render_plan(plan, {a: 1, b: 2, plan: 3})
        assert "@node 3" in text

    def test_reuse_leaf_marked(self):
        plan = Leaf.of("A", "B")
        assert "REUSE" in render_plan(plan)


class TestDescribeDeployment:
    def test_breakdown_sums_to_deployment_cost(self, small_system):
        net, hierarchy, rates, state, deployments = small_system
        from repro.core.cost import deployment_cost

        for deployment in deployments:
            text = describe_deployment(deployment, net.cost_matrix(), rates)
            total_line = [l for l in text.splitlines() if "TOTAL" in l][0]
            reported = float(total_line.split()[-1])
            expected = deployment_cost(deployment, net.cost_matrix(), rates)
            assert reported == pytest.approx(expected, rel=1e-4)

    def test_summarize_state(self, small_system):
        *_, state, _ = small_system
        text = summarize_state(state)
        assert "deployments" in text
        assert "cost/unit-time" in text


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["bounds", "-k", "3", "-n", "64", "--max-cs", "8"])
        assert args.streams == 3

    def test_bounds_command(self, capsys):
        assert main(["bounds", "-k", "4", "-n", "128", "--max-cs", "32"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out
        assert "beta" in out

    def test_plan_command(self, capsys):
        rc = main([
            "plan",
            "SELECT A.x FROM A, B WHERE A.k = B.k",
            "--nodes", "16", "--sink", "3", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "JOIN" in out
        assert "TOTAL" in out

    def test_plan_with_algorithm_choice(self, capsys):
        rc = main([
            "plan",
            "SELECT A.x FROM A, B WHERE A.k = B.k",
            "--nodes", "16", "--algorithm", "bottom-up",
        ])
        assert rc == 0

    def test_figures_unknown_name(self, capsys):
        assert main(["figures", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_figures_runs_one(self, capsys):
        assert main(["figures", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "plans considered" in out or "Scalability" in out

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])
