"""The ledger derives loads from deployment states, reuse charged once."""

import pytest

import repro
from repro.resources import (
    NodeCapacity,
    OperatorFootprint,
    ResourceConfig,
    ResourceLedger,
    plan_node_loads,
    uniform_capacities,
)
from repro.service import StreamQueryService


def build_service(resources=None, seed=47, budget=None):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    kwargs = {}
    if budget is not None:
        kwargs["admission"] = repro.AdmissionController(budget=budget)
    service = StreamQueryService(
        optimizer, net, rates, hierarchy=hierarchy, ads=ads,
        resources=resources, **kwargs,
    )
    return service, workload, net


def total_cpu(ledger):
    return sum(load.cpu for load in ledger.node_loads().values())


class TestDerivedAccounting:
    def test_loads_appear_on_deploy_and_vanish_on_retire(self):
        service, workload, _ = build_service(resources=ResourceConfig())
        ledger = service.resources.ledger
        assert ledger.node_loads() == {}
        queries = list(workload)
        service.submit(queries[0])
        loaded = total_cpu(ledger)
        assert loaded > 0
        service.retire(queries[0].name)
        assert ledger.node_loads() == {}

    def test_join_count_matches_charged_operators(self):
        service, workload, _ = build_service(resources=ResourceConfig())
        ledger = service.resources.ledger
        query = list(workload)[0]
        service.submit(query)
        deployment = service.engine.state.deployments[0]
        expected_keys = {
            (query.view_signature(j.sources), deployment.placement[j])
            for j in deployment.plan.joins()
        }
        assert ledger.operator_keys() == expected_keys

    def test_shared_view_is_charged_once(self):
        service, workload, _ = build_service(resources=ResourceConfig())
        ledger = service.resources.ledger
        queries = list(workload)
        first = queries[0]
        service.submit(first)
        solo = total_cpu(ledger)
        # An identical-shape query (same sources/predicates, new name)
        # reuses the deployed view: the ledger must not double-charge.
        twin = repro.Query(
            name="twin",
            sources=first.sources,
            sink=first.sink,
            predicates=first.predicates,
            filters=first.filters,
            projection=first.projection,
            window=first.window,
        )
        service.submit(twin)
        state = service.engine.state
        shared = [
            key
            for key in state.operators()
            if len(state.queries_using(*key)) > 1
        ]
        assert shared, "scenario must actually share an operator"
        assert total_cpu(ledger) == pytest.approx(solo)

    def test_operator_outliving_its_owner_stays_charged(self):
        service, workload, _ = build_service(resources=ResourceConfig())
        ledger = service.resources.ledger
        first = list(workload)[0]
        service.submit(first)
        solo = total_cpu(ledger)
        twin = repro.Query(
            name="twin",
            sources=first.sources,
            sink=first.sink,
            predicates=first.predicates,
            filters=first.filters,
            projection=first.projection,
            window=first.window,
        )
        service.submit(twin)
        # Retiring the owner leaves the shared operator running for the
        # reuser; the ledger must keep charging it.
        service.retire(first.name)
        assert service.is_live("twin")
        if ledger.operator_keys():
            assert total_cpu(ledger) == pytest.approx(solo)
        service.retire("twin")
        assert ledger.node_loads() == {}

    def test_utilization_against_capacities(self):
        net = repro.transit_stub_by_size(32, seed=47)
        caps = uniform_capacities(net, cpu=100.0)
        service, workload, _ = build_service(
            resources=ResourceConfig(capacities=caps, utilization_bound=10.0)
        )
        # Rebuild with the same network seed so node ids line up.
        ledger = service.resources.ledger
        assert ledger.constrained
        service.submit(list(workload)[0])
        utils = ledger.utilizations()
        assert utils
        assert ledger.max_utilization() == pytest.approx(max(utils.values()))
        hot = ledger.hot_nodes(3)
        assert hot == sorted(
            utils.items(), key=lambda kv: (-kv[1], kv[0])
        )[:3]

    def test_queries_on_names_occupants(self):
        service, workload, _ = build_service(resources=ResourceConfig())
        ledger = service.resources.ledger
        query = list(workload)[0]
        service.submit(query)
        deployment = service.engine.state.deployments[0]
        for join in deployment.plan.joins():
            assert query.name in ledger.queries_on(deployment.placement[join])
        assert ledger.queries_on(-1) == []

    def test_violations_sorted_hottest_first(self):
        ledger = ResourceLedger({0: NodeCapacity(cpu=1.0), 1: NodeCapacity(cpu=1.0)})
        from repro.resources import Load

        extra = {0: Load(cpu=2.0), 1: Load(cpu=3.0)}
        out = ledger.violations(bound=1.0, extra=extra)
        assert out == [(1, 3.0), (0, 2.0)]
        assert ledger.violations(bound=5.0, extra=extra) == []

    def test_summary_is_jsonable(self):
        import json

        service, workload, _ = build_service(resources=ResourceConfig())
        service.submit(list(workload)[0])
        json.dumps(service.resources.ledger.summary())


class TestPlanNodeLoads:
    def test_skip_keys_credit_live_operators(self):
        service, workload, _ = build_service(resources=ResourceConfig())
        query = list(workload)[0]
        service.submit(query)
        deployment = service.engine.state.deployments[0]
        fp = OperatorFootprint(service.rates)
        full = plan_node_loads(fp, query, deployment.plan, deployment.placement)
        assert sum(l.cpu for l in full.values()) > 0
        credited = plan_node_loads(
            fp,
            query,
            deployment.plan,
            deployment.placement,
            skip_keys=service.resources.ledger.operator_keys(),
        )
        assert credited == {}
