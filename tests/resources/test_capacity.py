"""Capacity/load algebra and the seeded capacity profiles."""

import math

import pytest

import repro
from repro.resources import (
    Load,
    NodeCapacity,
    UNBOUNDED,
    ZERO_LOAD,
    capacities_by_kind,
    uniform_capacities,
)
from repro.workload import HeterogeneousFleetProfile, HotspotProfile


class TestNodeCapacity:
    def test_default_is_unbounded(self):
        assert NodeCapacity().unbounded
        assert UNBOUNDED.unbounded

    def test_any_finite_dimension_is_bounded(self):
        assert not NodeCapacity(cpu=10.0).unbounded
        assert not NodeCapacity(memory=10.0).unbounded
        assert not NodeCapacity(bandwidth=10.0).unbounded

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            NodeCapacity(cpu=0.0)
        with pytest.raises(ValueError):
            NodeCapacity(memory=-1.0)

    def test_scaled(self):
        cap = NodeCapacity(cpu=10.0, memory=20.0).scaled(0.5)
        assert cap.cpu == 5.0
        assert cap.memory == 10.0
        assert math.isinf(cap.bandwidth)
        with pytest.raises(ValueError):
            cap.scaled(0.0)

    def test_to_dict_renders_inf_as_none(self):
        assert NodeCapacity(cpu=3.0).to_dict() == {
            "cpu": 3.0,
            "memory": None,
            "bandwidth": None,
        }


class TestLoad:
    def test_addition_and_scaling(self):
        total = Load(cpu=1.0, memory=2.0) + Load(cpu=3.0, bandwidth=4.0)
        assert total == Load(cpu=4.0, memory=2.0, bandwidth=4.0)
        assert total.scaled(2.0) == Load(cpu=8.0, memory=4.0, bandwidth=8.0)
        assert ZERO_LOAD + total == total

    def test_utilization_is_max_dimension_ratio(self):
        cap = NodeCapacity(cpu=10.0, memory=100.0, bandwidth=10.0)
        load = Load(cpu=5.0, memory=90.0, bandwidth=1.0)
        assert load.utilization(cap) == pytest.approx(0.9)

    def test_unbounded_dimensions_contribute_zero(self):
        assert Load(cpu=1e9).utilization(UNBOUNDED) == 0.0
        cap = NodeCapacity(memory=10.0)
        assert Load(cpu=1e9, memory=5.0).utilization(cap) == pytest.approx(0.5)

    def test_fits(self):
        cap = NodeCapacity(cpu=10.0)
        assert Load(cpu=10.0).fits(cap)
        assert not Load(cpu=10.1).fits(cap)
        assert Load(cpu=15.0).fits(cap, bound=1.5)


class TestCapacityMaps:
    def test_uniform_capacities_cover_every_node(self):
        net = repro.transit_stub_by_size(16, seed=1)
        caps = uniform_capacities(net, cpu=7.0)
        assert set(caps) == set(net.nodes())
        assert all(c.cpu == 7.0 for c in caps.values())

    def test_capacities_by_kind(self):
        net = repro.transit_stub_by_size(16, seed=1)
        caps = capacities_by_kind(
            net, {"transit": NodeCapacity(cpu=100.0)}, default=NodeCapacity(cpu=5.0)
        )
        for node in net.nodes():
            expected = 100.0 if net.node_kind(node) == "transit" else 5.0
            assert caps[node].cpu == expected


class TestProfiles:
    def test_hotspot_profile_is_deterministic(self):
        net = repro.transit_stub_by_size(32, seed=47)
        profile = HotspotProfile(cpu=100.0, weak_fraction=0.25, seed=9)
        first = profile.capacities(net)
        assert first == profile.capacities(net)
        weak = [n for n, c in first.items() if c.cpu < 100.0]
        assert len(weak) == len(net.nodes()) // 4
        assert all(first[n].cpu == pytest.approx(10.0) for n in weak)

    def test_hotspot_different_seed_moves_the_weak_set(self):
        net = repro.transit_stub_by_size(32, seed=47)
        weak = lambda seed: {  # noqa: E731
            n
            for n, c in HotspotProfile(seed=seed).capacities(net).items()
            if c.cpu < 999.0
        }
        assert weak(1) != weak(2)

    def test_hotspot_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HotspotProfile(weak_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotProfile(weak_scale=0.0)

    def test_heterogeneous_profile_keys_by_kind(self):
        net = repro.transit_stub_by_size(32, seed=47)
        caps = HeterogeneousFleetProfile().capacities(net)
        for node in net.nodes():
            if net.node_kind(node) == "transit":
                assert caps[node].cpu == 4000.0
            else:
                assert caps[node].cpu == 500.0

    def test_heterogeneous_jitter_is_seeded(self):
        net = repro.transit_stub_by_size(32, seed=47)
        profile = HeterogeneousFleetProfile(jitter=0.3, seed=11)
        first = profile.capacities(net)
        assert first == profile.capacities(net)
        assert first != HeterogeneousFleetProfile(jitter=0.3, seed=12).capacities(net)
        base = HeterogeneousFleetProfile().capacities(net)
        for node, cap in first.items():
            assert 0.7 * base[node].cpu <= cap.cpu <= 1.3 * base[node].cpu
