"""Operator footprints derive from the rate model."""

import pytest

from repro.core.cost import RateModel
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec
from repro.resources import OperatorFootprint


def _model():
    streams = {
        "A": StreamSpec("A", 0, 10.0),
        "B": StreamSpec("B", 1, 20.0),
        "C": StreamSpec("C", 2, 5.0),
    }
    rates = RateModel(streams)
    query = Query(
        "q",
        ["A", "B", "C"],
        sink=0,
        predicates=[
            JoinPredicate("A", "B", 0.01),
            JoinPredicate("B", "C", 0.1),
        ],
        window=0.5,
    )
    return rates, query


class TestJoinLoad:
    def test_dimensions_follow_the_rate_model(self):
        rates, query = _model()
        fp = OperatorFootprint(rates)
        left, right = frozenset({"A"}), frozenset({"B"})
        load = fp.join_load(query, left, right)
        in_left = rates.rate_for(query, left)
        in_right = rates.rate_for(query, right)
        out = rates.rate_for(query, left | right)
        assert load.cpu == pytest.approx(in_left + in_right)
        assert load.memory == pytest.approx((in_left + in_right) * query.window)
        assert load.bandwidth == pytest.approx(in_left + in_right + out)

    def test_bytes_per_tuple_scales_memory_only(self):
        rates, query = _model()
        one = OperatorFootprint(rates).join_load(
            query, frozenset({"A"}), frozenset({"B"})
        )
        four = OperatorFootprint(rates, bytes_per_tuple=4.0).join_load(
            query, frozenset({"A"}), frozenset({"B"})
        )
        assert four.memory == pytest.approx(4.0 * one.memory)
        assert four.cpu == one.cpu
        assert four.bandwidth == one.bandwidth

    def test_rejects_non_positive_bytes_per_tuple(self):
        rates, _ = _model()
        with pytest.raises(ValueError):
            OperatorFootprint(rates, bytes_per_tuple=0.0)

    def test_tracks_rate_model_updates(self):
        rates, query = _model()
        fp = OperatorFootprint(rates)
        before = fp.join_load(query, frozenset({"A"}), frozenset({"B"}))
        updated = dict(rates.streams)
        updated["A"] = StreamSpec("A", 0, 100.0)
        rates.update_streams(updated)
        after = fp.join_load(query, frozenset({"A"}), frozenset({"B"}))
        assert after.cpu > before.cpu


class TestPlanLoads:
    def test_only_join_operators_carry_load(self):
        rates, query = _model()
        fp = OperatorFootprint(rates)
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        tree = Join(Join(a, b), c)
        loads = fp.plan_loads(query, tree)
        assert set(loads) == set(tree.joins())
        assert len(loads) == 2
        assert all(load.cpu > 0 for load in loads.values())
