"""The constrained placement DP against filtered brute force.

The DP's contract under a constraint: among assignments whose every
operator individually fits its node (the per-operator mask), it finds
the communication-cost optimum -- or raises when no candidate fits.
The joint per-plan check (:meth:`PlacementConstraint.validate`) is the
optimizers' responsibility and is tested at the service level.
"""

from itertools import product

import numpy as np
import pytest

from repro.core.cost import RateModel
from repro.core.placement import optimal_tree_placement
from repro.errors import InfeasiblePlacementError
from repro.network.topology import random_geometric
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec
from repro.resources import (
    NodeCapacity,
    OperatorFootprint,
    PlacementConstraint,
    Load,
)


def _setup(seed, num_nodes=6):
    net = random_geometric(num_nodes, seed=seed)
    rng = np.random.default_rng(seed)
    names = ["A", "B", "C"]
    streams = {
        n: StreamSpec(n, int(rng.integers(0, num_nodes)), float(rng.uniform(10, 100)))
        for n in names
    }
    rates = RateModel(streams)
    query = Query(
        "q",
        names,
        sink=int(rng.integers(0, num_nodes)),
        predicates=[
            JoinPredicate("A", "B", float(rng.uniform(0.001, 0.05))),
            JoinPredicate("B", "C", float(rng.uniform(0.001, 0.05))),
        ],
    )
    a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
    tree = Join(Join(a, b), c)
    leaf_positions = {leaf: [streams[leaf.label].source] for leaf in (a, b, c)}
    return net, rates, query, tree, leaf_positions


def _filtered_brute_force(
    tree, candidates, costs, leaf_positions, rates, sink, constraint
):
    """Enumerate assignments, rejecting per-operator infeasible nodes."""
    joins = tree.joins()
    best_cost = float("inf")
    best = None
    for join_assign in product(list(candidates), repeat=len(joins)):
        placement = dict(zip(joins, join_assign))
        ok = True
        for join, node in placement.items():
            load = constraint.footprint.join_load(
                constraint.query, join.left.sources, join.right.sources
            )
            if constraint._projected(node, load) > constraint.bound + 1e-9:
                ok = False
                break
        if not ok:
            continue
        for leaf in tree.leaves():
            placement[leaf] = leaf_positions[leaf][0]
        cost = 0.0
        for join in joins:
            node = placement[join]
            for child in (join.left, join.right):
                cost += rates[child] * float(costs[placement[child], node])
        if sink is not None:
            cost += rates[tree] * float(costs[placement[tree], sink])
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = placement
    return best, best_cost


def _constraint(net, rates, query, capacities, bound=1.0, load_weight=0.0,
                base_loads=None):
    return PlacementConstraint(
        query=query,
        footprint=OperatorFootprint(rates),
        capacities=capacities,
        base_loads=base_loads or {},
        bound=bound,
        load_weight=load_weight,
    )


class TestConstrainedDP:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_filtered_brute_force(self, seed):
        net, rates, query, tree, leaf_positions = _setup(seed)
        flow_rates = rates.flow_rates(query, tree)
        # Cap every node just above the heavier operator's cpu so some
        # candidates are infeasible but a placement usually exists.
        fp = OperatorFootprint(rates)
        loads = sorted(l.cpu for l in fp.plan_loads(query, tree).values())
        capacities = {
            node: NodeCapacity(cpu=loads[-1] * (0.6 + 0.15 * (node % 4)))
            for node in net.nodes()
        }
        constraint = _constraint(net, rates, query, capacities)
        args = (
            tree,
            net.nodes(),
            net.cost_matrix(),
            leaf_positions,
            flow_rates,
            query.sink,
        )
        expected, expected_cost = _filtered_brute_force(*args, constraint)
        if expected is None:
            with pytest.raises(InfeasiblePlacementError):
                optimal_tree_placement(*args, constraint=constraint)
            return
        result = optimal_tree_placement(*args, constraint=constraint)
        assert result.cost == pytest.approx(expected_cost)
        assert result.objective == pytest.approx(expected_cost)
        for join in tree.joins():
            load = fp.join_load(query, join.left.sources, join.right.sources)
            assert constraint._projected(result.placement[join], load) <= 1.0 + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_unbounded_constraint_is_identical_to_none(self, seed):
        net, rates, query, tree, leaf_positions = _setup(seed)
        flow_rates = rates.flow_rates(query, tree)
        args = (
            tree,
            net.nodes(),
            net.cost_matrix(),
            leaf_positions,
            flow_rates,
            query.sink,
        )
        plain = optimal_tree_placement(*args)
        constrained = optimal_tree_placement(
            *args, constraint=_constraint(net, rates, query, {})
        )
        assert constrained.placement == plain.placement
        assert constrained.cost == plain.cost
        assert plain.objective == plain.cost

    def test_all_nodes_saturated_raises(self):
        net, rates, query, tree, leaf_positions = _setup(0)
        capacities = {node: NodeCapacity(cpu=0.001) for node in net.nodes()}
        with pytest.raises(InfeasiblePlacementError):
            optimal_tree_placement(
                tree,
                net.nodes(),
                net.cost_matrix(),
                leaf_positions,
                rates.flow_rates(query, tree),
                query.sink,
                constraint=_constraint(net, rates, query, capacities),
            )

    def test_background_load_steers_placement(self):
        net, rates, query, tree, leaf_positions = _setup(3)
        flow_rates = rates.flow_rates(query, tree)
        args = (
            tree,
            net.nodes(),
            net.cost_matrix(),
            leaf_positions,
            flow_rates,
            query.sink,
        )
        plain = optimal_tree_placement(*args)
        # Saturate the node the unconstrained optimum uses for the root.
        busy = plain.placement[tree]
        fp = OperatorFootprint(rates)
        cap = max(l.cpu for l in fp.plan_loads(query, tree).values()) * 2.0
        capacities = {node: NodeCapacity(cpu=cap) for node in net.nodes()}
        base = {busy: Load(cpu=cap)}
        constrained = optimal_tree_placement(
            *args,
            constraint=_constraint(net, rates, query, capacities, base_loads=base),
        )
        assert all(node != busy for node in (
            constrained.placement[j] for j in tree.joins()
        ))
        assert constrained.cost >= plain.cost - 1e-9

    def test_bi_criteria_penalty_in_objective_not_cost(self):
        net, rates, query, tree, leaf_positions = _setup(5)
        flow_rates = rates.flow_rates(query, tree)
        fp = OperatorFootprint(rates)
        cap = max(l.cpu for l in fp.plan_loads(query, tree).values()) * 4.0
        capacities = {node: NodeCapacity(cpu=cap) for node in net.nodes()}
        result = optimal_tree_placement(
            tree,
            net.nodes(),
            net.cost_matrix(),
            leaf_positions,
            flow_rates,
            query.sink,
            constraint=_constraint(
                net, rates, query, capacities, load_weight=1000.0
            ),
        )
        # cost stays pure communication; the objective carries the
        # penalty on top.
        assert result.objective > result.cost
        comm = 0.0
        costs = net.cost_matrix()
        for join in tree.joins():
            node = result.placement[join]
            for child in (join.left, join.right):
                comm += flow_rates[child] * float(
                    costs[result.placement[child], node]
                )
        comm += flow_rates[tree] * float(costs[result.placement[tree], query.sink])
        assert result.cost == pytest.approx(comm)
