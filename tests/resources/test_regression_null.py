"""With ``resources=None`` -- or armed but unbounded -- nothing changes.

Mirror of the durability/telemetry null-regression contract, with one
extra tier: the resource layer must be invisible not only when absent
but also when *armed with all-unbounded capacities* -- decision for
decision, cost for cost.
"""

import pytest

import repro
from repro.fleet import FleetController
from repro.resources import ResourceConfig, uniform_capacities
from repro.service import AdmissionController, StreamQueryService, churn_trace

#: summary keys that depend on wall-clock
_VOLATILE = {"planning_seconds", "queries_per_second"}


def build_service(resources=None, seed=47):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=6),
        resources=resources,
    )
    return service, workload


def clean(summary):
    return {
        k: v
        for k, v in summary.items()
        if k not in _VOLATILE and k != "resources"
    }


class TestServiceParity:
    def test_replay_identical_with_and_without_the_layer(self):
        plain, workload = build_service(resources=None)
        armed, _ = build_service(resources=ResourceConfig())
        assert plain.resources is None
        assert armed.resources is not None
        assert not armed.resources.constrained

        trace = churn_trace(workload, lifetime=4.0, repeats=2)
        report_plain = plain.replay(list(trace))
        report_armed = armed.replay(list(trace))

        assert report_plain.decisions == report_armed.decisions
        assert report_plain.ticks == report_armed.ticks
        assert clean(report_plain.summary) == clean(report_armed.summary)
        assert plain.total_cost() == armed.total_cost()
        # the armed run carries its own summary block
        assert "resources" in report_armed.summary
        assert "resources" not in report_plain.summary

    def test_unbounded_capacities_are_also_invisible(self):
        # Armed AND carrying explicit capacities -- all infinite.  The
        # constraint must never be built, so decisions stay identical.
        plain, workload = build_service(resources=None)
        net = repro.transit_stub_by_size(32, seed=47)
        armed, _ = build_service(
            resources=ResourceConfig(capacities=uniform_capacities(net))
        )
        assert not armed.resources.constrained

        trace = churn_trace(workload, lifetime=4.0, repeats=2)
        report_plain = plain.replay(list(trace))
        report_armed = armed.replay(list(trace))
        assert report_plain.decisions == report_armed.decisions
        assert clean(report_plain.summary) == clean(report_armed.summary)
        assert plain.total_cost() == armed.total_cost()

    def test_default_service_exposes_no_resource_metrics(self):
        plain, _ = build_service(resources=None)
        armed, _ = build_service(resources=ResourceConfig())
        plain_names = set(plain.registry.names())
        armed_names = set(armed.registry.names())
        assert not {n for n in plain_names if n.startswith("resource_")}
        assert {n for n in armed_names if n.startswith("resource_")}
        assert plain_names == {
            n for n in armed_names if not n.startswith("resource_")
        }

    def test_default_service_has_no_hooks(self):
        plain, _ = build_service(resources=None)
        assert plain.resources is None
        assert getattr(plain.optimizer, "resources", None) is None

    def test_armed_service_wires_the_planner(self):
        armed, _ = build_service(resources=ResourceConfig())
        assert armed.optimizer.resources is armed.resources


class TestFleetParity:
    def test_fleet_parity_and_shard_guard(self):
        net = repro.transit_stub_by_size(32, seed=3)
        hierarchy = repro.build_hierarchy(net, max_cs=6, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=6, joins_per_query=(1, 3)),
            seed=4,
        )
        rates = workload.rate_model()

        def build(resources):
            return FleetController(
                2, net, rates, hierarchy, policy="hash", budget=4,
                resources=resources,
            )

        plain = build(None)
        armed = build(ResourceConfig())
        for query in workload:
            plain.submit(query, lifetime=4.0)
            armed.submit(query, lifetime=4.0)
        for _ in range(6):
            plain.tick()
            armed.tick()
        assert plain.live_queries == armed.live_queries
        assert plain.total_cost() == armed.total_cost()
        assert plain.check_invariants() == armed.check_invariants() == []
        # One shared ledger, one manager per shard.
        assert armed.resource_ledger is not None
        assert len(armed.resource_managers) == 2
        assert all(
            s.resources.ledger is armed.resource_ledger for s in armed.shards
        )
        # Shards must not be armed independently.
        with pytest.raises(repro.ReproError):
            FleetController(
                2, net, rates, hierarchy,
                service_kwargs={"resources": ResourceConfig()},
            )
        # And the fleet takes a config, not a manager.
        with pytest.raises(repro.ReproError):
            FleetController(
                2, net, rates, hierarchy,
                resources=repro.ResourceManager(ResourceConfig()),
            )

    def test_unarmed_fleet_has_no_resource_surface(self):
        net = repro.transit_stub_by_size(16, seed=3)
        hierarchy = repro.build_hierarchy(net, max_cs=6, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=4, num_queries=2, joins_per_query=(1, 2)),
            seed=4,
        )
        fleet = FleetController(1, net, workload.rate_model(), hierarchy)
        assert fleet.resource_ledger is None
        assert fleet.resource_managers == []
        assert not {
            n for n in fleet.registry.names() if "resource" in n
        }
        with pytest.raises(repro.ReproError):
            fleet.hot_nodes()
        with pytest.raises(repro.ReproError):
            fleet.queries_on(0)
        with pytest.raises(repro.ReproError):
            fleet.resource_summary()
