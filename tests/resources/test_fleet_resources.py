"""Fleet-level resource accounting: one shared ledger, tenant-weighted
shedding, and hot-node introspection for rebalancing."""

import json

import pytest

import repro
from repro.fleet import FleetController, Tenant
from repro.resources import ResourceConfig, uniform_capacities


def build_fleet(resources, tenants=None, seed=47, num_queries=8, budget=16):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(
            num_streams=6, num_queries=num_queries, joins_per_query=(1, 3)
        ),
        seed=seed + 1,
    )
    fleet = FleetController(
        2,
        net,
        workload.rate_model(),
        hierarchy,
        policy="hash",
        budget=budget,
        tenants=tenants,
        resources=resources,
    )
    return fleet, workload, net


def bounded(net, **overrides):
    return ResourceConfig(
        capacities=uniform_capacities(
            net, cpu=600.0, memory=400.0, bandwidth=800.0
        ),
        **overrides,
    )


class TestSharedLedger:
    def test_shards_share_one_ledger(self):
        net = repro.transit_stub_by_size(32, seed=47)
        fleet, workload, _ = build_fleet(bounded(net))
        assert fleet.resource_ledger is not None
        assert len(fleet.resource_managers) == 2
        for shard in fleet.shards:
            assert shard.resources.ledger is fleet.resource_ledger
        for query in workload:
            fleet.submit(query, lifetime=100.0)
        fleet.tick()
        # Both shards' deployments land in the same books.
        per_shard_live = [len(s.live_queries) for s in fleet.shards]
        assert all(n > 0 for n in per_shard_live)
        charged = {
            name
            for node in dict(fleet.resource_ledger.utilizations())
            for name in fleet.resource_ledger.queries_on(node)
        }
        assert charged == set(fleet.live_queries)
        assert fleet.check_invariants() == []

    def test_bound_holds_fleet_wide(self):
        net = repro.transit_stub_by_size(32, seed=47)
        fleet, workload, _ = build_fleet(bounded(net))
        for query in workload:
            fleet.submit(query, lifetime=100.0)
        for _ in range(4):
            fleet.tick()
        assert fleet.resource_ledger.violations(1.0) == []
        assert fleet.resource_ledger.max_utilization() <= 1.0 + 1e-9

    def test_hot_nodes_and_queries_on(self):
        net = repro.transit_stub_by_size(32, seed=47)
        fleet, workload, _ = build_fleet(bounded(net))
        for query in workload:
            fleet.submit(query, lifetime=100.0)
        hot = fleet.hot_nodes(3)
        assert hot == fleet.resource_ledger.hot_nodes(3)
        assert hot and hot[0][1] > 0
        node = hot[0][0]
        occupants = fleet.queries_on(node)
        assert occupants
        assert set(occupants) <= set(fleet.live_queries)

    def test_summary_and_replay_carry_the_resources_block(self):
        net = repro.transit_stub_by_size(32, seed=47)
        fleet, workload, _ = build_fleet(bounded(net))
        for query in list(workload)[:3]:
            fleet.submit(query, lifetime=10.0)
        fleet.tick()
        summary = fleet.summary()
        assert summary["resources"]["ledger"]["constrained"]
        assert summary["resources"]["ledger"]["max_utilization"] > 0
        json.dumps(summary)
        assert fleet.resource_summary() == summary["resources"]

    def test_fleet_gauges_track_the_ledger(self):
        net = repro.transit_stub_by_size(32, seed=47)
        fleet, workload, _ = build_fleet(bounded(net))
        for query in workload:
            fleet.submit(query, lifetime=100.0)
        fleet.tick()
        assert fleet.registry.get("fleet_resource_max_utilization").value == (
            pytest.approx(fleet.resource_ledger.max_utilization())
        )
        parked = sum(len(m.parked) for m in fleet.resource_managers)
        assert fleet.registry.get("fleet_resource_parked_queries").value == (
            float(parked)
        )


class TestTenantWeightedShedding:
    def test_gold_tenant_displaces_bronze(self):
        net = repro.transit_stub_by_size(32, seed=47)
        tenants = [Tenant("gold", weight=4.0), Tenant("bronze", weight=1.0)]
        fleet, workload, _ = build_fleet(bounded(net), tenants=tenants)
        queries = list(workload)
        # Saturate with bronze, then submit the heavy tail as gold.
        for query in queries[:-1]:
            fleet.submit(query, lifetime=100.0, tenant="bronze")
        gold_query = queries[-1]
        fleet.submit(gold_query, lifetime=100.0, tenant="gold")
        fleet.tick()
        managers = fleet.resource_managers
        assert all(m.weight_of(gold_query.name) == 4.0 for m in managers)
        shed_total = sum(m.shed_total for m in managers)
        if shed_total:
            # Whatever was shed must have been strictly lighter (bronze).
            for manager in managers:
                for entry in manager.parked.values():
                    if entry.shed:
                        assert entry.weight < 4.0
        assert gold_query.name in fleet.live_queries
        assert fleet.resource_ledger.violations(1.0) == []

    def test_tenant_live_counts_survive_shedding(self):
        net = repro.transit_stub_by_size(32, seed=47)
        tenants = [Tenant("gold", weight=4.0), Tenant("bronze", weight=1.0)]
        fleet, workload, _ = build_fleet(bounded(net), tenants=tenants)
        queries = list(workload)
        for query in queries[:-1]:
            fleet.submit(query, lifetime=100.0, tenant="bronze")
        fleet.submit(queries[-1], lifetime=100.0, tenant="gold")
        for _ in range(3):
            fleet.tick()
        live_by_tenant = {"gold": 0, "bronze": 0}
        for name in fleet.live_queries:
            tenant = fleet._tenant_of.get(name)
            if tenant:
                live_by_tenant[tenant] += 1
        gold_gauge = fleet.registry.get("tenant_live_gold").value
        bronze_gauge = fleet.registry.get("tenant_live_bronze").value
        assert gold_gauge == float(live_by_tenant["gold"])
        assert bronze_gauge == float(live_by_tenant["bronze"])


class TestUnarmedSurface:
    def test_introspection_requires_the_layer(self):
        fleet, _, _ = build_fleet(None)
        for call in (
            lambda: fleet.hot_nodes(),
            lambda: fleet.queries_on(0),
            lambda: fleet.resource_summary(),
        ):
            with pytest.raises(repro.ReproError):
                call()
