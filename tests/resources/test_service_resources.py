"""Capacity-bounded service behavior: park, shed, re-admit, and the
fleet-feasibility property (no accepted placement ever exceeds its
bound -- even under statistics drift)."""

import pytest

import repro
from repro.errors import InfeasiblePlacementError
from repro.resources import ResourceConfig, uniform_capacities
from repro.service import AdmissionStatus, StreamQueryService, churn_trace

#: comfortable headroom for ~7 of the 8 workload queries on this net
_CAPS = dict(cpu=600.0, memory=400.0, bandwidth=800.0)


def build_service(resources, seed=47, num_queries=8):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(
            num_streams=6, num_queries=num_queries, joins_per_query=(1, 3)
        ),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    service = StreamQueryService(
        optimizer, net, rates, hierarchy=hierarchy, ads=ads, resources=resources
    )
    return service, workload, net


def bounded_config(net, **overrides):
    return ResourceConfig(
        capacities=uniform_capacities(net, **_CAPS), **overrides
    )


def assert_feasible(service):
    bound = service.resources.config.utilization_bound
    assert service.resources.ledger.violations(bound) == []


class TestParkAndReadmit:
    def test_infeasible_query_parks_then_readmits_on_recovery(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(bounded_config(net))
        queries = list(workload)
        parked = []
        for i, query in enumerate(queries):
            decision = service.submit(query, lifetime=100.0, time=float(i))
            if decision.status is AdmissionStatus.QUEUED:
                assert decision.reason.startswith("parked:")
                parked.append(query.name)
        assert parked, "capacities must force at least one park"
        manager = service.resources
        assert set(parked) <= set(manager.parked)
        for name in parked:
            assert not service.is_live(name)
        assert_feasible(service)

        # Free capacity and tick: the parked queries come back.
        live = [q.name for q in queries if service.is_live(q.name)]
        for name in live:
            service.retire(name)
        report = service.tick(20.0)
        assert set(parked) & set(report.deployed)
        assert manager.readmitted_total >= 1
        assert_feasible(service)

    def test_retire_drops_a_parked_query(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(bounded_config(net))
        parked = []
        for i, query in enumerate(workload):
            decision = service.submit(query, time=float(i))
            if decision.status is AdmissionStatus.QUEUED:
                parked.append(query.name)
        assert parked
        name = parked[0]
        assert service.retire(name) is False
        assert name not in service.resources.parked

    def test_unconstrained_infeasible_error_propagates(self):
        # A plain service (no resource layer) must never see the
        # exception type swallowed.
        service, workload, _ = build_service(None)
        for query in workload:
            decision = service.submit(query)
            assert decision.admitted


class TestShedding:
    def test_heavy_query_sheds_lighter_ones(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(None)  # probe names first
        queries = list(workload)
        heavy = queries[-1].name
        weights = {q.name: 0.5 for q in queries}
        weights[heavy] = 5.0
        service, workload, _ = build_service(
            bounded_config(net, query_weights=weights)
        )
        manager = service.resources
        for i, query in enumerate(list(workload)):
            service.submit(query, lifetime=100.0, time=float(i))
        # The heavy query arrives last into a saturated fleet: lighter
        # victims are shed (and parked) rather than the heavy one.
        assert service.is_live(heavy)
        assert manager.shed_total >= 1
        shed = [p for p in manager.parked.values() if p.shed]
        assert shed
        assert all(p.weight < manager.weight_of(heavy) for p in shed)
        assert_feasible(service)

    def test_shed_disabled_raises_from_the_planner(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(bounded_config(net, shed=False))
        queries = list(workload)
        parked = []
        for i, query in enumerate(queries):
            decision = service.submit(query, lifetime=100.0, time=float(i))
            if decision.status is AdmissionStatus.QUEUED:
                parked.append(query.name)
        assert parked
        assert service.resources.shed_total == 0
        # Directly planning the parked query must surface the error.
        victim = service.resources.parked[parked[0]].query
        with pytest.raises(InfeasiblePlacementError):
            service.resources.plan_feasible(service, victim)

    def test_shed_victims_keep_remaining_lifetime(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(None)
        heavy = list(workload)[-1].name
        weights = {q.name: 0.5 for q in workload}
        weights[heavy] = 5.0
        service, workload, _ = build_service(
            bounded_config(net, query_weights=weights)
        )
        for i, query in enumerate(list(workload)):
            service.submit(query, lifetime=50.0, time=float(i))
        shed = [p for p in service.resources.parked.values() if p.shed]
        assert shed
        for entry in shed:
            assert entry.lifetime is not None
            assert 0 < entry.lifetime <= 50.0


class TestInstruments:
    def test_gauges_and_counters_reflect_activity(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(bounded_config(net))
        for i, query in enumerate(workload):
            service.submit(query, lifetime=100.0, time=float(i))
        service.tick(10.0)
        reg = service.registry
        bound = service.resources.config.utilization_bound
        assert 0 < reg.get("resource_max_utilization").value <= bound + 1e-9
        assert reg.get("resource_parked_queries").value == float(
            len(service.resources.parked)
        )
        ledger = service.resources.ledger
        utils = ledger.utilizations()
        for node, util in utils.items():
            assert reg.get(f"resource_node_utilization_n{node}").value == (
                pytest.approx(util)
            )

    def test_shed_counter_tracks_the_manager(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(None)
        heavy = list(workload)[-1].name
        weights = {q.name: 0.5 for q in workload}
        weights[heavy] = 5.0
        service, workload, _ = build_service(
            bounded_config(net, query_weights=weights)
        )
        for i, query in enumerate(list(workload)):
            service.submit(query, lifetime=100.0, time=float(i))
        service.tick(10.0)
        reg = service.registry
        assert reg.get("resource_shed_total").value == float(
            service.resources.shed_total
        )
        assert service.resources.shed_total >= 1


def _install_deploy_spy(service):
    """After every install the whole fleet must still fit its bound."""
    engine = service.engine
    original = engine.deploy
    bound = service.resources.config.utilization_bound
    ledger = service.resources.ledger
    checked = []

    def spy(deployment, **kwargs):
        out = original(deployment, **kwargs)
        violations = ledger.violations(bound)
        checked.append(deployment.query.name)
        assert violations == [], (
            f"deploying {deployment.query.name!r} violated the bound: "
            f"{violations}"
        )
        return out

    engine.deploy = spy
    return checked


class TestFeasibilityProperty:
    @pytest.mark.parametrize("seed", [7, 21, 47])
    def test_no_accepted_placement_exceeds_the_bound(self, seed):
        net = repro.transit_stub_by_size(32, seed=seed)
        service, workload, _ = build_service(bounded_config(net), seed=seed)
        checked = _install_deploy_spy(service)
        service.replay(list(churn_trace(workload, lifetime=4.0, repeats=2)))
        assert checked, "churn must actually deploy queries"
        assert_feasible(service)

    @pytest.mark.parametrize("seed", [7, 47])
    def test_bound_holds_under_statistics_drift(self, seed):
        net = repro.transit_stub_by_size(32, seed=seed)
        service, workload, _ = build_service(bounded_config(net), seed=seed)
        checked = _install_deploy_spy(service)
        queries = list(workload)
        half = len(queries) // 2
        for i, query in enumerate(queries[:half]):
            service.submit(query, lifetime=30.0, time=float(i))
        # Rates drift upward mid-run; re-optimization and later
        # admissions must keep respecting the bound at the new rates.
        inflated = {
            name: repro.StreamSpec(name, spec.source, spec.rate * 1.8)
            for name, spec in service.rates.streams.items()
        }
        service.rates.update_streams(inflated)
        for i, query in enumerate(queries[half:]):
            service.submit(query, lifetime=30.0, time=float(half + i))
        for t in range(half + len(queries), half + len(queries) + 5):
            service.tick(float(t))
        assert checked
        assert_feasible(service)

    def test_tighter_bound_is_respected(self):
        net = repro.transit_stub_by_size(32, seed=47)
        service, workload, _ = build_service(
            bounded_config(net, utilization_bound=0.5)
        )
        checked = _install_deploy_spy(service)
        for i, query in enumerate(workload):
            service.submit(query, lifetime=100.0, time=float(i))
        assert checked
        assert service.resources.ledger.max_utilization() <= 0.5 + 1e-9
