"""Smoke tests for ``repro dash`` (the telemetry control tower)."""

import json

from repro.cli import build_parser, main


class TestDashCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["dash"])
        assert args.seed == 7
        assert args.ticks == 24
        assert args.shards == 2
        assert args.from_file is None
        assert not args.json and not args.once
        assert args.func.__name__ == "_cmd_dash"

    def test_once_json_emits_an_envelope(self, capsys):
        rc = main([
            "dash", "--once", "--json",
            "--ticks", "8", "--queries", "4", "--nodes", "24",
        ])
        assert rc == 0  # --once always exits 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "repro.telemetry"
        assert doc["series"]
        assert doc["alerts"]

    def test_terminal_render_and_firing_exit_code(self, capsys):
        rc = main(["dash", "--ticks", "12", "--queries", "6"])
        out = capsys.readouterr().out
        assert "repro dash -- fleet telemetry" in out
        assert "ALERTS" in out
        assert "flight recorder:" in out
        firing = "[firing" in out
        assert rc == (1 if firing else 0)

    def test_from_file_roundtrip_and_html(self, tmp_path, capsys):
        rc = main([
            "dash", "--once", "--json",
            "--ticks", "8", "--queries", "4", "--nodes", "24",
        ])
        assert rc == 0
        envelope = capsys.readouterr().out
        saved = tmp_path / "telemetry.json"
        saved.write_text(envelope)

        html = tmp_path / "dash.html"
        rc = main([
            "dash", "--from", str(saved), "--once", "--json",
            "--html", str(html),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # stdout: the "wrote" notice, then the identical envelope
        body = out[out.index("{"):]
        assert json.loads(body) == json.loads(envelope)
        report = html.read_text()
        assert report.startswith("<!DOCTYPE html>")
        assert "repro dash" in report
        assert "svg" in report

    def test_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "series.csv"
        rc = main([
            "dash", "--once",
            "--ticks", "8", "--queries", "4", "--nodes", "24",
            "--csv", str(csv),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"wrote {csv}" in out
        # writing an artifact suppresses the terminal dashboard
        assert "repro dash -- fleet telemetry" not in out
        lines = csv.read_text().splitlines()
        assert lines[0] == "series,time,value"
        assert len(lines) > 1
        # every row is series,float,float
        for row in lines[1:]:
            name, t, v = row.rsplit(",", 2)
            assert name
            float(t), float(v)

    def test_csv_matches_the_envelope(self, tmp_path, capsys):
        rc = main([
            "dash", "--once", "--json",
            "--ticks", "8", "--queries", "4", "--nodes", "24",
        ])
        assert rc == 0
        envelope = json.loads(capsys.readouterr().out)

        csv = tmp_path / "series.csv"
        rc = main([
            "dash", "--once",
            "--ticks", "8", "--queries", "4", "--nodes", "24",
            "--csv", str(csv),
        ])
        assert rc == 0
        capsys.readouterr()
        from repro.obs.timeseries import series_to_csv

        assert csv.read_text() == series_to_csv(envelope["series"])

    def test_from_file_rejects_wrong_kind(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "repro.network"}))
        rc = main(["dash", "--from", str(bad), "--once"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "telemetry envelope" in err

    def test_from_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["dash", "--from", str(tmp_path / "nope.json"), "--once"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_from_garbage_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json")
        rc = main(["dash", "--from", str(bad), "--once"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")
