"""Tests for shared utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import as_generator, double_factorial_odd


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_existing_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_none_gives_generator(self):
        rng = as_generator(None)
        assert isinstance(rng, np.random.Generator)

    def test_threading_a_generator_advances_state(self):
        rng = np.random.default_rng(1)
        first = as_generator(rng).random()
        second = as_generator(rng).random()
        assert first != second


class TestDoubleFactorial:
    @pytest.mark.parametrize(
        "k,expected", [(0, 1), (1, 1), (2, 1), (3, 3), (4, 15), (5, 105), (6, 945)]
    )
    def test_known_values(self, k, expected):
        assert double_factorial_odd(k) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            double_factorial_odd(-1)

    @given(k=st.integers(3, 12))
    def test_recurrence(self, k):
        assert double_factorial_odd(k) == double_factorial_odd(k - 1) * (2 * k - 3)
