"""CLI surface of the durability layer: recover --inspect, chaos
--crash-points, and the serve/fleet --state-dir plumbing."""

import json

from repro.cli import build_parser, main
from repro.durability.harness import run_steps, service_scenario
from repro.durability.journal import JOURNAL_FILE


def _crashed_state_dir(tmp_path):
    """A finished scripted run with a torn journal tail."""
    scenario = service_scenario()
    state_dir = tmp_path / "state"
    controller = scenario.factory(state_dir)
    run_steps(scenario, controller)
    journal = state_dir / JOURNAL_FILE
    raw = journal.read_bytes()
    journal.write_bytes(raw[: len(raw) - 9])
    return state_dir


class TestRecoverCli:
    def test_parser(self):
        args = build_parser().parse_args(["recover", "/tmp/x", "--inspect"])
        assert args.state_dir == "/tmp/x" and args.inspect
        assert args.func.__name__ == "_cmd_recover"

    def test_inspect_reports_the_torn_tail(self, tmp_path, capsys):
        state_dir = _crashed_state_dir(tmp_path)
        rc = main(["recover", str(state_dir), "--inspect"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "would drop: 1 line(s)" in out
        assert "snapshot" in out
        assert "recovery would" in out

    def test_inspect_json_is_machine_readable(self, tmp_path, capsys):
        state_dir = _crashed_state_dir(tmp_path)
        rc = main(["recover", str(state_dir), "--inspect", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["journal"]["dropped_lines"] == 1
        assert doc["journal"]["dropped_bytes"] > 0
        assert doc["recovery"]["scope"] == "service"

    def test_without_inspect_points_at_the_library(self, tmp_path, capsys):
        state_dir = _crashed_state_dir(tmp_path)
        rc = main(["recover", str(state_dir)])
        assert rc == 2
        assert "--inspect" in capsys.readouterr().err

    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        rc = main(["recover", str(tmp_path / "absent"), "--inspect"])
        assert rc == 2
        assert "not found" in capsys.readouterr().err


class TestServeStateDir:
    def test_serve_journals_when_asked(self, tmp_path, capsys):
        rc = main([
            "serve", "--nodes", "24", "--streams", "5", "--queries", "4",
            "--budget", "4", "--repeats", "1", "--lifetime", "3",
            "--max-cs", "4", "--seed", "9",
            "--state-dir", str(tmp_path / "state"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "durability:" in out
        assert (tmp_path / "state" / JOURNAL_FILE).exists()

    def test_serve_stays_in_memory_by_default(self, capsys):
        rc = main([
            "serve", "--nodes", "24", "--streams", "5", "--queries", "4",
            "--budget", "4", "--repeats", "1", "--lifetime", "3",
            "--max-cs", "4", "--seed", "9",
        ])
        assert rc == 0
        assert "durability:" not in capsys.readouterr().out


class TestFleetStateDir:
    def test_fleet_journals_when_asked(self, tmp_path, capsys):
        rc = main([
            "fleet", "--shards", "2", "--nodes", "24", "--streams", "5",
            "--queries", "4", "--budget", "4", "--repeats", "1",
            "--lifetime", "3", "--max-cs", "4", "--seed", "9",
            "--state-dir", str(tmp_path / "state"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "durability:" in out
        assert (tmp_path / "state" / JOURNAL_FILE).exists()


class TestChaosCrashPoints:
    def test_small_service_matrix_converges(self, tmp_path, capsys):
        rc = main([
            "chaos", "--crash-points", "3", "--crash-scope", "service",
            "--state-dir", str(tmp_path / "matrix"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crash-restart matrix: service scenario" in out
        assert "3/3 crash points converged" in out

    def test_json_report(self, tmp_path, capsys):
        rc = main([
            "chaos", "--crash-points", "2", "--crash-scope", "service",
            "--state-dir", str(tmp_path / "matrix"), "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["converged"] is True
        assert len(doc["points"]) == 2
        assert all(p["digest_match"] for p in doc["points"])
