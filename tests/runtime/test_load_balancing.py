"""Tests for node-load tracking and overload rebalancing."""

import numpy as np
import pytest

import repro


@pytest.fixture()
def loaded_system():
    net = repro.transit_stub_by_size(32, seed=141)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(2, 3)),
        seed=142,
    )
    rates = workload.rate_model()
    engine = repro.FlowEngine(net, rates)
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    for query in workload:
        engine.deploy(optimizer.plan(query, engine.state))
    return net, workload, rates, engine, optimizer


class TestNodeLoads:
    def test_loads_cover_all_operator_nodes(self, loaded_system):
        net, workload, rates, engine, _ = loaded_system
        loads = engine.node_loads()
        operator_nodes = {node for (_, node) in engine.state.operators()}
        # filtered-base-stream "operators" carry no join load; every join
        # node must be present though
        for deployment in engine.state.deployments:
            for join in deployment.plan.joins():
                assert deployment.placement[join] in loads

    def test_load_equals_sum_of_child_rates(self, loaded_system):
        net, workload, rates, engine, _ = loaded_system
        loads = engine.node_loads()
        manual: dict[int, float] = {}
        for deployment in engine.state.deployments:
            for join in deployment.plan.joins():
                node = deployment.placement[join]
                manual[node] = manual.get(node, 0.0) + sum(
                    rates.rate_for(deployment.query, c.sources)
                    for c in (join.left, join.right)
                )
        for node, load in manual.items():
            assert loads[node] == pytest.approx(load)

    def test_overloaded_nodes_threshold(self, loaded_system):
        net, workload, rates, engine, _ = loaded_system
        loads = engine.node_loads()
        cap = float(np.median(list(loads.values())))
        hot = engine.overloaded_nodes(cap)
        assert all(loads[n] > cap for n in hot)
        assert engine.overloaded_nodes(float("inf")) == []


class TestRebalance:
    def test_noop_when_capacity_ample(self, loaded_system):
        net, workload, rates, engine, optimizer = loaded_system
        mw = repro.AdaptiveMiddleware(engine, optimizer)
        report = mw.rebalance_load(capacity=float("inf"))
        assert not report.triggered
        assert report.migrations == []

    def test_evacuates_overloaded_nodes(self, loaded_system):
        net, workload, rates, engine, optimizer = loaded_system
        loads = engine.node_loads()
        hottest_load = max(loads.values())
        cap = hottest_load * 0.8  # make the hottest node overloaded
        mw = repro.AdaptiveMiddleware(engine, optimizer)
        report = mw.rebalance_load(capacity=cap)
        assert report.triggered
        new_loads = engine.node_loads()
        # the previously-overloaded nodes are now at or below their old
        # load, typically evacuated entirely
        still_hot = engine.overloaded_nodes(cap)
        assert len(still_hot) <= len([n for n, l in loads.items() if l > cap])
        assert max(new_loads.values()) <= hottest_load + 1e-6

    def test_queries_stay_deployed_after_rebalance(self, loaded_system):
        net, workload, rates, engine, optimizer = loaded_system
        cap = max(engine.node_loads().values()) * 0.5
        mw = repro.AdaptiveMiddleware(engine, optimizer)
        before = {d.query.name for d in engine.state.deployments}
        mw.rebalance_load(capacity=cap)
        after = {d.query.name for d in engine.state.deployments}
        assert before == after
        assert engine.total_cost() > 0


class TestForcedRefinement:
    def test_forbidden_nodes_vacated(self):
        from repro.core.refinement import refine_placement

        net = repro.transit_stub_by_size(16, seed=143)
        streams = {
            "A": repro.StreamSpec("A", 0, 50.0),
            "B": repro.StreamSpec("B", 5, 50.0),
        }
        rates = repro.RateModel(streams)
        q = repro.Query("q", ["A", "B"], sink=10,
                        predicates=[repro.JoinPredicate("A", "B", 0.01)])
        d = repro.OptimalPlanner(net, rates).plan(q)
        join_node = d.placement[d.plan]
        refined, moves = refine_placement(
            d, net.cost_matrix(), rates, forbidden={join_node}
        )
        assert moves >= 1
        assert refined.placement[refined.plan] != join_node

    def test_all_forbidden_rejected(self):
        from repro.core.refinement import refine_placement

        net = repro.transit_stub_by_size(16, seed=144)
        streams = {
            "A": repro.StreamSpec("A", 0, 50.0),
            "B": repro.StreamSpec("B", 5, 50.0),
        }
        rates = repro.RateModel(streams)
        q = repro.Query("q", ["A", "B"], sink=10,
                        predicates=[repro.JoinPredicate("A", "B", 0.01)])
        d = repro.OptimalPlanner(net, rates).plan(q)
        with pytest.raises(ValueError, match="forbidden"):
            refine_placement(
                d, net.cost_matrix(), rates, forbidden=set(net.nodes())
            )
