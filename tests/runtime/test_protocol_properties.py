"""Property-style tests of the deployment-protocol simulation."""

import numpy as np
import pytest

import repro
from repro.runtime.protocol import simulate_deployment


@pytest.fixture(scope="module")
def env():
    net = repro.transit_stub_by_size(32, seed=161)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=8, num_queries=10, joins_per_query=(1, 4)),
        seed=162,
    )
    rates = workload.rate_model()
    return net, hierarchy, workload, rates


class TestTimelineInvariants:
    def test_deterministic_replay(self, env):
        net, hierarchy, workload, rates = env
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        d = optimizer.plan(workload.queries[0])
        t1 = simulate_deployment(net, d)
        t2 = simulate_deployment(net, d)
        assert t1.duration == t2.duration
        assert t1.messages == t2.messages

    def test_duration_at_least_submit_chain_delay(self, env):
        net, hierarchy, workload, rates = env
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        for query in workload.queries[:5]:
            d = optimizer.plan(query)
            timeline = simulate_deployment(net, d, seconds_per_plan=0.0)
            chain = [query.sink] + list(d.stats["submit_chain"])
            chain_delay = sum(
                net.path_delay(a, b) for a, b in zip(chain[:-1], chain[1:]) if a != b
            )
            assert timeline.duration >= chain_delay - 1e-12

    def test_duration_at_least_total_compute_over_width(self, env):
        """Compute on the critical path lower-bounds the duration: at
        minimum the heaviest single task's compute must elapse."""
        net, hierarchy, workload, rates = env
        optimizer = repro.BottomUpOptimizer(hierarchy, rates)
        for query in workload.queries[:5]:
            d = optimizer.plan(query)
            spp = 1e-4
            timeline = simulate_deployment(net, d, seconds_per_plan=spp)
            heaviest = max(e["plans"] for e in d.stats["task_trace"])
            assert timeline.duration >= heaviest * spp - 1e-12

    def test_messages_scale_with_tasks(self, env):
        net, hierarchy, workload, rates = env
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        for query in workload.queries[:5]:
            d = optimizer.plan(query)
            timeline = simulate_deployment(net, d)
            # at least: one plan-request per non-root task, one done per
            # task, one command+ack per deploy target
            non_root = sum(1 for e in d.stats["task_trace"] if e["parent"] >= 0)
            lower = non_root + timeline.tasks + 2 * timeline.operators_deployed
            assert timeline.messages >= lower

    def test_start_time_offsets_timeline(self, env):
        net, hierarchy, workload, rates = env
        optimizer = repro.BottomUpOptimizer(hierarchy, rates)
        d = optimizer.plan(workload.queries[1])
        a = simulate_deployment(net, d, start_time=0.0)
        b = simulate_deployment(net, d, start_time=100.0)
        assert b.submit_time == 100.0
        assert b.duration == pytest.approx(a.duration)

    def test_bu_visit_entries_carry_no_compute(self, env):
        """Bottom-Up climb entries delegate compute to planning; their
        recorded plan counts reflect only that visit's own search."""
        net, hierarchy, workload, rates = env
        optimizer = repro.BottomUpOptimizer(hierarchy, rates)
        d = optimizer.plan(workload.queries[2])
        total = sum(e["plans"] for e in d.stats["task_trace"])
        assert total == d.stats["plans_examined"]
