"""Tests for node-failure handling and coordinator backups."""

import numpy as np
import pytest

import repro
from repro.runtime.failover import FailureReport, backup_coordinator, fail_node


@pytest.fixture()
def running_system():
    net = repro.transit_stub_by_size(32, seed=51)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=6, joins_per_query=(1, 3)),
        seed=52,
    )
    rates = workload.rate_model()
    engine = repro.FlowEngine(net, rates)
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    for query in workload:
        engine.deploy(optimizer.plan(query, engine.state))
    return net, hierarchy, workload, rates, engine, optimizer


class TestBackupCoordinator:
    def test_backup_is_a_member_but_not_coordinator(self, running_system):
        net, hierarchy, *_ = running_system
        costs = net.cost_matrix()
        for cluster in hierarchy.levels[0]:
            backup = backup_coordinator(cluster, costs)
            if cluster.size == 1:
                assert backup is None
            else:
                assert backup in cluster.members
                assert backup != cluster.coordinator

    def test_backup_takes_over_on_failure(self, running_system):
        net, hierarchy, *_ = running_system
        costs = net.cost_matrix()
        cluster = next(c for c in hierarchy.levels[0] if c.size >= 3)
        coordinator = cluster.coordinator
        expected_backup = backup_coordinator(cluster, costs)
        report = fail_node(hierarchy, coordinator)
        hierarchy.validate()
        assert 1 in report.coordinator_roles
        assert report.new_coordinators[1] == expected_backup


class TestFailNode:
    def test_non_coordinator_failure(self, running_system):
        net, hierarchy, *_ = running_system
        cluster = next(c for c in hierarchy.levels[0] if c.size >= 3)
        victim = next(m for m in cluster.members if m != cluster.coordinator)
        report = fail_node(hierarchy, victim)
        assert report.coordinator_roles == []
        assert victim not in hierarchy.root.subtree_nodes()
        hierarchy.validate()

    def test_multi_level_coordinator_failure(self, running_system):
        net, hierarchy, *_ = running_system
        # the root coordinator coordinates at several levels
        root_coord = hierarchy.root.coordinator
        report = fail_node(hierarchy, root_coord)
        assert len(report.coordinator_roles) >= 1
        assert root_coord not in hierarchy.root.subtree_nodes()
        hierarchy.validate()

    def test_identifies_affected_queries(self, running_system):
        net, hierarchy, workload, rates, engine, optimizer = running_system
        # pick a node hosting at least one operator
        victim = next(
            node for (_, node) in engine.state.operators()
        )
        report = fail_node(hierarchy, victim, engine=engine)
        assert report.affected_queries
        # without an optimizer nothing is redeployed
        assert report.redeployed == []

    def test_redeploys_affected_queries(self, running_system):
        net, hierarchy, workload, rates, engine, optimizer = running_system
        victim = next(node for (_, node) in engine.state.operators())
        protected = {rates.source(s) for s in rates.streams} | {
            q.sink for q in workload
        }
        if victim in protected:
            pytest.skip("victim hosts a source/sink in this seed")
        before = {d.query.name for d in engine.state.deployments}
        report = fail_node(hierarchy, victim, engine=engine, optimizer=optimizer)
        assert set(report.redeployed) | set(report.failed_queries) == set(
            report.affected_queries
        )
        after = {d.query.name for d in engine.state.deployments}
        assert after == (before - set(report.failed_queries))
        # no surviving deployment touches the failed node
        for deployment in engine.state.deployments:
            for subtree, node in deployment.placement.items():
                from repro.query.plan import Leaf

                if isinstance(subtree, Leaf) and subtree.is_base_stream:
                    continue
                assert node != victim

    def test_source_failure_marks_query_failed(self):
        net = repro.transit_stub_by_size(32, seed=61)
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        streams = {
            "A": repro.StreamSpec("A", 3, 50.0),
            "B": repro.StreamSpec("B", 7, 50.0),
        }
        rates = repro.RateModel(streams)
        query = repro.Query(
            "q", ["A", "B"], sink=12,
            predicates=[repro.JoinPredicate("A", "B", 0.01)],
        )
        engine = repro.FlowEngine(net, rates)
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        engine.deploy(optimizer.plan(query, engine.state))
        # force the failure to touch the query: fail its source node if it
        # hosts an operator, otherwise fail an operator node co-located
        # with nothing -- we directly fail the source which always carries
        # the base flow endpoint only; instead fail node 3 and expect the
        # query to be failed only if it had an operator there.
        report = fail_node(hierarchy, 3, engine=engine, optimizer=optimizer)
        if "q" in report.affected_queries:
            assert "q" in report.failed_queries
            assert engine.total_cost() == pytest.approx(0.0)
        else:
            assert engine.total_cost() > 0


class TestFailureReportShape:
    def test_defaults_are_empty(self):
        report = FailureReport(node=7)
        assert report.coordinator_roles == []
        assert report.new_coordinators == {}
        assert report.affected_queries == []
        assert report.redeployed == []
        assert report.failed_queries == []

    def test_singleton_cluster_has_no_backup(self, running_system):
        net, hierarchy, *_ = running_system
        singles = [c for c in hierarchy.levels[0] if c.size == 1]
        for cluster in singles:
            assert backup_coordinator(cluster, net.cost_matrix()) is None


class TestServiceRetireReadmit:
    """The lifecycle service's retire/re-admit path rides on fail_node."""

    @pytest.fixture()
    def service(self):
        net = repro.transit_stub_by_size(32, seed=51)
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=6, joins_per_query=(1, 3)),
            seed=52,
        )
        rates = workload.rate_model()
        ads = repro.AdvertisementIndex(hierarchy)
        optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
        service = repro.StreamQueryService(
            optimizer, net, rates, hierarchy=hierarchy, ads=ads,
            admission=repro.AdmissionController(budget=16),
        )
        for query in workload:
            assert service.submit(query).admitted
        return service

    def test_failure_retires_and_readmits(self, service):
        protected = {spec.source for spec in service.rates.streams.values()}
        protected |= {d.query.sink for d in service.engine.state.deployments}
        victim = next(
            (n for (_, n) in service.engine.state.operators() if n not in protected),
            None,
        )
        if victim is None:
            pytest.skip("every operator co-located with a source/sink in this seed")
        before = set(service.live_queries)
        report = service.handle_node_failure(victim)
        assert report.retired
        assert set(report.resubmitted) | set(report.lost) == set(report.retired)
        assert not report.lost  # victim excluded sources and sinks
        # re-admitted queries are live again; nothing else was touched
        assert set(service.live_queries) == before
        # no surviving operator sits on the failed node
        assert all(node != victim for (_, node) in service.engine.state.operators())
        # cached placements from before the failure are unusable now
        assert service.topology_epoch == 1

    def test_failure_of_sink_marks_query_lost(self, service):
        sinks = {d.query.name: d.query.sink for d in service.engine.state.deployments}
        # fail a node that is some query's sink *and* hosts one of its operators
        victim = None
        for deployment in service.engine.state.deployments:
            placements = set(deployment.operator_nodes.values())
            if deployment.query.sink in placements:
                victim = deployment.query.sink
                break
        if victim is None:
            pytest.skip("no query has an operator at its own sink in this seed")
        report = service.handle_node_failure(victim)
        lost_sinks = {name for name, sink in sinks.items() if sink == victim}
        assert lost_sinks & set(report.lost) == lost_sinks & set(report.retired)

    def test_readmitted_queries_keep_remaining_lifetime(self, service):
        # find a live query with an operator on a non-source/sink node,
        # give it a finite lifetime, then fail that node
        protected = {spec.source for spec in service.rates.streams.values()}
        protected |= {d.query.sink for d in service.engine.state.deployments}
        name = victim = None
        for deployment in service.engine.state.deployments:
            candidate = next(
                (n for n in deployment.operator_nodes.values() if n not in protected),
                None,
            )
            if candidate is not None:
                name, victim = deployment.query.name, candidate
                break
        if victim is None:
            pytest.skip("every operator co-located with a source/sink in this seed")
        service._expiry[name] = service.clock + 10.0
        report = service.handle_node_failure(victim)
        assert name in report.resubmitted
        assert name in service._expiry
        assert service._expiry[name] <= service.clock + 10.0
