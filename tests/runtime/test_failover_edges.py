"""Failover edge cases: singleton collapse, sink death, report round-trip."""

import pytest

import repro
from repro.hierarchy.maintenance import remove_node
from repro.runtime.failover import FailureReport, backup_coordinator, fail_node


@pytest.fixture()
def system():
    net = repro.transit_stub_by_size(32, seed=51)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=6, joins_per_query=(1, 3)),
        seed=52,
    )
    rates = workload.rate_model()
    engine = repro.FlowEngine(net, rates)
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    return net, hierarchy, workload, rates, engine, optimizer


class TestSingletonClusterCollapse:
    def test_failing_a_singletons_only_member_drops_the_cluster(self, system):
        net, hierarchy, *_ = system
        # shrink one leaf cluster down to a single member
        cluster = next(c for c in hierarchy.levels[0] if c.size >= 3)
        while cluster.size > 1:
            victim = next(m for m in cluster.members if m != cluster.coordinator)
            remove_node(hierarchy, victim)
            assert hierarchy.invariant_violations() == []
        survivor = cluster.members[0]
        assert backup_coordinator(cluster, net.cost_matrix()) is None

        clusters_before = len(hierarchy.levels[0])
        report = fail_node(hierarchy, survivor)
        assert report.node == survivor
        # no backup existed: nobody took over any of its roles
        assert report.new_coordinators == {}
        assert survivor not in hierarchy.root.subtree_nodes()
        assert len(hierarchy.levels[0]) == clusters_before - 1
        assert hierarchy.invariant_violations() == []


class TestSinkDeath:
    def test_sink_failure_marks_queries_failed_not_redeployed(self, system):
        net, hierarchy, workload, rates, engine, optimizer = system
        query = workload.queries[0]
        engine.deploy(optimizer.plan(query, engine.state))
        report = fail_node(hierarchy, query.sink, engine=engine, optimizer=optimizer)
        assert query.name in report.affected_queries
        assert query.name in report.failed_queries
        assert query.name not in report.redeployed
        assert hierarchy.invariant_violations() == []


class TestFailureReportRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        report = FailureReport(
            node=9,
            coordinator_roles=[1, 2],
            new_coordinators={1: 4, 2: 11},
            affected_queries=["q1", "q2"],
            redeployed=["q1"],
            failed_queries=["q2"],
        )
        text = repro.failure_report_to_json(report)
        back = repro.failure_report_from_json(text)
        assert back == report
        # levels come back as ints even though JSON keys are strings
        assert all(isinstance(k, int) for k in back.new_coordinators)

    def test_empty_report_round_trips(self):
        report = FailureReport(node=0)
        assert repro.failure_report_from_json(
            repro.failure_report_to_json(report)
        ) == report

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            repro.failure_report_from_json('{"kind": "repro.query", "node": 0}')
