"""Tests for the deployment-protocol simulation, flow engine and middleware."""

import numpy as np
import pytest

from repro.core import BottomUpOptimizer, OptimalPlanner, TopDownOptimizer
from repro.hierarchy import build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.runtime import (
    AdaptiveMiddleware,
    FlowEngine,
    MetricsLog,
    simulate_deployment,
)
from repro.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def env():
    net = transit_stub_by_size(32, seed=2)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=8, num_queries=12, joins_per_query=(1, 4)),
        seed=3,
    )
    rates = workload.rate_model()
    hierarchy = build_hierarchy(net, max_cs=4, seed=0)
    return net, workload, rates, hierarchy


class TestProtocolSimulation:
    def test_timeline_fields(self, env):
        net, w, rates, h = env
        d = TopDownOptimizer(h, rates).plan(w.queries[0])
        t = simulate_deployment(net, d)
        assert t.duration > 0
        assert t.completed_time >= t.submit_time
        assert t.messages > 0
        assert t.tasks == len(d.stats["task_trace"])
        assert t.operators_deployed >= 1

    def test_bottom_up_faster_on_average(self, env):
        """Figure 10's headline: Bottom-Up deploys faster than Top-Down."""
        net, w, rates, h = env
        td = TopDownOptimizer(h, rates)
        bu = BottomUpOptimizer(h, rates)
        td_time = np.mean([simulate_deployment(net, td.plan(q)).duration for q in w])
        bu_time = np.mean([simulate_deployment(net, bu.plan(q)).duration for q in w])
        assert bu_time < td_time

    def test_top_down_faster_with_larger_clusters(self, env):
        """Figure 10: lower max_cs means more levels and slower TD deploys."""
        net, w, rates, _ = env
        times = {}
        for cs in (4, 8):
            h = build_hierarchy(net, max_cs=cs, seed=0)
            td = TopDownOptimizer(h, rates)
            times[cs] = np.mean(
                [simulate_deployment(net, td.plan(q), seconds_per_plan=1e-6).duration for q in w]
            )
        assert times[8] < times[4]

    def test_compute_scales_with_seconds_per_plan(self, env):
        net, w, rates, h = env
        d = TopDownOptimizer(h, rates).plan(w.queries[1])
        slow = simulate_deployment(net, d, seconds_per_plan=1e-3)
        fast = simulate_deployment(net, d, seconds_per_plan=1e-7)
        assert slow.duration > fast.duration
        assert slow.compute_seconds > fast.compute_seconds

    def test_non_hierarchical_deployment_rejected(self, env):
        net, w, rates, h = env
        d = OptimalPlanner(net, rates).plan(w.queries[0])
        with pytest.raises(ValueError, match="task trace"):
            simulate_deployment(net, d)

    def test_single_source_query_deploys(self, env):
        net, w, rates, h = env
        from repro.query.query import Query

        q = Query("q_single", [list(rates.streams)[0]], sink=5)
        d = BottomUpOptimizer(h, rates).plan(q)
        # single-source plans have no joins; the protocol sim needs a
        # trace, which single-source plans skip -- expect the guard.
        if not d.stats.get("task_trace"):
            with pytest.raises(ValueError):
                simulate_deployment(net, d)


class TestFlowEngine:
    def test_deploy_and_cost(self, env):
        net, w, rates, h = env
        engine = FlowEngine(net, rates)
        opt = TopDownOptimizer(h, rates)
        added = engine.deploy(opt.plan(w.queries[0], engine.state))
        assert added > 0
        assert engine.total_cost() == pytest.approx(added)

    def test_undeploy_returns_to_zero(self, env):
        net, w, rates, h = env
        engine = FlowEngine(net, rates)
        opt = TopDownOptimizer(h, rates)
        engine.deploy(opt.plan(w.queries[0], engine.state))
        engine.undeploy(w.queries[0].name)
        assert engine.total_cost() == pytest.approx(0.0)

    def test_metrics_recorded(self, env):
        net, w, rates, h = env
        metrics = MetricsLog()
        engine = FlowEngine(net, rates, metrics=metrics)
        opt = BottomUpOptimizer(h, rates)
        engine.deploy(opt.plan(w.queries[0], engine.state), time=1.0)
        engine.deploy(opt.plan(w.queries[1], engine.state), time=2.0)
        series = metrics.series("total_cost")
        assert len(series) == 2
        assert series[1][1] >= series[0][1]
        assert metrics.last("operators") >= 1

    def test_link_loads_match_cost(self, env):
        """Sum of per-link rate x cost must equal the flow-cost total."""
        net, w, rates, h = env
        engine = FlowEngine(net, rates)
        opt = TopDownOptimizer(h, rates)
        for q in w.queries[:4]:
            engine.deploy(opt.plan(q, engine.state))
        link_total = sum(l.cost_per_second for l in engine.link_loads())
        assert link_total == pytest.approx(engine.total_cost(), rel=1e-6)

    def test_hottest_links_sorted(self, env):
        net, w, rates, h = env
        engine = FlowEngine(net, rates)
        opt = TopDownOptimizer(h, rates)
        for q in w.queries[:4]:
            engine.deploy(opt.plan(q, engine.state))
        hot = engine.hottest_links(3)
        assert len(hot) <= 3
        assert all(hot[i].rate >= hot[i + 1].rate for i in range(len(hot) - 1))

    def test_refresh_network_reprices(self, env):
        net, w, rates, h = env
        net = net.copy()
        engine = FlowEngine(net, rates)
        opt = TopDownOptimizer(build_hierarchy(net, max_cs=4, seed=0), rates)
        engine.deploy(opt.plan(w.queries[0], engine.state))
        before = engine.total_cost()
        net.scale_link_costs(2.0)
        after = engine.refresh_network()
        assert after >= before  # doubling all links cannot reduce cost


class TestAdaptiveMiddleware:
    def _loaded_engine(self, env):
        net, w, rates, h = env
        net = net.copy()
        hierarchy = build_hierarchy(net, max_cs=4, seed=0)
        engine = FlowEngine(net, rates)
        opt = TopDownOptimizer(hierarchy, rates)
        for q in w.queries[:5]:
            engine.deploy(opt.plan(q, engine.state))
        return net, engine, opt

    def test_idle_epoch_not_triggered(self, env):
        net, engine, opt = self._loaded_engine(env)
        mw = AdaptiveMiddleware(engine, opt)
        report = mw.run_epoch()
        assert not report.triggered
        assert report.cost_before == report.cost_after

    def test_congestion_triggers_and_improves(self, env):
        net, engine, opt = self._loaded_engine(env)
        mw = AdaptiveMiddleware(engine, opt, improvement_threshold=0.02)
        hot = engine.hottest_links(1)[0]
        net.set_link_cost(hot.u, hot.v, hot.cost * 50)
        report = mw.run_epoch(time=10.0)
        assert report.triggered
        assert report.cost_after <= report.cost_before
        assert report.considered >= 1
        if report.migrations:
            assert all(m.saving > 0 for m in report.migrations)

    def test_epoch_idempotent_after_adaptation(self, env):
        net, engine, opt = self._loaded_engine(env)
        mw = AdaptiveMiddleware(engine, opt, improvement_threshold=0.02)
        hot = engine.hottest_links(1)[0]
        net.set_link_cost(hot.u, hot.v, hot.cost * 50)
        mw.run_epoch()
        second = mw.run_epoch()
        assert not second.triggered

    def test_invalid_threshold(self, env):
        net, engine, opt = self._loaded_engine(env)
        with pytest.raises(ValueError):
            AdaptiveMiddleware(engine, opt, improvement_threshold=1.5)

    def test_cost_decrease_does_not_force_migration(self, env):
        """Cheaper network all around: repricing suffices, no churn needed."""
        net, engine, opt = self._loaded_engine(env)
        mw = AdaptiveMiddleware(engine, opt, improvement_threshold=0.05)
        before = engine.total_cost()
        net.scale_link_costs(0.5)
        report = mw.run_epoch()
        assert report.triggered
        assert report.cost_after <= before
