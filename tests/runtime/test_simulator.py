"""Tests for the discrete-event simulator core."""

import pytest

from repro.network.topology import line, ring
from repro.runtime.events import Event, EventQueue
from repro.runtime.simulator import SimNode, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while q:
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_ties_resolve_in_schedule_order(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append(1))
        q.push(1.0, lambda: order.append(2))
        q.pop().action()
        q.pop().action()
        assert order == [1, 2]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0


class _Recorder(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, src, message):
        assert self.sim is not None
        self.received.append((self.sim.now, src, message))


class _Echo(SimNode):
    def on_message(self, src, message):
        if message == "ping":
            self.send(src, "pong")


class TestSimulator:
    def test_message_delay_follows_network(self):
        net = line(3, delay=0.01)
        sim = Simulator(net)
        recv = _Recorder(2)
        sim.register(_Recorder(0))
        sim.register(_Recorder(1))
        sim.register(recv)
        sim.send(0, 2, "hello")
        sim.run()
        assert recv.received[0][0] == pytest.approx(0.02)
        assert sim.messages_delivered == 1

    def test_request_response_round_trip(self):
        net = line(2, delay=0.005)
        sim = Simulator(net)
        a = _Recorder(0)
        sim.register(a)
        sim.register(_Echo(1))
        sim.send(0, 1, "ping")
        sim.run()
        assert a.received[0][2] == "pong"
        assert a.received[0][0] == pytest.approx(0.01)

    def test_self_send_zero_delay(self):
        net = line(2)
        sim = Simulator(net)
        a = _Recorder(0)
        sim.register(a)
        sim.register(_Recorder(1))
        sim.send(0, 0, "self")
        sim.run()
        assert a.received[0][0] == 0.0

    def test_schedule_local_work(self):
        net = line(2)
        sim = Simulator(net)
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5]

    def test_run_until(self):
        net = line(2)
        sim = Simulator(net)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 3]

    def test_duplicate_registration_rejected(self):
        net = line(2)
        sim = Simulator(net)
        sim.register(_Recorder(0))
        with pytest.raises(ValueError):
            sim.register(_Recorder(0))

    def test_send_to_unregistered_node(self):
        net = line(2)
        sim = Simulator(net)
        sim.register(_Recorder(0))
        with pytest.raises(KeyError):
            sim.send(0, 1, "x")

    def test_runaway_guard(self):
        net = ring(3)
        sim = Simulator(net)

        class Bouncer(SimNode):
            def on_message(self, src, message):
                self.send(src, message)  # ping-pong forever

        sim.register(Bouncer(0))
        sim.register(Bouncer(1))
        sim.register(Bouncer(2))
        sim.send(0, 1, "go")
        with pytest.raises(RuntimeError, match="runaway"):
            sim.run(max_events=100)
