"""Tests for the tuple-level data plane: the rate model must hold for real."""

import math

import numpy as np
import pytest

import repro
from repro.core.cost import RateModel
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import Filter, StreamSpec
from repro.runtime.dataplane import run_dataplane


def _two_way_setup(sel=0.01, rate_a=60.0, rate_b=60.0, filters=()):
    net = repro.transit_stub_by_size(24, seed=81)
    streams = {
        "A": StreamSpec("A", 0, rate_a),
        "B": StreamSpec("B", 5, rate_b),
    }
    rates = RateModel(streams)
    q = Query(
        "q", ["A", "B"], sink=10,
        predicates=[JoinPredicate("A", "B", sel)],
        filters=list(filters),
    )
    a, b = Leaf.of("A"), Leaf.of("B")
    join = Join(a, b)
    d = repro.Deployment(query=q, plan=join, placement={a: 0, b: 5, join: 7})
    return net, rates, q, d


class TestTwoWayJoin:
    def test_source_rates_match_specs(self):
        net, rates, q, d = _two_way_setup()
        report = run_dataplane(net, d, rates, duration=30.0, seed=1)
        assert report.measured_rates["A"] == pytest.approx(60.0, rel=0.2)
        assert report.measured_rates["B"] == pytest.approx(60.0, rel=0.2)

    def test_join_rate_matches_model(self):
        """Measured join output ~= sigma * r_A * r_B (Poisson noise aside)."""
        net, rates, q, d = _two_way_setup(sel=0.01)
        report = run_dataplane(net, d, rates, duration=60.0, seed=2)
        predicted = report.predicted_rates["A*B"]
        measured = report.measured_rates["A*B"]
        assert predicted == pytest.approx(0.01 * 60 * 60)
        assert measured == pytest.approx(predicted, rel=0.30)

    def test_sink_receives_join_output(self):
        net, rates, q, d = _two_way_setup()
        report = run_dataplane(net, d, rates, duration=30.0, seed=3)
        join_emitted = next(
            c.emitted for c in report.components if c.label.startswith("join")
        )
        assert report.sink_tuples == join_emitted

    def test_latency_reflects_network_delays(self):
        net, rates, q, d = _two_way_setup()
        report = run_dataplane(net, d, rates, duration=30.0, seed=4)
        if report.sink_tuples:
            # at least the source->join->sink propagation, at most the
            # window plus a few propagation delays
            assert 0 < report.mean_latency < 1.5

    def test_filters_thin_the_stream(self):
        net, rates, q, d = _two_way_setup(filters=[Filter("A", "A.x > 1", 0.25)])
        filtered = run_dataplane(net, d, rates, duration=40.0, seed=5)
        assert filtered.measured_rates["A"] == pytest.approx(60 * 0.25, rel=0.35)
        assert filtered.predicted_rates["A"] == pytest.approx(60 * 0.25)
        source_a = next(c for c in filtered.components if c.label == "source A")
        assert source_a.emitted < source_a.received  # filter dropped tuples

    def test_rate_scale(self):
        net, rates, q, d = _two_way_setup()
        report = run_dataplane(net, d, rates, duration=30.0, seed=6, rate_scale=0.5)
        assert report.measured_rates["A"] == pytest.approx(30.0, rel=0.3)

    def test_reused_view_rejected(self):
        net, rates, q, _ = _two_way_setup()
        leaf = Leaf.of("A", "B")
        reuse_plan = repro.Deployment(query=q, plan=leaf, placement={leaf: 7})
        with pytest.raises(ValueError, match="reused views"):
            run_dataplane(net, reuse_plan, rates)


class TestThreeWayJoin:
    def test_multi_level_rates_match_model(self):
        """(A x B) x C measured rates track the analytic model level by
        level (the multiplicative selectivity composition)."""
        net = repro.transit_stub_by_size(24, seed=91)
        streams = {
            "A": StreamSpec("A", 0, 50.0),
            "B": StreamSpec("B", 3, 50.0),
            "C": StreamSpec("C", 6, 40.0),
        }
        rates = RateModel(streams)
        q = Query(
            "q3", ["A", "B", "C"], sink=12,
            predicates=[JoinPredicate("A", "B", 0.02), JoinPredicate("B", "C", 0.02)],
        )
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        inner = Join(a, b)
        outer = Join(inner, c)
        d = repro.Deployment(
            query=q, plan=outer,
            placement={a: 0, b: 3, c: 6, inner: 4, outer: 8},
        )
        report = run_dataplane(net, d, rates, duration=80.0, seed=7)
        for label in ("A*B", "A*B*C"):
            predicted = report.predicted_rates[label]
            measured = report.measured_rates[label]
            assert measured == pytest.approx(predicted, rel=0.5), label

    def test_optimal_planner_deployment_runs(self):
        """A planner-produced deployment executes on the data plane."""
        net = repro.transit_stub_by_size(24, seed=92)
        streams = {
            "A": StreamSpec("A", 1, 40.0),
            "B": StreamSpec("B", 9, 40.0),
            "C": StreamSpec("C", 17, 40.0),
        }
        rates = RateModel(streams)
        q = Query(
            "qp", ["A", "B", "C"], sink=20,
            predicates=[JoinPredicate("A", "B", 0.02), JoinPredicate("B", "C", 0.02)],
        )
        d = repro.OptimalPlanner(net, rates).plan(q)
        report = run_dataplane(net, d, rates, duration=40.0, seed=8)
        assert report.sink_tuples >= 0
        assert set(report.measured_rates) == set(report.predicted_rates)
