"""MetricsLog: per-metric indexing semantics."""

from repro.runtime.metrics import MetricsLog, Sample


class TestMetricsLog:
    def test_series_in_record_order(self):
        log = MetricsLog()
        log.record(0.0, "cost", 10.0)
        log.record(1.0, "ops", 2.0)
        log.record(2.0, "cost", 12.0)
        assert log.series("cost") == [(0.0, 10.0), (2.0, 12.0)]
        assert log.series("ops") == [(1.0, 2.0)]
        assert log.series("missing") == []

    def test_last(self):
        log = MetricsLog()
        assert log.last("cost") is None
        log.record(0.0, "cost", 10.0)
        log.record(5.0, "cost", 11.0)
        assert log.last("cost") == 11.0

    def test_len_counts_all_samples(self):
        log = MetricsLog()
        for i in range(5):
            log.record(float(i), "a", 1.0)
            log.record(float(i), "b", 2.0)
        assert len(log) == 10
        assert log.metrics() == {"a", "b"}

    def test_samples_reconstructs_records(self):
        log = MetricsLog()
        log.record(1.5, "cost", 3.0)
        assert log.samples("cost") == [Sample(time=1.5, metric="cost", value=3.0)]

    def test_series_is_a_copy(self):
        log = MetricsLog()
        log.record(0.0, "cost", 1.0)
        series = log.series("cost")
        series.append((9.9, 9.9))
        assert log.series("cost") == [(0.0, 1.0)]

    def test_indexed_lookup_is_cheap_under_many_metrics(self):
        # last() must not scan unrelated metrics' samples
        log = MetricsLog()
        for i in range(10_000):
            log.record(float(i), f"noise_{i % 50}", float(i))
        log.record(0.0, "needle", 42.0)
        import time

        start = time.perf_counter()
        for _ in range(1_000):
            assert log.last("needle") == 42.0
        assert time.perf_counter() - start < 0.5
