"""The deployment protocol under injected message faults."""

import pytest

from repro.core import TopDownOptimizer
from repro.hierarchy import build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy
from repro.resilience.faults import MessageStorm
from repro.runtime import simulate_deployment
from repro.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def env():
    net = transit_stub_by_size(32, seed=2)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=8, num_queries=6, joins_per_query=(1, 4)),
        seed=3,
    )
    rates = workload.rate_model()
    hierarchy = build_hierarchy(net, max_cs=4, seed=0)
    deployment = TopDownOptimizer(hierarchy, rates).plan(workload.queries[0])
    return net, deployment


def storm_injector(drop=0.4, duplicate=0.2, seed=5):
    return FaultInjector(
        FaultPlan(
            [MessageStorm(time=0.0, duration=10_000.0, drop=drop, duplicate=duplicate)],
            seed=seed,
        )
    )


class TestProtocolUnderStorm:
    def test_completes_despite_drops_with_retransmissions(self, env):
        net, deployment = env
        clean = simulate_deployment(net, deployment)
        faults = storm_injector()
        stormy = simulate_deployment(net, deployment, faults=faults)
        assert stormy.retransmissions > 0
        assert faults.messages_dropped > 0
        # identity-deduplicated completion: same goal state, just later
        assert stormy.tasks == clean.tasks
        assert stormy.operators_deployed == clean.operators_deployed
        assert stormy.duration >= clean.duration

    def test_duplicates_do_not_complete_early(self, env):
        net, deployment = env
        clean = simulate_deployment(net, deployment)
        faults = storm_injector(drop=0.0, duplicate=0.9)
        noisy = simulate_deployment(net, deployment, faults=faults)
        assert faults.messages_duplicated > 0
        # duplicated acks never shortcut the protocol goal
        assert noisy.duration >= clean.duration
        assert noisy.tasks == clean.tasks

    def test_same_seed_same_timeline(self, env):
        net, deployment = env
        mild = lambda: storm_injector(drop=0.2, duplicate=0.1, seed=7)  # noqa: E731
        a = simulate_deployment(net, deployment, faults=mild())
        b = simulate_deployment(net, deployment, faults=mild())
        assert a == b

    def test_hopeless_storm_raises_instead_of_hanging(self, env):
        net, deployment = env
        faults = storm_injector(drop=1.0, duplicate=0.0)
        retry = RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)
        with pytest.raises(RuntimeError, match="retransmission budget"):
            simulate_deployment(net, deployment, faults=faults, retry=retry)
