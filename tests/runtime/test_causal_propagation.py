"""Trace propagation under faults, and the byte-identical-off contract.

Two acceptance properties from the causal-tracing design:

* retried deliveries reuse the *original* trace id, are tagged
  ``retransmit=True`` and never start fresh roots -- storms and
  coordinator outages stay one causal tree per query;
* with tracing disabled (and the profiler uninstalled) the optimizer
  output and the simulator's message sequences are byte-identical to a
  build that never heard of either.
"""

import pytest

from repro.adaptive.diff import diff_deployments
from repro.adaptive.migrate import Migrator
from repro.core import TopDownOptimizer
from repro.core.cost import RateModel
from repro.hierarchy import build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.obs import CausalTracer
from repro.perf import profiled
from repro.query.deployment import Deployment
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.faults import CoordinatorOutage, MessageStorm
from repro.runtime import simulate_deployment
from repro.workload import WorkloadParams, generate_workload


@pytest.fixture(scope="module")
def env():
    net = transit_stub_by_size(32, seed=2)
    workload = generate_workload(
        net,
        WorkloadParams(num_streams=8, num_queries=6, joins_per_query=(2, 4)),
        seed=3,
    )
    rates = workload.rate_model()
    hierarchy = build_hierarchy(net, max_cs=4, seed=0)
    deployment = TopDownOptimizer(hierarchy, rates).plan(workload.queries[0])
    return net, rates, hierarchy, workload, deployment


def storm_injector(drop=0.4, duplicate=0.2, seed=5):
    return FaultInjector(
        FaultPlan(
            [MessageStorm(time=0.0, duration=10_000.0, drop=drop, duplicate=duplicate)],
            seed=seed,
        )
    )


class TestRetransmissionPropagation:
    def test_storm_retries_reuse_the_original_trace(self, env):
        net, rates, _, _, deployment = env
        tracer = CausalTracer()
        timeline = simulate_deployment(
            net, deployment, faults=storm_injector(), trace=tracer, rates=rates
        )
        assert timeline.retransmissions > 0
        # one query, one causal tree -- retries never fork fresh roots
        (trace_id,) = tracer.trace_ids()
        retransmits = [h for h in tracer.hops if h.retransmit]
        # at least every reliable-delivery re-send is a retransmit hop
        # (re-acks of duplicated commands add a few more re-sends the
        # protocol's own counter doesn't track)
        assert len(retransmits) >= timeline.retransmissions
        for hop in retransmits:
            assert hop.context.trace_id == trace_id
            # parented under the original send of the same message
            original = next(
                h for h in tracer.hops
                if h.context.span_id == hop.context.parent_id
            )
            assert not original.retransmit
            assert original.kind == hop.kind
            assert (original.src, original.dst) == (hop.src, hop.dst)
            assert original.retransmit_count > 0
        assert tracer.retransmissions(trace_id) == len(retransmits)

    def test_storm_drops_and_duplicates_are_accounted(self, env):
        net, rates, _, _, deployment = env
        tracer = CausalTracer()
        faults = storm_injector()
        simulate_deployment(
            net, deployment, faults=faults, trace=tracer, rates=rates
        )
        summary = tracer.summary()
        assert summary["dropped"] == faults.messages_dropped
        assert summary["duplicated_deliveries"] == faults.messages_duplicated
        assert {h.drop_reason for h in tracer.hops if h.dropped} == {"storm"}

    def test_traced_stormy_timeline_matches_untraced(self, env):
        net, rates, _, _, deployment = env
        untraced = simulate_deployment(
            net, deployment, faults=storm_injector()
        )
        traced = simulate_deployment(
            net, deployment, faults=storm_injector(),
            trace=CausalTracer(), rates=rates,
        )
        assert traced == untraced


def make_migration_world():
    net = transit_stub_by_size(16, seed=1)
    rates = RateModel(
        {
            "A": StreamSpec("A", 0, rate=100.0),
            "B": StreamSpec("B", 1, rate=40.0),
            "C": StreamSpec("C", 2, rate=10.0),
        }
    )
    query = Query(
        "q",
        ["A", "B", "C"],
        sink=3,
        predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.05)],
    )

    def left_deep(nodes):
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        ab = Join(a, b)
        abc = Join(ab, c)
        return Deployment(
            query=query, plan=abc,
            placement={a: 0, b: 1, c: 2, ab: nodes[0], abc: nodes[1]},
        )

    diff = diff_deployments(left_deep((1, 2)), left_deep((0, 3)), rates)
    return net, query, diff


class TestMigrationPropagation:
    def test_cutover_forms_one_migrate_tree(self):
        net, query, diff = make_migration_world()
        tracer = CausalTracer()
        timeline = Migrator(net, trace=tracer).simulate_cutover(
            diff, coordinator=query.sink
        )
        assert timeline.committed
        (trace_id,) = tracer.trace_ids()
        tree = tracer.span_tree(trace_id)
        assert tree.name == "migrate:q"
        assert tree.tags["operators"] == 2
        kinds = {h.kind for h in tracer.hops_of(trace_id)}
        assert {"PauseCommand", "StateChunk", "ResumeCommand"} <= kinds

    def test_outage_retries_stay_in_tree_with_drop_reason(self):
        net, query, diff = make_migration_world()
        faults = FaultInjector(
            FaultPlan([CoordinatorOutage(time=0.0, node=query.sink, duration=0.1)])
        )
        tracer = CausalTracer()
        timeline = Migrator(net, faults=faults, trace=tracer).simulate_cutover(
            diff, coordinator=query.sink
        )
        # the outage swallows early acks; retransmissions ride it out
        assert timeline.committed
        assert timeline.retransmissions > 0
        (trace_id,) = tracer.trace_ids()
        dropped = [h for h in tracer.hops if h.dropped]
        assert dropped
        assert {h.drop_reason for h in dropped} == {"outage"}
        assert all(h.context.trace_id == trace_id for h in tracer.hops)
        assert tracer.retransmissions(trace_id) >= timeline.retransmissions

    def test_traced_cutover_timeline_matches_untraced(self):
        net, query, diff = make_migration_world()
        untraced = Migrator(net).simulate_cutover(diff, coordinator=query.sink)
        traced = Migrator(net, trace=CausalTracer()).simulate_cutover(
            diff, coordinator=query.sink
        )
        assert traced == untraced


class TestByteIdenticalWhenDisabled:
    """Tracing off + profiler off must change nothing observable."""

    def capture_messages(self, net, deployment, trace=None):
        """Protocol replay with a recording middleware; returns the
        exact (src, dst, message) send sequence."""
        from repro.resilience.faults import NULL_FAULTS  # noqa: F401
        from repro.runtime.protocol import _Context, _ProtocolActor, QuerySubmit
        from repro.runtime.simulator import Simulator

        ctx = _Context(deployment, seconds_per_plan=2e-5)
        sim = Simulator(net)
        sent = []
        sim.add_send_middleware(
            lambda src, dst, message, now: sent.append((src, dst, message)) or None
        )
        for node in net.nodes():
            sim.register(_ProtocolActor(node, ctx))
        if trace is not None:
            sim.attach_trace(trace)
            trace.new_trace(f"deploy:{deployment.query.name}")
        sink = deployment.query.sink
        sim.schedule(
            0.0,
            lambda: sim.node(ctx.trace[0]["node"]).on_message(
                sink, QuerySubmit(deployment.query.name, sink)
            ),
        )
        sim.run()
        return sent

    def test_message_sequences_identical_with_and_without_tracer(self, env):
        net, _, _, _, deployment = env
        plain = self.capture_messages(net, deployment)
        traced = self.capture_messages(net, deployment, trace=CausalTracer())
        # trace stamps are excluded from message equality, so the traced
        # run's send sequence compares equal element by element
        assert traced == plain
        # and the stamps really are there on the traced run
        assert any(
            getattr(m, "trace", None) is not None for _, _, m in traced
        )

    def test_timelines_identical_with_and_without_tracer(self, env):
        net, rates, _, _, deployment = env
        assert simulate_deployment(net, deployment) == simulate_deployment(
            net, deployment, trace=CausalTracer(), rates=rates
        )

    def test_optimizer_output_identical_with_and_without_profiler(self, env):
        net, rates, hierarchy, workload, _ = env
        query = workload.queries[1]
        plain = TopDownOptimizer(hierarchy, rates).plan(query)
        with profiled() as prof:
            profiled_run = TopDownOptimizer(hierarchy, rates).plan(query)
        assert prof.ops  # the profiler really was counting
        assert profiled_run.plan == plain.plan
        assert profiled_run.placement == plain.placement
        assert profiled_run.stats == plain.stats

    def test_unstamped_messages_compare_equal_to_stamped(self):
        from repro.runtime.messages import DeployCommand

        ctx = CausalTracer()
        root = ctx.new_trace("deploy:q")
        plain = DeployCommand("q", "op1")
        import dataclasses

        stamped = dataclasses.replace(plain, trace=root)
        assert stamped == plain
        assert hash(stamped) == hash(plain) if plain.__hash__ else True
        assert "trace" not in repr(stamped)
