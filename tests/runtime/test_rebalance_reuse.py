"""Rebalancing with reuse dependencies: providers move, reusers follow."""

import numpy as np
import pytest

import repro
from repro.query.plan import Leaf


@pytest.fixture()
def provider_dependent_system():
    """q_provider deploys a tiny view; q_dep reuses it."""
    net = repro.transit_stub_by_size(24, seed=151)
    streams = {
        "A": repro.StreamSpec("A", 0, 100.0),
        "B": repro.StreamSpec("B", 3, 100.0),
    }
    rates = repro.RateModel(streams)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    pred = [repro.JoinPredicate("A", "B", 0.0005)]
    q_provider = repro.Query("q_provider", ["A", "B"], sink=10, predicates=pred)
    q_dep = repro.Query("q_dep", ["A", "B"], sink=12, predicates=pred)
    engine = repro.FlowEngine(net, rates)
    optimizer = repro.OptimalPlanner(net, rates, reuse=True)
    engine.deploy(optimizer.plan(q_provider, engine.state))
    dep_plan = optimizer.plan(q_dep, engine.state)
    engine.deploy(dep_plan)
    assert dep_plan.reused_leaves(), "setup must produce a reuse dependency"
    return net, rates, engine, optimizer, q_provider, q_dep


class TestRebalanceWithReuse:
    def test_provider_eviction_keeps_dependent_consistent(
        self, provider_dependent_system
    ):
        net, rates, engine, optimizer, q_provider, q_dep = provider_dependent_system
        # Make the provider's operator node overloaded.
        provider_dep = next(
            d for d in engine.state.deployments if d.query.name == "q_provider"
        )
        op_node = provider_dep.placement[provider_dep.plan]
        load = engine.node_loads()[op_node]
        mw = repro.AdaptiveMiddleware(engine, optimizer)
        report = mw.rebalance_load(capacity=load * 0.9)
        assert report.triggered
        # both queries still deployed, accounting consistent
        names = {d.query.name for d in engine.state.deployments}
        assert names == {"q_provider", "q_dep"}
        total = sum(engine.state.query_cost(n) for n in names)
        assert total == pytest.approx(engine.total_cost())
        # the provider's operator left the overloaded node
        provider_dep = next(
            d for d in engine.state.deployments if d.query.name == "q_provider"
        )
        assert provider_dep.placement[provider_dep.plan] != op_node

    def test_dependent_reuse_repinned_or_replanned(self, provider_dependent_system):
        net, rates, engine, optimizer, q_provider, q_dep = provider_dependent_system
        provider_dep = next(
            d for d in engine.state.deployments if d.query.name == "q_provider"
        )
        op_node = provider_dep.placement[provider_dep.plan]
        mw = repro.AdaptiveMiddleware(engine, optimizer)
        mw.rebalance_load(capacity=engine.node_loads()[op_node] * 0.9)
        dep = next(d for d in engine.state.deployments if d.query.name == "q_dep")
        for leaf in dep.plan.leaves():
            if isinstance(leaf, Leaf) and not leaf.is_base_stream:
                node = dep.placement[leaf]
                # the reused view must exist where the leaf points
                assert engine.state.find_reusable(dep.query, leaf.view, node)
