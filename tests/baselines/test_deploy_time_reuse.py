"""Tests for deploy-time reuse variant generation (phased baselines)."""

import pytest

from repro.baselines.plan_then_deploy import deploy_time_reuse_variants
from repro.query.plan import Join, Leaf


def _chain_tree():
    a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
    return Join(Join(a, b), c)


class TestDeployTimeReuseVariants:
    def test_no_reusables_identity(self):
        tree = _chain_tree()
        variants = deploy_time_reuse_variants(tree, {})
        assert variants == [tree]

    def test_original_tree_first(self):
        tree = _chain_tree()
        variants = deploy_time_reuse_variants(tree, {frozenset({"A", "B"}): [5]})
        assert variants[0] == tree

    def test_matching_subtree_collapsed(self):
        tree = _chain_tree()
        variants = deploy_time_reuse_variants(tree, {frozenset({"A", "B"}): [5]})
        assert len(variants) == 2
        collapsed = variants[1]
        leaves = collapsed.leaves()
        assert any(leaf.view == frozenset({"A", "B"}) for leaf in leaves)

    def test_full_tree_collapse(self):
        tree = _chain_tree()
        full = frozenset({"A", "B", "C"})
        variants = deploy_time_reuse_variants(tree, {full: [2]})
        assert any(isinstance(v, Leaf) and v.view == full for v in variants)

    def test_nonmatching_view_ignored(self):
        """Views not aligned with the fixed order's subtrees can't be used
        -- the paper's 'pre-defined join order may prevent reuse'."""
        tree = _chain_tree()  # subtrees: AB, ABC
        variants = deploy_time_reuse_variants(tree, {frozenset({"B", "C"}): [5]})
        assert variants == [tree]

    def test_combination_of_collapses(self):
        a, b, c, d = (Leaf.of(x) for x in "ABCD")
        tree = Join(Join(a, b), Join(c, d))
        reusable = {frozenset({"A", "B"}): [1], frozenset({"C", "D"}): [2]}
        variants = deploy_time_reuse_variants(tree, reusable)
        # identity, collapse-left, collapse-right, collapse-both
        assert len(variants) == 4
        sources = {frozenset(l.view) for v in variants for l in v.leaves()}
        assert frozenset({"A", "B"}) in sources
        assert frozenset({"C", "D"}) in sources

    def test_cap_respected(self):
        a, b, c, d = (Leaf.of(x) for x in "ABCD")
        tree = Join(Join(a, b), Join(c, d))
        reusable = {frozenset({"A", "B"}): [1], frozenset({"C", "D"}): [2],
                    frozenset({"A", "B", "C", "D"}): [3]}
        variants = deploy_time_reuse_variants(tree, reusable, cap=2)
        assert len(variants) <= 2
