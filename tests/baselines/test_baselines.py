"""Tests for the plan-then-deploy family of baselines."""

import numpy as np
import pytest

from repro.baselines.in_network import InNetworkPlanner
from repro.baselines.plan_then_deploy import PlanThenDeploy, best_static_tree, reusable_views
from repro.baselines.random_placement import RandomPlacement
from repro.baselines.relaxation import RelaxationPlanner
from repro.core.cost import RateModel, deployment_cost
from repro.core.exhaustive import OptimalPlanner
from repro.core.top_down import TopDownOptimizer
from repro.hierarchy import build_hierarchy
from repro.network.topology import line, random_geometric, transit_stub_by_size
from repro.query.deployment import DeploymentState
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec

from tests.conftest import make_catalog, make_query


def _env(seed=0, nodes=20, streams=6):
    net = random_geometric(nodes, seed=seed % 5)
    names, specs, sel = make_catalog(net, streams, seed)
    return net, names, sel, RateModel(specs)


class TestBestStaticTree:
    def test_prefers_selective_join_first(self):
        streams = {
            "A": StreamSpec("A", 0, 100.0),
            "B": StreamSpec("B", 1, 100.0),
            "C": StreamSpec("C", 2, 100.0),
        }
        rates = RateModel(streams)
        q = Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[
                JoinPredicate("A", "B", 0.0001),  # very selective
                JoinPredicate("B", "C", 0.5),     # barely selective
            ],
        )
        tree, _ = best_static_tree(q, rates)
        first = tree.joins()[0]
        assert first.sources == frozenset({"A", "B"})

    def test_single_source(self):
        _, _, _, rates = _env()
        q = Query("q", ["S0"], sink=0)
        tree, n = best_static_tree(q, rates)
        assert isinstance(tree, Leaf)
        assert n == 1

    def test_reuse_view_can_win(self):
        streams = {
            "A": StreamSpec("A", 0, 100.0),
            "B": StreamSpec("B", 1, 100.0),
        }
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.001)])
        tree, _ = best_static_tree(q, rates, {frozenset({"A", "B"}): [3]})
        assert isinstance(tree, Leaf)  # reusing the whole view has no volume

    def test_reusable_views_signature_filtering(self, small_net):
        streams = {"A": StreamSpec("A", 0, 10.0), "B": StreamSpec("B", 1, 10.0)}
        rates = RateModel(streams)
        state = DeploymentState(small_net.cost_matrix(), rates.rate_for, rates.source)
        q1 = Query("q1", ["A", "B"], sink=2, predicates=[JoinPredicate("A", "B", 0.1)])
        a, b = Leaf.of("A"), Leaf.of("B")
        j = Join(a, b)
        from repro.query.deployment import Deployment

        state.apply(Deployment(query=q1, plan=j, placement={a: 0, b: 1, j: 4}))
        same = Query("q2", ["A", "B"], sink=3, predicates=[JoinPredicate("A", "B", 0.1)])
        different = Query("q3", ["A", "B"], sink=3, predicates=[JoinPredicate("A", "B", 0.9)])
        assert reusable_views(same, state) == {frozenset({"A", "B"}): [4]}
        assert reusable_views(different, state) == {}


class TestPlanThenDeploy:
    def test_never_beats_joint_optimal(self):
        net, names, sel, rates = _env(1)
        costs = net.cost_matrix()
        rng = np.random.default_rng(1)
        for i in range(5):
            q = make_query(f"q{i}", names, sel, net, rng)
            ptd = PlanThenDeploy(net, rates, reuse=False).plan(q)
            opt = OptimalPlanner(net, rates, reuse=False).plan(q)
            assert deployment_cost(ptd, costs, rates) >= deployment_cost(opt, costs, rates) - 1e-9

    def test_placement_is_optimal_for_its_tree(self):
        """The deploy phase must match brute-force placement of the tree."""
        from repro.core.placement import brute_force_tree_placement

        net, names, sel, rates = _env(2, nodes=6, streams=4)
        rng = np.random.default_rng(2)
        q = make_query("q", names, sel, net, rng, k=3)
        d = PlanThenDeploy(net, rates).plan(q)
        flow = rates.flow_rates(q, d.plan)
        leaf_positions = {l: [rates.source(l.stream)] for l in d.plan.leaves()}
        bf = brute_force_tree_placement(
            d.plan, net.nodes(), net.cost_matrix(), leaf_positions, flow, sink=q.sink
        )
        assert deployment_cost(d, net.cost_matrix(), rates) == pytest.approx(
            bf.cost
        )

    def test_single_source(self):
        net, names, sel, rates = _env(3)
        q = Query("q", [names[0]], sink=1)
        d = PlanThenDeploy(net, rates).plan(q)
        assert isinstance(d.plan, Leaf)


class TestRelaxation:
    def test_valid_deployment(self):
        net, names, sel, rates = _env(4)
        rng = np.random.default_rng(4)
        q = make_query("q", names, sel, net, rng)
        d = RelaxationPlanner(net, rates).plan(q)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        assert state.apply(d) > 0
        assert d.stats["iterations"] == 40

    def test_worse_or_equal_to_optimal_placement_of_same_tree(self):
        net, names, sel, rates = _env(5)
        costs = net.cost_matrix()
        rng = np.random.default_rng(5)
        total_rel = total_ptd = 0.0
        for i in range(6):
            q = make_query(f"q{i}", names, sel, net, rng)
            rel = RelaxationPlanner(net, rates, reuse=False).plan(q)
            ptd = PlanThenDeploy(net, rates, reuse=False).plan(q)
            total_rel += deployment_cost(rel, costs, rates)
            total_ptd += deployment_cost(ptd, costs, rates)
        assert total_rel >= total_ptd - 1e-9

    def test_relaxation_beats_random_on_average(self):
        net, names, sel, rates = _env(6)
        costs = net.cost_matrix()
        rng = np.random.default_rng(6)
        rel_total = rnd_total = 0.0
        rnd = RandomPlacement(net, rates, seed=1)
        for i in range(8):
            q = make_query(f"q{i}", names, sel, net, rng)
            rel_total += deployment_cost(RelaxationPlanner(net, rates).plan(q), costs, rates)
            rnd_total += deployment_cost(rnd.plan(q), costs, rates)
        assert rel_total < rnd_total

    def test_invalid_iterations(self):
        net, _, _, rates = _env(7)
        with pytest.raises(ValueError):
            RelaxationPlanner(net, rates, iterations=0)

    def test_pins_reused_leaf_near_sink(self):
        net = line(8)
        streams = {"A": StreamSpec("A", 0, 100.0), "B": StreamSpec("B", 1, 100.0)}
        rates = RateModel(streams)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        pred = [JoinPredicate("A", "B", 0.0001)]
        q1 = Query("q1", ["A", "B"], sink=7, predicates=pred)
        a, b = Leaf.of("A"), Leaf.of("B")
        j = Join(a, b)
        from repro.query.deployment import Deployment

        state.apply(Deployment(query=q1, plan=j, placement={a: 0, b: 1, j: 6}))
        q2 = Query("q2", ["A", "B"], sink=7, predicates=pred)
        d2 = RelaxationPlanner(net, rates, reuse=True).plan(q2, state)
        assert isinstance(d2.plan, Leaf)
        assert d2.placement[d2.plan] == 6


class TestInNetwork:
    def test_valid_deployment(self):
        net, names, sel, rates = _env(8)
        rng = np.random.default_rng(8)
        q = make_query("q", names, sel, net, rng)
        planner = InNetworkPlanner(net, rates, zones=5, seed=0)
        d = planner.plan(q)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        assert state.apply(d) > 0
        assert d.stats["zones"] == 5

    def test_zones_partition_network(self):
        net, _, _, rates = _env(9)
        planner = InNetworkPlanner(net, rates, zones=4, seed=0)
        flat = sorted(n for zone in planner.zone_members for n in zone)
        assert flat == net.nodes()
        assert all(rep in zone for rep, zone in zip(planner.zone_reps, planner.zone_members))

    def test_more_zones_cannot_hurt_much(self):
        """Finer zoning explores more nodes; costs shouldn't explode."""
        net, names, sel, rates = _env(10)
        costs = net.cost_matrix()
        rng = np.random.default_rng(10)
        queries = [make_query(f"q{i}", names, sel, net, rng) for i in range(6)]
        totals = {}
        for zones in (2, 8):
            planner = InNetworkPlanner(net, rates, zones=zones, seed=0)
            totals[zones] = sum(
                deployment_cost(planner.plan(q), costs, rates) for q in queries
            )
        assert totals[8] <= totals[2] * 1.5

    def test_invalid_zones(self):
        net, _, _, rates = _env(11)
        with pytest.raises(ValueError):
            InNetworkPlanner(net, rates, zones=0)


class TestPaperComparisonShape:
    """Aggregate ordering from Figures 2 and 8: joint optimizers beat the
    phased baselines, and optimal placement beats heuristic placement."""

    def test_ordering_on_transit_stub(self):
        net = transit_stub_by_size(64, seed=1)
        names, specs, sel = make_catalog(net, 8, 3)
        rates = RateModel(specs)
        h = build_hierarchy(net, max_cs=16, seed=0)
        costs = net.cost_matrix()
        rng = np.random.default_rng(13)
        queries = [make_query(f"q{i}", names, sel, net, rng) for i in range(10)]
        totals = {}
        planners = {
            "optimal": OptimalPlanner(net, rates, reuse=False),
            "top-down": TopDownOptimizer(h, rates, reuse=False),
            "plan-then-deploy": PlanThenDeploy(net, rates, reuse=False),
            "relaxation": RelaxationPlanner(net, rates, reuse=False),
        }
        for label, planner in planners.items():
            totals[label] = sum(
                deployment_cost(planner.plan(q), costs, rates) for q in queries
            )
        assert totals["optimal"] <= totals["top-down"] + 1e-9
        assert totals["optimal"] <= totals["plan-then-deploy"] + 1e-9
        assert totals["plan-then-deploy"] <= totals["relaxation"] + 1e-9
        # the headline: joint top-down beats the relaxation baseline
        assert totals["top-down"] < totals["relaxation"]
