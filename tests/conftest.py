"""Shared fixtures: small deterministic networks, streams and queries."""

import numpy as np
import pytest

from repro.core.cost import RateModel
from repro.hierarchy import build_hierarchy
from repro.network.topology import random_geometric, transit_stub_by_size
from repro.query.deployment import DeploymentState
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec


@pytest.fixture(scope="session")
def small_net():
    """8-node random geometric network used by exhaustive cross-checks."""
    return random_geometric(8, seed=5)


@pytest.fixture(scope="session")
def net64():
    """64-node transit-stub network (paper's Figure 2 scale)."""
    return transit_stub_by_size(64, seed=1)


@pytest.fixture(scope="session")
def hier64(net64):
    return build_hierarchy(net64, max_cs=8, seed=0)


@pytest.fixture()
def abc_streams(small_net):
    """Three streams on the small network."""
    return {
        "A": StreamSpec("A", 0, 50.0),
        "B": StreamSpec("B", 3, 80.0),
        "C": StreamSpec("C", 6, 30.0),
    }


@pytest.fixture()
def abc_rates(abc_streams):
    return RateModel(abc_streams)


@pytest.fixture()
def abc_query():
    """3-way chain query A-B-C sinking at node 7."""
    return Query(
        "q_abc",
        ["A", "B", "C"],
        sink=7,
        predicates=[
            JoinPredicate("A", "B", 0.01),
            JoinPredicate("B", "C", 0.02),
        ],
    )


@pytest.fixture()
def abc_state(small_net, abc_rates):
    return DeploymentState(small_net.cost_matrix(), abc_rates.rate_for, abc_rates.source)


def make_catalog(net, num_streams, seed):
    """Random stream catalog over a network (shared helper)."""
    rng = np.random.default_rng(seed)
    names = [f"S{i}" for i in range(num_streams)]
    streams = {
        n: StreamSpec(n, int(rng.integers(0, net.num_nodes)), float(rng.uniform(50, 150)))
        for n in names
    }
    sel = {}
    for i in range(num_streams):
        for j in range(i + 1, num_streams):
            sel[frozenset((names[i], names[j]))] = float(rng.uniform(0.001, 0.02))
    return names, streams, sel


def make_query(name, names, sel, net, rng, k=None):
    """Random chain query over a shared global selectivity table."""
    k = k or int(rng.integers(3, 6))
    srcs = sorted(rng.choice(names, size=k, replace=False))
    preds = [
        JoinPredicate(srcs[i], srcs[i + 1], sel[frozenset((srcs[i], srcs[i + 1]))])
        for i in range(k - 1)
    ]
    return Query(name, srcs, sink=int(rng.integers(0, net.num_nodes)), predicates=preds)
