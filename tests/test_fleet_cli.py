"""End-to-end smoke tests for the ``fleet`` subcommand."""

import json

from repro.cli import build_parser, main

SMALL = [
    "--nodes", "24", "--streams", "5", "--queries", "8",
    "--budget", "4", "--repeats", "2", "--lifetime", "3",
    "--max-cs", "4", "--seed", "9",
]


class TestFleetCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.shards == 4
        assert args.policy == "subtree"
        assert args.budget == 8
        assert args.tenant is None
        assert not args.no_federation
        assert args.func.__name__ == "_cmd_fleet"

    def test_fleet_generated_workload(self, capsys):
        rc = main(["fleet", "--shards", "2", *SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet control plane: 2 shards (subtree routing)" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert "federation:" in out
        assert "deployments/s" in out
        assert "router invariants: ok" in out

    def test_hash_policy(self, capsys):
        rc = main(["fleet", "--shards", "3", "--policy", "hash", *SMALL])
        assert rc == 0
        assert "(hash routing)" in capsys.readouterr().out

    def test_no_federation_flag(self, capsys):
        rc = main(["fleet", "--shards", "2", "--no-federation", *SMALL])
        assert rc == 0
        assert "federation:" not in capsys.readouterr().out

    def test_tenants_mode(self, capsys):
        rc = main([
            "fleet", "--shards", "2",
            "--tenant", "gold:3", "--tenant", "bronze:1:6",
            *SMALL,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tenant gold: weight 3" in out
        assert "tenant bronze: weight 1" in out

    def test_json_summary(self, capsys):
        rc = main(["fleet", "--shards", "2", "--json", *SMALL])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_shards"] == 2
        assert payload["policy"] == "subtree"
        assert payload["invariant_violations"] == []
        assert payload["rejected"] == 0
        assert payload["deployed_total"] == payload["retired_total"]
        assert len(payload["shards"]) == 2  # per-shard breakdown
        assert "federation" in payload

    def test_bad_tenant_spec_exits_2(self, capsys):
        rc = main(["fleet", "--tenant", ":3", *SMALL])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
