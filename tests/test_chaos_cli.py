"""End-to-end smoke tests for the ``chaos`` subcommand."""

import json

import repro
from repro.cli import build_parser, main


class TestChaosCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 0
        assert args.duration == 40.0
        assert args.func.__name__ == "_cmd_chaos"

    def test_chaos_drill_validates_clean(self, capsys):
        rc = main([
            "chaos", "--seed", "7", "--duration", "30",
            "--nodes", "24", "--streams", "5", "--queries", "6",
            "--max-cs", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos drill" in out
        assert "fault plan:" in out
        assert "faults applied:" in out
        assert "validation: hierarchy invariants hold" in out

    def test_emit_plan_prints_a_loadable_fault_plan(self, capsys):
        rc = main([
            "chaos", "--seed", "7", "--duration", "30",
            "--nodes", "24", "--streams", "5", "--queries", "6",
            "--max-cs", "4", "--emit-plan",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["kind"] == "repro.fault_plan"
        plan = repro.fault_plan_from_json(out)
        assert len(plan) > 0

    def test_plan_file_round_trip(self, capsys, tmp_path):
        common = [
            "--duration", "25", "--nodes", "24", "--streams", "5",
            "--queries", "6", "--max-cs", "4",
        ]
        rc = main(["chaos", "--seed", "3", *common, "--emit-plan"])
        assert rc == 0
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        rc = main(["chaos", "--seed", "3", *common, "--plan", str(plan_file)])
        assert rc == 0
        assert "validation:" in capsys.readouterr().out

    def test_missing_plan_file_is_a_usage_error(self, capsys, tmp_path):
        rc = main(["chaos", "--plan", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_plan_file_is_a_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "repro.network"}')
        rc = main(["chaos", "--plan", str(bad)])
        assert rc == 2
        assert "not a fault plan" in capsys.readouterr().err
