"""Property test: hierarchy invariants survive arbitrary churn.

A seeded random sequence of add/remove/fail operations hammers a built
hierarchy; after every single step :meth:`Hierarchy.invariant_violations`
must report nothing.  This is the structural safety net under the chaos
harness -- any maintenance bug shows up as a readable violation string
with the exact operation sequence that produced it (re-runnable from the
seed).
"""

import numpy as np
import pytest

import repro
from repro.errors import HierarchyError
from repro.hierarchy.maintenance import add_node, remove_node
from repro.runtime.failover import fail_node


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_churn_preserves_invariants(seed):
    net = repro.transit_stub_by_size(32, seed=3)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    assert hierarchy.invariant_violations(full_coverage=True) == []
    rng = np.random.default_rng(seed)
    removed: list[int] = []
    history: list[str] = []

    for step in range(60):
        present = sorted(hierarchy.root.subtree_nodes())
        ops = []
        if removed:
            ops.append("add")
        if len(present) > 2:
            ops.extend(["remove", "fail"])
        op = str(rng.choice(ops))
        if op == "add":
            node = removed.pop(int(rng.integers(0, len(removed))))
            add_node(hierarchy, node, seed=node)
        elif op == "remove":
            node = int(rng.choice(present))
            remove_node(hierarchy, node)
            removed.append(node)
        else:
            node = int(rng.choice(present))
            fail_node(hierarchy, node)
            removed.append(node)
        history.append(f"{step}: {op}({node})")
        violations = hierarchy.invariant_violations()
        assert violations == [], (
            f"invariants broke after {history[-1]} (seed {seed}):\n"
            + "\n".join(violations)
            + "\nhistory:\n" + "\n".join(history)
        )

    # drain back to full membership; coverage must be restorable
    while removed:
        add_node(hierarchy, removed.pop(), seed=1)
        assert hierarchy.invariant_violations() == []
    assert hierarchy.invariant_violations(full_coverage=True) == []


def test_last_node_cannot_be_removed():
    net = repro.transit_stub_by_size(16, seed=3)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    nodes = sorted(hierarchy.root.subtree_nodes())
    for node in nodes[:-1]:
        remove_node(hierarchy, node)
        assert hierarchy.invariant_violations() == []
    with pytest.raises(HierarchyError):
        remove_node(hierarchy, nodes[-1])
    # the hierarchy is still intact with its single survivor
    assert hierarchy.root.subtree_nodes() == {nodes[-1]}
    assert hierarchy.invariant_violations() == []


def test_violation_strings_are_actionable():
    net = repro.transit_stub_by_size(16, seed=3)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    # vandalize: duplicate a member into another leaf cluster
    a, b = hierarchy.levels[0][0], hierarchy.levels[0][1]
    stolen = a.members[0]
    b.members.append(stolen)
    violations = hierarchy.invariant_violations()
    assert violations
    assert any(str(stolen) in v for v in violations)
    with pytest.raises(AssertionError):
        hierarchy.validate()
