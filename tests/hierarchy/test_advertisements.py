"""Unit tests for the stream advertisement index."""

import pytest

import repro
from repro.hierarchy import AdvertisementIndex, build_hierarchy
from repro.network.topology import transit_stub_by_size
from repro.query.query import JoinPredicate, Query


@pytest.fixture()
def setup():
    net = transit_stub_by_size(32, seed=181)
    hierarchy = build_hierarchy(net, max_cs=4, seed=0)
    ads = AdvertisementIndex(hierarchy)
    return net, hierarchy, ads


def _sig(sink=0, sel=0.01):
    q = Query("q", ["A", "B"], sink=sink, predicates=[JoinPredicate("A", "B", sel)])
    return q.view_signature()


class TestBaseAdvertisements:
    def test_advertise_and_lookup(self, setup):
        net, hierarchy, ads = setup
        ads.advertise_base("A", 5)
        assert ads.base_node("A") == 5
        assert ads.base_streams() == {"A": 5}

    def test_message_cost_one_per_level(self, setup):
        net, hierarchy, ads = setup
        before = ads.messages_sent
        ads.advertise_base("A", 5)
        assert ads.messages_sent - before == hierarchy.height

    def test_conflicting_base_rejected(self, setup):
        net, hierarchy, ads = setup
        ads.advertise_base("A", 5)
        with pytest.raises(ValueError, match="already advertised"):
            ads.advertise_base("A", 6)
        ads.advertise_base("A", 5)  # same node: idempotent

    def test_unknown_node_rejected(self, setup):
        net, hierarchy, ads = setup
        with pytest.raises(KeyError):
            ads.advertise_base("A", 999)

    def test_unknown_stream_lookup(self, setup):
        net, hierarchy, ads = setup
        with pytest.raises(KeyError, match="not advertised"):
            ads.base_node("GHOST")

    def test_streams_in_cluster_scoping(self, setup):
        net, hierarchy, ads = setup
        ads.advertise_base("A", 5)
        leaf = hierarchy.leaf_cluster(5)
        assert "A" in ads.streams_in(leaf)
        other = next(c for c in hierarchy.levels[0] if 5 not in c.members)
        assert "A" not in ads.streams_in(other)
        assert "A" in ads.streams_in(hierarchy.root)

    def test_base_member_resolution(self, setup):
        net, hierarchy, ads = setup
        ads.advertise_base("A", 5)
        root = hierarchy.root
        member = ads.base_member(root, "A")
        assert member in root.members
        assert 5 in hierarchy.member_subtree(root, member)
        assert ads.base_member(root, "GHOST") is None


class TestViewAdvertisements:
    def test_advertise_idempotent(self, setup):
        net, hierarchy, ads = setup
        sig = _sig()
        before = ads.messages_sent
        ads.advertise_view(sig, 7)
        ads.advertise_view(sig, 7)  # one-time message per (sig, node)
        assert ads.messages_sent - before == hierarchy.height
        assert ads.view_nodes(sig) == {7}

    def test_multiple_nodes(self, setup):
        net, hierarchy, ads = setup
        sig = _sig()
        ads.advertise_view(sig, 7)
        ads.advertise_view(sig, 9)
        assert ads.view_nodes(sig) == {7, 9}
        assert ads.views() == {sig: {7, 9}}

    def test_withdraw(self, setup):
        net, hierarchy, ads = setup
        sig = _sig()
        ads.advertise_view(sig, 7)
        ads.withdraw_view(sig, 7)
        assert ads.view_nodes(sig) == set()
        assert sig not in ads.views()

    def test_withdraw_missing_raises(self, setup):
        net, hierarchy, ads = setup
        with pytest.raises(KeyError, match="not advertised"):
            ads.withdraw_view(_sig(), 7)

    def test_views_in_cluster_scoping(self, setup):
        net, hierarchy, ads = setup
        sig = _sig()
        ads.advertise_view(sig, 7)
        leaf = hierarchy.leaf_cluster(7)
        assert sig in ads.views_in(leaf)
        other = next(c for c in hierarchy.levels[0] if 7 not in c.members)
        assert sig not in ads.views_in(other)

    def test_view_members(self, setup):
        net, hierarchy, ads = setup
        sig = _sig()
        ads.advertise_view(sig, 7)
        root = hierarchy.root
        members = ads.view_members(root, sig)
        assert len(members) == 1
        assert 7 in hierarchy.member_subtree(root, members.pop())

    def test_distinct_selectivities_distinct_views(self, setup):
        net, hierarchy, ads = setup
        ads.advertise_view(_sig(sel=0.01), 7)
        ads.advertise_view(_sig(sel=0.02), 7)
        assert len(ads.views()) == 2


class TestSyncFromState:
    def test_publish_and_reconcile(self, setup):
        net, hierarchy, ads = setup
        streams = {
            "A": repro.StreamSpec("A", 1, 50.0),
            "B": repro.StreamSpec("B", 2, 50.0),
        }
        rates = repro.RateModel(streams)
        state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        q = Query("q1", ["A", "B"], sink=10, predicates=[JoinPredicate("A", "B", 0.01)])
        planner = repro.OptimalPlanner(net, rates)
        state.apply(planner.plan(q, state))

        ads.sync_from_state(state)
        assert set(ads.views()) == set(state.advertised_views())

        state.undeploy("q1")
        ads.sync_from_state(state)
        assert ads.views() == {}
