"""Tests for k-means / k-medoids clustering and size-capped partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy.clustering import (
    capped_clusters,
    choose_medoid,
    kmeans,
    kmedoids,
    random_clustering,
)
from repro.network.topology import line, random_geometric, transit_stub_by_size


def _well_separated_points(rng, groups=3, per_group=10, spread=0.05, gap=10.0):
    pts = []
    for g in range(groups):
        center = np.array([g * gap, 0.0])
        pts.append(center + rng.normal(scale=spread, size=(per_group, 2)))
    return np.vstack(pts)


class TestKmeans:
    def test_partitions_all_points(self):
        rng = np.random.default_rng(0)
        pts = rng.random((30, 3))
        clusters = kmeans(pts, 4, seed=1)
        flat = sorted(i for c in clusters for i in c)
        assert flat == list(range(30))
        assert len(clusters) == 4
        assert all(clusters)  # non-empty

    def test_recovers_separated_groups(self):
        rng = np.random.default_rng(1)
        pts = _well_separated_points(rng)
        clusters = kmeans(pts, 3, seed=2)
        found = {frozenset(c) for c in clusters}
        expected = {frozenset(range(0, 10)), frozenset(range(10, 20)), frozenset(range(20, 30))}
        assert found == expected

    def test_k_equals_n(self):
        pts = np.arange(10, dtype=float).reshape(-1, 1) * 5
        clusters = kmeans(pts, 10, seed=0)
        assert sorted(len(c) for c in clusters) == [1] * 10

    def test_k_one(self):
        pts = np.random.default_rng(2).random((7, 2))
        clusters = kmeans(pts, 1, seed=0)
        assert clusters == [list(range(7))]

    def test_invalid_k(self):
        pts = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans(pts, 0)
        with pytest.raises(ValueError):
            kmeans(pts, 6)

    def test_identical_points_dont_crash(self):
        pts = np.ones((8, 2))
        clusters = kmeans(pts, 3, seed=0)
        assert sorted(i for c in clusters for i in c) == list(range(8))


class TestKmedoids:
    def test_partitions_all_points(self):
        net = random_geometric(25, seed=3)
        clusters = kmedoids(net.cost_matrix(), 5, seed=4)
        flat = sorted(i for c in clusters for i in c)
        assert flat == list(range(25))

    def test_recovers_separated_groups_on_metric(self):
        rng = np.random.default_rng(5)
        pts = _well_separated_points(rng)
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        clusters = kmedoids(dist, 3, seed=6)
        found = {frozenset(c) for c in clusters}
        expected = {frozenset(range(0, 10)), frozenset(range(10, 20)), frozenset(range(20, 30))}
        assert found == expected

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            kmedoids(np.zeros((3, 4)), 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmedoids(np.zeros((4, 4)), 5)


class TestRandomClustering:
    def test_partitions_and_balance(self):
        clusters = random_clustering(20, 4, seed=0)
        flat = sorted(i for c in clusters for i in c)
        assert flat == list(range(20))
        assert all(len(c) == 5 for c in clusters)

    def test_reproducible(self):
        assert random_clustering(15, 3, seed=7) == random_clustering(15, 3, seed=7)


class TestChooseMedoid:
    def test_line_medoid_is_center(self):
        net = line(5)
        assert choose_medoid([0, 1, 2, 3, 4], net.cost_matrix()) == 2

    def test_single_member(self):
        net = line(3)
        assert choose_medoid([1], net.cost_matrix()) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            choose_medoid([], np.zeros((3, 3)))

    def test_medoid_is_a_member(self):
        net = random_geometric(20, seed=8)
        members = [3, 7, 11, 19]
        assert choose_medoid(members, net.cost_matrix()) in members


class TestCappedClusters:
    @pytest.mark.parametrize("method", ["kmeans", "kmedoids", "random"])
    def test_respects_cap_and_partitions(self, method):
        net = transit_stub_by_size(64, seed=9)
        clusters = capped_clusters(net.nodes(), net.cost_matrix(), max_cs=8, seed=1, method=method)
        flat = sorted(i for c in clusters for i in c)
        assert flat == net.nodes()
        assert all(1 <= len(c) <= 8 for c in clusters)

    def test_small_input_single_cluster(self):
        net = line(4)
        clusters = capped_clusters([0, 1, 2, 3], net.cost_matrix(), max_cs=10, seed=0)
        assert clusters == [[0, 1, 2, 3]]

    def test_subset_of_nodes(self):
        net = random_geometric(30, seed=10)
        subset = [1, 4, 9, 16, 25, 28]
        clusters = capped_clusters(subset, net.cost_matrix(), max_cs=2, seed=0)
        assert sorted(i for c in clusters for i in c) == subset
        assert all(len(c) <= 2 for c in clusters)

    def test_groups_follow_cost_locality(self):
        """Two cheap cliques joined by one expensive link should split apart."""
        from repro.network.graph import Network

        net = Network()
        net.add_nodes(6)
        for group in ([0, 1, 2], [3, 4, 5]):
            for i in range(3):
                for j in range(i + 1, 3):
                    net.add_link(group[i], group[j], cost=1.0)
        net.add_link(2, 3, cost=100.0)
        clusters = capped_clusters(net.nodes(), net.cost_matrix(), max_cs=3, seed=0)
        assert {frozenset(c) for c in clusters} == {frozenset({0, 1, 2}), frozenset({3, 4, 5})}

    def test_unknown_method(self):
        net = line(5)
        with pytest.raises(ValueError, match="unknown clustering method"):
            capped_clusters(net.nodes(), net.cost_matrix(), 2, method="magic")

    def test_invalid_max_cs(self):
        net = line(5)
        with pytest.raises(ValueError):
            capped_clusters(net.nodes(), net.cost_matrix(), 0)

    def test_empty_items(self):
        net = line(3)
        with pytest.raises(ValueError):
            capped_clusters([], net.cost_matrix(), 2)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), max_cs=st.integers(2, 12))
    def test_property_cap_always_holds(self, seed, max_cs):
        net = random_geometric(25, seed=seed % 7)
        clusters = capped_clusters(net.nodes(), net.cost_matrix(), max_cs, seed=seed)
        assert sorted(i for c in clusters for i in c) == net.nodes()
        assert all(1 <= len(c) <= max_cs for c in clusters)
