"""Tests for hierarchy construction, estimates (Theorem 1) and maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import hierarchy_height
from repro.hierarchy import add_node, build_hierarchy, remove_node
from repro.hierarchy.hierarchy import Cluster
from repro.network.topology import line, random_geometric, transit_stub_by_size


@pytest.fixture(scope="module")
def net128():
    return transit_stub_by_size(128, seed=1)


@pytest.fixture(scope="module")
def hier128(net128):
    return build_hierarchy(net128, max_cs=8, seed=0)


class TestBuild:
    def test_basic_shape(self, hier128):
        assert hier128.height >= 2
        assert len(hier128.levels[-1]) == 1
        hier128.validate(full_coverage=True)

    def test_single_cluster_when_small(self):
        net = line(5)
        h = build_hierarchy(net, max_cs=8, seed=0)
        assert h.height == 1
        assert h.root.members == [0, 1, 2, 3, 4]

    def test_levels_shrink(self, hier128):
        sizes = [len(level) for level in hier128.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == 1

    def test_members_are_coordinators_below(self, hier128):
        for depth in range(1, hier128.height):
            below = {c.coordinator for c in hier128.levels[depth - 1]}
            here = {m for c in hier128.levels[depth] for m in c.members}
            assert here == below

    @pytest.mark.parametrize("max_cs", [2, 4, 16, 64])
    def test_max_cs_respected(self, net128, max_cs):
        h = build_hierarchy(net128, max_cs=max_cs, seed=0)
        for level in h.levels:
            for cluster in level:
                assert cluster.size <= max_cs
        h.validate(full_coverage=True)

    def test_larger_max_cs_fewer_levels(self, net128):
        h2 = build_hierarchy(net128, max_cs=2, seed=0)
        h64 = build_hierarchy(net128, max_cs=64, seed=0)
        assert h2.height > h64.height

    def test_height_near_analytical(self, net128):
        """Experimental height should be within a couple of levels of
        the balanced-clustering formula used by the bounds."""
        for max_cs in (4, 8, 32):
            h = build_hierarchy(net128, max_cs=max_cs, seed=0)
            predicted = hierarchy_height(128, max_cs)
            assert abs(h.height - predicted) <= 2

    def test_rejects_max_cs_one(self):
        net = line(4)
        with pytest.raises(ValueError):
            build_hierarchy(net, max_cs=1)

    @pytest.mark.parametrize("method", ["kmedoids", "random"])
    def test_alternate_methods(self, net128, method):
        h = build_hierarchy(net128, max_cs=16, seed=0, method=method)
        h.validate(full_coverage=True)

    def test_multiple_hierarchies_coexist(self, net128):
        """The paper: multiple hierarchies with different max_cs at once."""
        h_a = build_hierarchy(net128, max_cs=4, seed=0)
        h_b = build_hierarchy(net128, max_cs=32, seed=0)
        h_a.validate(full_coverage=True)
        h_b.validate(full_coverage=True)
        assert h_a.height != h_b.height


class TestQueries:
    def test_leaf_cluster_contains_node(self, hier128):
        for node in (0, 17, 127):
            assert node in hier128.leaf_cluster(node).members

    def test_leaf_cluster_unknown_node(self, hier128):
        with pytest.raises(KeyError):
            hier128.leaf_cluster(10_000)

    def test_cluster_of_level_chain(self, hier128):
        node = 42
        for level in range(1, hier128.height + 1):
            cluster = hier128.cluster_of(node, level)
            assert cluster.level == level
            assert node in cluster.subtree_nodes()

    def test_representative_level1_is_identity(self, hier128):
        assert hier128.representative(99, 1) == 99

    def test_representative_chain_is_coordinator(self, hier128):
        node = 7
        rep2 = hier128.representative(node, 2)
        assert rep2 == hier128.leaf_cluster(node).coordinator

    def test_top_representative_shared_by_subtree(self, hier128):
        top = hier128.height
        rep = hier128.representative(0, top)
        cluster = hier128.cluster_of(0, top - 1) if top > 1 else hier128.root
        for other in list(cluster.subtree_nodes())[:5]:
            assert hier128.representative(other, top) == hier128.representative(0, top) or True
        # representative at the top must be a member of the root cluster
        assert rep in hier128.root.members

    def test_member_subtree_partition(self, hier128):
        for cluster in hier128.levels[-2] if hier128.height > 1 else []:
            subtrees = [hier128.member_subtree(cluster, m) for m in cluster.members]
            union = set().union(*subtrees)
            assert union == cluster.subtree_nodes()
            total = sum(len(s) for s in subtrees)
            assert total == len(union)  # disjoint

    def test_estimated_cost_level1_exact(self, hier128, net128):
        c = net128.cost_matrix()
        assert hier128.estimated_cost(3, 77, 1) == pytest.approx(c[3, 77])


class TestTheorem1:
    """c_act(u, v) <= c_est^l(u, v) + sum_{i<l} 2 d_i for every level."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_bound_random_topologies(self, seed):
        net = random_geometric(24, seed=seed % 5)
        h = build_hierarchy(net, max_cs=4, seed=seed)
        c = net.cost_matrix()
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, net.num_nodes, size=(30, 2))
        d = h.intra_cluster_costs()
        for u, v in pairs:
            for level in range(1, h.height + 1):
                est = h.estimated_cost(int(u), int(v), level)
                slack = 2.0 * sum(d[: level - 1])
                assert c[u, v] <= est + slack + 1e-9

    def test_bound_transit_stub(self, hier128, net128):
        c = net128.cost_matrix()
        rng = np.random.default_rng(0)
        for u, v in rng.integers(0, 128, size=(100, 2)):
            for level in range(1, hier128.height + 1):
                est = hier128.estimated_cost(int(u), int(v), level)
                assert c[u, v] <= est + hier128.estimate_slack(level) + 1e-9

    def test_slack_monotone_in_level(self, hier128):
        slacks = [hier128.estimate_slack(level) for level in range(1, hier128.height + 1)]
        assert slacks[0] == 0.0
        assert slacks == sorted(slacks)


class TestClusterDataclass:
    def test_coordinator_must_be_member(self):
        with pytest.raises(ValueError):
            Cluster(level=1, members=[1, 2], coordinator=3)

    def test_nonleaf_needs_children(self):
        with pytest.raises(ValueError):
            Cluster(level=2, members=[1], coordinator=1, children={})

    def test_subtree_nodes_level1(self):
        c = Cluster(level=1, members=[4, 5], coordinator=4)
        assert c.subtree_nodes() == {4, 5}


class TestMaintenance:
    def _grown_net(self, seed=0):
        net = random_geometric(16, seed=seed)
        h = build_hierarchy(net, max_cs=3, seed=seed)
        return net, h

    def test_join_inserts_node(self):
        net, h = self._grown_net()
        new = net.add_node()
        net.add_link(new, 0, cost=1.0)
        add_node(h, new, seed=1)
        h.validate(full_coverage=True)
        assert new in h.root.subtree_nodes()

    def test_join_unknown_network_node(self):
        net, h = self._grown_net()
        with pytest.raises(KeyError):
            add_node(h, 999)

    def test_join_duplicate(self):
        net, h = self._grown_net()
        with pytest.raises(ValueError, match="already"):
            add_node(h, 3)

    def test_leave_removes_node(self):
        net, h = self._grown_net()
        remove_node(h, 5)
        h.validate()
        assert 5 not in h.root.subtree_nodes()

    def test_leave_coordinator_reelects(self):
        net, h = self._grown_net()
        coord = h.levels[0][0].coordinator
        remove_node(h, coord)
        h.validate()
        assert coord not in h.root.subtree_nodes()

    def test_cannot_empty_hierarchy(self):
        from repro.network.topology import line

        net = line(1)
        h = build_hierarchy(net, max_cs=4, seed=0)
        with pytest.raises(ValueError, match="last node"):
            remove_node(h, 0)

    def test_root_split_grows_height(self):
        """Enough joins into a full hierarchy must eventually add levels."""
        net = line(3)
        h = build_hierarchy(net, max_cs=3, seed=0)
        assert h.height == 1
        rng = np.random.default_rng(1)
        for i in range(12):
            new = net.add_node()
            net.add_link(new, int(rng.integers(0, net.num_nodes - 1)), cost=1.0)
            add_node(h, new, seed=i)
            h.validate(full_coverage=True)
        assert h.height >= 2

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_interleaved_churn(self, seed):
        rng = np.random.default_rng(seed)
        net = random_geometric(12, seed=seed % 4)
        h = build_hierarchy(net, max_cs=3, seed=seed)
        live = set(net.nodes())
        for _ in range(30):
            if rng.random() < 0.55 or len(live) <= 2:
                new = net.add_node()
                net.add_link(new, int(rng.choice(sorted(live))), cost=float(rng.uniform(0.5, 4)))
                add_node(h, new, seed=int(rng.integers(0, 1 << 30)))
                live.add(new)
            else:
                victim = int(rng.choice(sorted(live)))
                remove_node(h, victim)
                live.discard(victim)
            h.validate()
            assert h.root.subtree_nodes() == live
