"""Fault plans and the deterministic fault injector."""

import json

import pytest

import repro
from repro.errors import FaultInjectionError
from repro.resilience.faults import (
    NULL_FAULTS,
    CoordinatorOutage,
    CoordinatorSlowdown,
    FaultInjector,
    FaultPlan,
    MessageStorm,
    NodeCrash,
    Partition,
    StaleStatistics,
)


class TestFaultPlanValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan([NodeCrash(time=-1.0, node=3)])

    def test_non_positive_duration_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan([CoordinatorOutage(time=1.0, node=3, duration=0.0)])

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan([MessageStorm(time=1.0, duration=2.0, drop=1.5)])

    def test_slowdown_factor_below_one_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan([CoordinatorSlowdown(time=1.0, node=0, duration=2.0, factor=0.5)])

    def test_overlapping_partition_groups_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan([Partition(time=1.0, duration=2.0, groups=((0, 1), (1, 2)))])

    def test_events_sorted_by_time(self):
        plan = FaultPlan([
            StaleStatistics(time=9.0, duration=2.0),
            NodeCrash(time=2.0, node=1),
        ])
        assert [e.time for e in plan.events] == [2.0, 9.0]


class TestFaultPlanGenerate:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(range(16), seed=4, duration=30.0)
        b = FaultPlan.generate(range(16), seed=4, duration=30.0)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_differs(self):
        a = FaultPlan.generate(range(16), seed=4, duration=30.0)
        b = FaultPlan.generate(range(16), seed=5, duration=30.0)
        assert a.to_dict() != b.to_dict()

    def test_protected_nodes_never_crash(self):
        protected = {0, 1, 2, 3}
        plan = FaultPlan.generate(
            range(16), seed=4, duration=30.0, crashes=10, protected=protected
        )
        victims = {e.node for e in plan.of_kind(NodeCrash)}
        assert victims.isdisjoint(protected)

    def test_event_mix_matches_request(self):
        plan = FaultPlan.generate(
            range(8), seed=1, duration=20.0,
            crashes=2, outages=3, slowdowns=1, storms=2,
            stale_windows=1, partitions=1,
        )
        assert len(plan.of_kind(NodeCrash)) == 2
        assert len(plan.of_kind(CoordinatorOutage)) == 3
        assert len(plan.of_kind(CoordinatorSlowdown)) == 1
        assert len(plan.of_kind(MessageStorm)) == 2
        assert len(plan.of_kind(StaleStatistics)) == 1
        assert len(plan.of_kind(Partition)) == 1

    def test_focus_aims_outages_and_slowdowns(self):
        focus = {5, 9}
        plan = FaultPlan.generate(
            range(16), seed=4, duration=30.0, outages=5, slowdowns=5, focus=focus
        )
        hit = {e.node for e in plan.of_kind(CoordinatorOutage)}
        hit |= {e.node for e in plan.of_kind(CoordinatorSlowdown)}
        assert hit <= focus

    def test_focus_none_matches_unfocused_draws(self):
        a = FaultPlan.generate(range(16), seed=4, duration=30.0)
        b = FaultPlan.generate(range(16), seed=4, duration=30.0, focus=None)
        assert a.to_dict() == b.to_dict()

    def test_focus_outside_nodes_falls_back_to_all(self):
        plan = FaultPlan.generate(range(8), seed=4, duration=30.0, focus={99})
        assert plan.of_kind(CoordinatorOutage)

    def test_zero_nodes_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate([], seed=0, duration=10.0)


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan.generate(range(12), seed=7, duration=25.0, partitions=1)
        text = repro.fault_plan_to_json(plan)
        doc = json.loads(text)
        assert doc["kind"] == "repro.fault_plan"
        back = repro.fault_plan_from_json(text)
        assert back.to_dict() == plan.to_dict()
        assert back.seed == plan.seed

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            repro.fault_plan_from_json(json.dumps({"kind": "repro.network"}))

    def test_unknown_event_kind_rejected(self):
        doc = {"kind": "repro.fault_plan", "seed": 0,
               "events": [{"kind": "meteor_strike", "time": 1.0}]}
        with pytest.raises(FaultInjectionError):
            repro.fault_plan_from_json(json.dumps(doc))


class TestInjectorWindows:
    def test_outage_window(self):
        inj = FaultInjector(FaultPlan([CoordinatorOutage(time=5.0, node=3, duration=4.0)]))
        assert not inj.unreachable(3, 4.9)
        assert inj.unreachable(3, 5.0)
        assert inj.unreachable(3, 8.9)
        assert not inj.unreachable(3, 9.0)
        assert not inj.unreachable(4, 6.0)

    def test_crashed_nodes_unreachable(self):
        inj = FaultInjector(FaultPlan())
        inj.crashed.add(7)
        assert inj.unreachable(7, 0.0)

    def test_slowdown_factor(self):
        inj = FaultInjector(
            FaultPlan([CoordinatorSlowdown(time=2.0, node=1, duration=3.0, factor=8.0)])
        )
        assert inj.slowdown(1, 1.0) == 1.0
        assert inj.slowdown(1, 3.0) == 8.0
        assert inj.slowdown(2, 3.0) == 1.0

    def test_statistics_frozen_window(self):
        inj = FaultInjector(FaultPlan([StaleStatistics(time=3.0, duration=2.0)]))
        assert not inj.statistics_frozen(2.0)
        assert inj.statistics_frozen(4.0)
        assert not inj.statistics_frozen(5.5)

    def test_partition_separates_groups(self):
        inj = FaultInjector(
            FaultPlan([Partition(time=1.0, duration=5.0, groups=((0, 1), (2, 3)))])
        )
        assert inj.partitioned(0, 2, 3.0)
        assert not inj.partitioned(0, 1, 3.0)
        assert not inj.partitioned(0, 2, 7.0)
        # nodes outside every group stay connected to everyone
        assert not inj.partitioned(0, 9, 3.0)
        # unreachable() honors partitions relative to the observer
        assert inj.unreachable(2, 3.0, observer=0)
        assert not inj.unreachable(2, 3.0, observer=3)


class TestInjectorEvents:
    def test_due_events_consumed_once_in_order(self):
        inj = FaultInjector(FaultPlan([
            NodeCrash(time=2.0, node=4, rejoin_after=3.0),
            NodeCrash(time=1.0, node=5),
        ]))
        first = inj.due_events(2.0)
        assert [(k, getattr(p, "node", p)) for k, p in first] == [
            ("crash", 5), ("crash", 4)
        ]
        assert inj.due_events(2.0) == []
        rejoin = inj.due_events(5.0)
        assert rejoin == [("rejoin", 4)]
        assert inj.due_events(100.0) == []

    def test_note_applied_logged(self):
        inj = FaultInjector(FaultPlan())
        inj.note_applied("crash", 2.0, node=4)
        assert inj.applied == [{"kind": "crash", "time": 2.0, "node": 4}]
        assert inj.summary()["events_applied"] == 1


class TestMessageAction:
    def test_storm_drop_everything(self):
        inj = FaultInjector(
            FaultPlan([MessageStorm(time=0.0, duration=10.0, drop=1.0)])
        )
        assert inj.message_action(0, 1, "m", 5.0) == ("drop", "storm")
        assert inj.messages_dropped == 1

    def test_partition_drops_cross_group_messages(self):
        inj = FaultInjector(
            FaultPlan([Partition(time=0.0, duration=10.0, groups=((0,), (1,)))])
        )
        assert inj.message_action(0, 1, "m", 5.0) == ("drop", "partition")
        assert inj.message_action(0, 0, "m", 5.0) is None

    def test_quiet_times_deliver_normally(self):
        inj = FaultInjector(
            FaultPlan([MessageStorm(time=5.0, duration=1.0, drop=1.0)])
        )
        assert inj.message_action(0, 1, "m", 2.0) is None

    def test_same_seed_same_draws(self):
        plan = FaultPlan(
            [MessageStorm(time=0.0, duration=10.0, drop=0.4, duplicate=0.3)], seed=11
        )
        one = FaultInjector(plan)
        two = FaultInjector(plan)
        seq_one = [one.message_action(0, 1, "m", float(t)) for t in range(20)]
        seq_two = [two.message_action(0, 1, "m", float(t)) for t in range(20)]
        assert seq_one == seq_two
        assert any(a is not None and a[0] == "drop" for a in seq_one)


class TestNullInjector:
    def test_everything_is_a_no_op(self):
        assert not NULL_FAULTS.enabled
        assert NULL_FAULTS.due_events(100.0) == []
        assert not NULL_FAULTS.unreachable(0, 0.0)
        assert not NULL_FAULTS.partitioned(0, 1, 0.0)
        assert NULL_FAULTS.slowdown(0, 0.0) == 1.0
        assert not NULL_FAULTS.statistics_frozen(0.0)
        assert NULL_FAULTS.message_action(0, 1, "m", 0.0) is None
        assert NULL_FAULTS.summary()["events_planned"] == 0
