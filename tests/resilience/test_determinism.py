"""Same seed, same chaos: two runs must match event for event."""

import repro
from repro.resilience import FaultInjector, FaultPlan, ResilienceConfig
from repro.service import AdmissionController, StreamQueryService, churn_trace

DURATION = 30.0


def run_chaos(seed=13):
    """One full chaos run; returns everything observable about it."""
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    protected = {spec.source for spec in rates.streams.values()}
    protected |= {q.sink for q in workload}
    plan = FaultPlan.generate(
        net.nodes(), seed=seed, duration=DURATION, protected=protected
    )
    faults = FaultInjector(plan)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=6),
        resilience=ResilienceConfig(),
        faults=faults,
    )
    events = sorted(
        churn_trace(workload, lifetime=4.0, repeats=2), key=lambda e: e.time
    )
    tick_reports = []
    decisions = []
    clock = 0.0
    i = 0
    while clock < DURATION:
        clock += 1.0
        tick_reports.append(service.tick(clock))
        while i < len(events) and events[i].time <= clock:
            decisions.append(service.submit(events[i].query, lifetime=events[i].lifetime))
            i += 1
    return {
        "plan": plan.to_dict(),
        "tick_reports": tick_reports,
        "decisions": decisions,
        "applied": faults.applied,
        "fault_summary": faults.summary(),
        "resilience_summary": service.resilience.summary(),
        "final_cost": service.total_cost(),
        "live": sorted(service.live_queries),
        "epochs": (service.statistics_epoch, service.topology_epoch),
        "hierarchy_violations": service.hierarchy.invariant_violations(),
    }


class TestDeterminism:
    def test_same_seed_runs_are_identical(self):
        a = run_chaos(seed=13)
        b = run_chaos(seed=13)
        assert a == b

    def test_chaos_run_ends_consistent(self):
        result = run_chaos(seed=13)
        assert result["hierarchy_violations"] == []
        assert result["fault_summary"]["events_applied"] > 0

    def test_different_seeds_diverge(self):
        a = run_chaos(seed=13)
        b = run_chaos(seed=14)
        assert a["plan"] != b["plan"]
