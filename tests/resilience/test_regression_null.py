"""With NULL faults the resilience layer must change nothing.

The contract: a default-constructed service (no resilience, no faults)
and a resilience-enabled service fed :data:`NULL_FAULTS` make identical
planning decisions and produce identical deployments -- the layer only
*observes* until something actually fails.
"""

import repro
from repro.resilience import NULL_FAULTS, ResilienceConfig
from repro.runtime import simulate_deployment
from repro.service import AdmissionController, StreamQueryService, churn_trace

#: summary keys that depend on wall-clock or the resilience layer itself
_VOLATILE = {"planning_seconds", "queries_per_second", "resilience", "faults"}


def build_service(resilience=None, seed=47):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=6),
        resilience=resilience,
    )
    return service, workload


class TestServiceParity:
    def test_replay_is_identical_with_and_without_the_layer(self):
        plain, workload = build_service(resilience=None)
        armed, _ = build_service(resilience=ResilienceConfig())
        assert armed.resilience is not None and armed.faults is NULL_FAULTS

        trace = churn_trace(workload, lifetime=4.0, repeats=2)
        report_plain = plain.replay(list(trace))
        report_armed = armed.replay(list(trace))

        assert report_plain.decisions == report_armed.decisions
        assert report_plain.ticks == report_armed.ticks
        clean = lambda s: {k: v for k, v in s.items() if k not in _VOLATILE}  # noqa: E731
        assert clean(report_plain.summary) == clean(report_armed.summary)
        assert plain.topology_epoch == armed.topology_epoch
        assert plain.statistics_epoch == armed.statistics_epoch

    def test_deployments_are_identical_mid_run(self):
        plain, workload = build_service(resilience=None)
        armed, _ = build_service(resilience=ResilienceConfig())
        for query in workload.queries[:5]:
            plain.submit(query, time=1.0)
            armed.submit(query, time=1.0)
        placements_plain = {
            d.query.name: sorted(d.placement.values())
            for d in plain.engine.state.deployments
        }
        placements_armed = {
            d.query.name: sorted(d.placement.values())
            for d in armed.engine.state.deployments
        }
        assert placements_plain == placements_armed
        assert plain.total_cost() == armed.total_cost()
        # the hierarchical rung never tags a deployment as degraded
        for d in armed.engine.state.deployments:
            assert "resilience_rung" not in d.stats
        assert armed.resilience.summary()["fallbacks"] == 0

    def test_default_service_exposes_no_resilience_metrics(self):
        plain, _ = build_service(resilience=None)
        armed, _ = build_service(resilience=ResilienceConfig())
        plain_names = set(plain.registry.names())
        armed_names = set(armed.registry.names())
        assert not {n for n in plain_names if n.startswith("resilience_")}
        assert {n for n in armed_names if n.startswith("resilience_")}
        # and the layer adds nothing else
        assert plain_names == {
            n for n in armed_names if not n.startswith("resilience_")
        }


class TestProtocolParity:
    def test_null_faults_timeline_is_byte_identical(self):
        net = repro.transit_stub_by_size(32, seed=2)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(1, 3)),
            seed=3,
        )
        rates = workload.rate_model()
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        for query in workload:
            deployment = optimizer.plan(query)
            default = simulate_deployment(net, deployment)
            explicit = simulate_deployment(net, deployment, faults=NULL_FAULTS)
            assert default == explicit
            assert default.retransmissions == 0


class TestSimulatorParity:
    def test_no_middleware_counters_stay_zero(self):
        net = repro.transit_stub_by_size(16, seed=5)
        sim = repro.Simulator(net)
        assert sim.messages_dropped == 0
        assert sim.messages_duplicated == 0
        assert not sim._middleware
        NULL_FAULTS.install(sim)
        assert not sim._middleware
