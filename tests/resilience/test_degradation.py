"""The degradation ladder, parking and quarantine on a live service."""

import pytest

import repro
from repro.errors import PlanningError
from repro.resilience import FaultInjector, FaultPlan, ResilienceConfig
from repro.resilience.faults import (
    CoordinatorOutage,
    CoordinatorSlowdown,
    NodeCrash,
)
from repro.service import AdmissionController, StreamQueryService


def build_resilient(events=(), seed=31, budget=8, config=None, plan_seed=0):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    faults = FaultInjector(FaultPlan(list(events), seed=plan_seed))
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=budget),
        resilience=config if config is not None else ResilienceConfig(),
        faults=faults,
    )
    return service, workload


def coordinators_of(service, query):
    """(leaf coordinator, parent coordinator) gating the query's ladder."""
    leaf = service.hierarchy.leaf_cluster(query.sink)
    parent = leaf.parent
    return leaf.coordinator, parent.coordinator if parent else leaf.coordinator


def deployment_of(service, name):
    return next(d for d in service.engine.state.deployments if d.query.name == name)


def query_with_distinct_coordinators(service, workload):
    for query in workload:
        leaf_coord, parent_coord = coordinators_of(service, query)
        if leaf_coord != parent_coord:
            return query, leaf_coord, parent_coord
    raise AssertionError("workload has no query with distinct coordinators")


class TestLadder:
    def test_healthy_service_stays_on_the_hierarchical_rung(self):
        service, workload = build_resilient()
        query = workload.queries[0]
        decision = service.submit(query, time=1.0)
        assert decision.admitted
        deployment = deployment_of(service, query.name)
        assert "resilience_rung" not in deployment.stats
        assert service.resilience.fallbacks_total == 0

    def test_leaf_outage_escalates_to_the_parent_coordinator(self):
        service0, workload = build_resilient()
        query, leaf_coord, parent_coord = query_with_distinct_coordinators(
            service0, workload
        )
        service, _ = build_resilient(
            [CoordinatorOutage(time=0.0, node=leaf_coord, duration=100.0)]
        )
        decision = service.submit(query, time=1.0)
        assert decision.admitted
        deployment = deployment_of(service, query.name)
        assert deployment.stats["resilience_rung"] == "parent"
        assert query.name in service.resilience.degraded_queries
        assert service.resilience.fallbacks_total == 1

    def test_total_coordinator_outage_falls_to_the_baseline(self):
        service0, workload = build_resilient()
        query, leaf_coord, parent_coord = query_with_distinct_coordinators(
            service0, workload
        )
        service, _ = build_resilient([
            CoordinatorOutage(time=0.0, node=leaf_coord, duration=100.0),
            CoordinatorOutage(time=0.0, node=parent_coord, duration=100.0),
        ])
        decision = service.submit(query, time=1.0)
        assert decision.admitted
        deployment = deployment_of(service, query.name)
        assert deployment.stats["resilience_rung"] == "baseline"
        # the degraded plan still lands on live hierarchy nodes only
        alive = service.hierarchy.root.subtree_nodes()
        assert set(deployment.placement.values()) <= alive

    def test_slow_coordinator_times_out_and_degrades(self):
        service0, workload = build_resilient()
        query, leaf_coord, parent_coord = query_with_distinct_coordinators(
            service0, workload
        )
        # rpc 0.05s x factor 50 >> the default 0.25s attempt timeout
        service, _ = build_resilient([
            CoordinatorSlowdown(time=0.0, node=leaf_coord, duration=100.0, factor=50.0),
            CoordinatorSlowdown(
                time=0.0, node=parent_coord, duration=100.0, factor=50.0
            ),
        ])
        decision = service.submit(query, time=1.0)
        assert decision.admitted
        assert deployment_of(service, query.name).stats["resilience_rung"] == "baseline"
        assert service.resilience.retries_total > 0


class TestBreakers:
    def test_repeated_failures_trip_the_coordinator_breaker(self):
        service0, workload = build_resilient()
        query, leaf_coord, _ = query_with_distinct_coordinators(service0, workload)
        config = ResilienceConfig(failure_threshold=1, recovery_time=50.0)
        service, _ = build_resilient(
            [CoordinatorOutage(time=0.0, node=leaf_coord, duration=100.0)],
            config=config,
        )
        service.submit(query, time=1.0)
        summary = service.resilience.summary()
        assert leaf_coord in summary["open_breakers"]
        assert summary["breaker_opens"] >= 1
        # while open, the rung is skipped without burning retries
        retries_before = service.resilience.retries_total
        other = repro.Query(
            f"{query.name}.again", query.sources, sink=query.sink,
            predicates=query.predicates,
        )
        service.submit(other, time=2.0)
        assert service.resilience.retries_total == retries_before

    def test_breaker_metrics_registered(self):
        service, _ = build_resilient()
        names = service.registry.names()
        for name in (
            "resilience_retries_total",
            "resilience_fallbacks_total",
            "resilience_breaker_opens_total",
            "resilience_parked_queries",
            "resilience_quarantined_nodes",
            "resilience_faults_applied_total",
            "resilience_backoff_seconds",
        ):
            assert name in names


class TestParking:
    def test_unplannable_query_parks_then_readmits_on_topology_change(self):
        service0, workload = build_resilient()
        query, leaf_coord, parent_coord = query_with_distinct_coordinators(
            service0, workload
        )
        service, _ = build_resilient([
            CoordinatorOutage(time=0.0, node=leaf_coord, duration=5.0),
            CoordinatorOutage(time=0.0, node=parent_coord, duration=5.0),
        ])

        class RaisingFallback:
            def plan(self, query, state):
                raise PlanningError("baseline offline too")

        real_fallback = service.resilience._fallback
        service.resilience._fallback = RaisingFallback()
        decision = service.submit(query, time=1.0)
        assert decision.status is repro.AdmissionStatus.QUEUED
        assert decision.reason.startswith("parked:")
        assert query.name in service.resilience.parked
        assert not service.is_live(query.name)

        # same epoch -> stays parked
        service.tick(2.0)
        assert query.name in service.resilience.parked

        # topology change past the outage window -> re-admitted
        service.resilience._fallback = real_fallback
        service.bump_topology_epoch()
        report = service.tick(6.0)
        assert query.name in report.deployed
        assert query.name not in service.resilience.parked
        assert service.is_live(query.name)

    def test_retire_drops_a_parked_query(self):
        service0, workload = build_resilient()
        query, leaf_coord, parent_coord = query_with_distinct_coordinators(
            service0, workload
        )
        service, _ = build_resilient([
            CoordinatorOutage(time=0.0, node=leaf_coord, duration=100.0),
            CoordinatorOutage(time=0.0, node=parent_coord, duration=100.0),
        ])

        class RaisingFallback:
            def plan(self, query, state):
                raise PlanningError("no")

        service.resilience._fallback = RaisingFallback()
        service.submit(query, time=1.0)
        assert query.name in service.resilience.parked
        assert service.retire(query.name) is False
        assert query.name not in service.resilience.parked
        with pytest.raises(KeyError):
            service.retire(query.name)


class TestQuarantine:
    def test_flapping_node_is_quarantined_and_released(self):
        config = ResilienceConfig(quarantine_after=2, quarantine_ticks=10.0)
        service, workload = build_resilient(config=config)
        victim = next(iter(
            service.hierarchy.root.subtree_nodes()
            - {spec.source for spec in service.rates.streams.values()}
        ))
        service.resilience.breakers.breaker(victim).opened_count = 2
        epoch = service.topology_epoch
        service.resilience._quarantine_flapping(service, now=1.0)
        assert victim in service.resilience.quarantined
        assert victim not in service.hierarchy.root.subtree_nodes()
        assert service.topology_epoch > epoch
        assert service.hierarchy.invariant_violations() == []

        # before the quarantine expires nothing happens
        assert service.resilience.release_quarantined(service, now=5.0) == []
        released = service.resilience.release_quarantined(service, now=12.0)
        assert released == [victim]
        assert victim in service.hierarchy.root.subtree_nodes()
        assert service.hierarchy.invariant_violations() == []


class TestFaultApplication:
    def test_scripted_crash_and_rejoin_flow_through_ticks(self):
        service0, workload = build_resilient()
        protected = {spec.source for spec in service0.rates.streams.values()}
        protected |= {q.sink for q in workload}
        victim = next(iter(service0.hierarchy.root.subtree_nodes() - protected))
        service, _ = build_resilient([
            NodeCrash(time=2.0, node=victim, rejoin_after=3.0),
        ])
        for query in workload.queries[:4]:
            service.submit(query, time=1.0)
        service.tick(2.0)
        assert victim in service.faults.crashed
        assert victim not in service.hierarchy.root.subtree_nodes()
        assert any(e["kind"] == "crash" for e in service.faults.applied)
        for d in service.engine.state.deployments:
            assert victim not in set(d.placement.values())

        epoch = service.topology_epoch
        service.tick(5.0)
        assert victim not in service.faults.crashed
        assert victim in service.hierarchy.root.subtree_nodes()
        assert service.topology_epoch > epoch
        assert service.hierarchy.invariant_violations() == []
