"""Retry policies, circuit breakers and the breaker board."""

import numpy as np
import pytest

from repro.errors import CircuitOpenError, CoordinatorUnreachable, PlanningError
from repro.resilience.policy import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)


class TestRetryPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"attempt_timeout": 0.0},
        {"deadline": -1.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_capped_no_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0
        )
        assert policy.backoff(1) == 0.0
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5)
        a = policy.delays(seed=3)
        b = policy.delays(seed=3)
        c = policy.delays(seed=4)
        assert a == b
        assert a != c
        # jitter keeps every delay within the +-50% envelope
        for nominal, jittered in zip(
            RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0).delays(), a
        ):
            assert 0.5 * nominal <= jittered <= 1.5 * nominal


class TestRetryRun:
    def test_succeeds_after_failures(self):
        calls = []
        retried = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise CoordinatorUnreachable("down")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        result, attempts, spent = policy.run(
            flaky, on_retry=lambda a, e, d: retried.append((a, d))
        )
        assert result == "ok"
        assert attempts == 3
        assert calls == [1, 2, 3]
        assert spent == pytest.approx(0.1 + 0.2)
        assert retried == [(2, pytest.approx(0.1)), (3, pytest.approx(0.2))]

    def test_exhaustion_raises_last_error(self):
        def always_down(attempt):
            raise CoordinatorUnreachable(f"attempt {attempt}")

        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(CoordinatorUnreachable, match="attempt 3"):
            policy.run(always_down)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def boom(attempt):
            calls.append(attempt)
            raise RuntimeError("not a ReproError")

        with pytest.raises(RuntimeError):
            RetryPolicy(max_attempts=5).run(boom)
        assert calls == [1]

    def test_deadline_stops_the_loop(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0, max_delay=1.0,
            jitter=0.0, deadline=2.5,
        )

        def always_down(attempt):
            raise PlanningError("nope")

        with pytest.raises(PlanningError):
            policy.run(always_down)
        # 1 try + 2 retries fit in the 2.5s deadline; the 4th would not.

    def test_jittered_run_uses_caller_rng(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.5)

        def fail_once(attempt):
            if attempt == 1:
                raise PlanningError("first")
            return attempt

        _, _, spent_a = policy.run(fail_once, rng=np.random.default_rng(9))
        _, _, spent_b = policy.run(fail_once, rng=np.random.default_rng(9))
        assert spent_a == spent_b


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_time=5.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 1
        assert not breaker.allow(1.0)

    def test_half_open_after_recovery_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=5.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(4.9)
        assert breaker.allow(5.0)  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(5.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(5.1)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=5.0)
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_failure(5.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 2
        assert not breaker.allow(9.9)
        assert breaker.allow(10.0)

    def test_half_open_probe_budget(self):
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=1.0, half_open_probes=2
        )
        breaker.record_failure(0.0)
        assert breaker.allow(2.0)
        assert breaker.allow(2.0)
        assert not breaker.allow(2.0)  # probe budget exhausted

    def test_check_raises_typed_error(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_time=10.0)
        breaker.record_failure(0.0)
        with pytest.raises(CircuitOpenError):
            breaker.check(1.0, target="node 5")

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestBreakerBoard:
    def test_independent_per_node(self):
        board = BreakerBoard(failure_threshold=1, recovery_time=5.0)
        board.record_failure(3, 0.0)
        assert not board.allow(3, 1.0)
        assert board.allow(4, 1.0)
        assert board.open_nodes() == [3]

    def test_flapping_detection(self):
        board = BreakerBoard(failure_threshold=1, recovery_time=1.0)
        for t in (0.0, 2.0, 4.0):
            board.allow(6, t)  # move OPEN -> HALF_OPEN when recovered
            board.record_failure(6, t)
        assert board.breaker(6).opened_count == 3
        assert board.flapping(2) == [6]
        assert board.flapping(4) == []
        assert board.total_opens() == 3
