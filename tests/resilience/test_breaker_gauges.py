"""Per-coordinator breaker-state gauges on the resilience layer."""

from repro.obs.metrics import MetricRegistry
from repro.resilience.degradation import (
    BREAKER_STATE_VALUES,
    ResilienceConfig,
    ResilientControl,
)
from repro.resilience.policy import BreakerState


def make_control():
    return ResilientControl(ResilienceConfig(failure_threshold=2, recovery_time=5.0))


class TestBindInstruments:
    def test_declares_resilience_instruments(self):
        control = make_control()
        registry = MetricRegistry()
        control.bind_instruments(registry)
        names = set(registry.names())
        assert "resilience_retries_total" in names
        assert "resilience_breaker_opens_total" in names
        assert "resilience_parked_queries" in names
        assert "resilience_quarantined_nodes" in names

    def test_idempotent_rebind_reuses_instruments(self):
        control = make_control()
        registry = MetricRegistry()
        control.bind_instruments(registry)
        counter = registry.get("resilience_retries_total")
        control.bind_instruments(registry)
        assert registry.get("resilience_retries_total") is counter


class TestBreakerStateGauges:
    def test_gauge_tracks_the_breaker_lifecycle(self):
        control = make_control()
        registry = MetricRegistry()
        control.bind_instruments(registry)

        # trip coordinator 5: threshold=2 consecutive failures
        control._record_failure(5, now=1.0)
        gauge = registry.get("resilience_breaker_state_5")
        assert gauge is not None  # created lazily on first sync
        assert gauge.value == BREAKER_STATE_VALUES[BreakerState.CLOSED]
        control._record_failure(5, now=2.0)
        assert gauge.value == BREAKER_STATE_VALUES[BreakerState.OPEN]

        # recovery_time elapses -> allow() moves it to half-open
        assert control.breakers.allow(5, now=8.0)
        control.sync_breaker_gauges(now=8.0)
        assert gauge.value == BREAKER_STATE_VALUES[BreakerState.HALF_OPEN]

        control.breakers.record_success(5, now=8.5)
        control.sync_breaker_gauges(now=8.5)
        assert gauge.value == BREAKER_STATE_VALUES[BreakerState.CLOSED]

    def test_sync_without_registry_is_a_noop(self):
        control = make_control()
        control._record_failure(3, now=1.0)  # must not raise unbound
        assert control._registry is None

    def test_states_exposes_every_seen_coordinator(self):
        control = make_control()
        control.breakers.breaker(2)
        control._record_failure(7, now=1.0)
        control._record_failure(7, now=2.0)
        states = control.breakers.states()
        assert states[2] is BreakerState.CLOSED
        assert states[7] is BreakerState.OPEN
        assert list(states) == [2, 7]  # sorted for determinism

    def test_gauges_feed_the_exposition(self):
        control = make_control()
        registry = MetricRegistry()
        control.bind_instruments(registry)
        control._record_failure(4, now=1.0)
        control._record_failure(4, now=2.0)
        text = registry.exposition()
        assert "resilience_breaker_state_4 2" in text
