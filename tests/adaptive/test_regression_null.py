"""With ``adaptivity=None`` the adaptive layer must change nothing.

The contract mirrors the resilience layer's: an armed adaptivity loop
that never observes drift makes byte-identical planning decisions to a
default service -- the loop only *acts* once the monitor publishes.
"""

import repro
from repro.adaptive import AdaptivityConfig
from repro.service import AdmissionController, StreamQueryService, churn_trace

#: summary keys that depend on wall-clock or the optional layers themselves
_VOLATILE = {
    "planning_seconds",
    "queries_per_second",
    "resilience",
    "faults",
    "adaptivity",
}


def build_service(adaptivity=None, seed=47):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=6),
        adaptivity=adaptivity,
    )
    return service, workload


class TestAdaptivityParity:
    def test_replay_is_identical_with_and_without_the_loop(self):
        plain, workload = build_service(adaptivity=None)
        armed, _ = build_service(adaptivity=AdaptivityConfig())
        assert plain.adaptivity is None and armed.adaptivity is not None

        trace = churn_trace(workload, lifetime=4.0, repeats=2)
        report_plain = plain.replay(list(trace))
        report_armed = armed.replay(list(trace))

        assert report_plain.decisions == report_armed.decisions
        assert report_plain.ticks == report_armed.ticks
        clean = lambda s: {k: v for k, v in s.items() if k not in _VOLATILE}  # noqa: E731
        assert clean(report_plain.summary) == clean(report_armed.summary)
        assert plain.topology_epoch == armed.topology_epoch
        assert plain.statistics_epoch == armed.statistics_epoch
        # the armed loop never saw drift, so it never migrated anything
        summary = armed.adaptivity.summary()
        assert summary["migrations_committed"] == 0
        assert summary["monitor"]["publications"] == 0

    def test_deployments_are_identical_mid_run(self):
        plain, workload = build_service(adaptivity=None)
        armed, _ = build_service(adaptivity=AdaptivityConfig())
        for query in workload.queries[:5]:
            plain.submit(query, time=1.0)
            armed.submit(query, time=1.0)
        for tick in range(2, 8):
            plain.tick(float(tick))
            armed.tick(float(tick))
        placements_plain = {
            d.query.name: sorted(d.placement.values())
            for d in plain.engine.state.deployments
        }
        placements_armed = {
            d.query.name: sorted(d.placement.values())
            for d in armed.engine.state.deployments
        }
        assert placements_plain == placements_armed
        assert plain.total_cost() == armed.total_cost()
        assert plain.rates.version == armed.rates.version == 0

    def test_default_service_exposes_no_adaptive_metrics(self):
        plain, _ = build_service(adaptivity=None)
        armed, _ = build_service(adaptivity=AdaptivityConfig())
        plain_names = set(plain.registry.names())
        armed_names = set(armed.registry.names())
        assert not {n for n in plain_names if n.startswith("adaptive_")}
        assert {n for n in armed_names if n.startswith("adaptive_")}
        # and the loop adds nothing else
        assert plain_names == {
            n for n in armed_names if not n.startswith("adaptive_")
        }
