"""MigrationDiff minimality on hand-built plans."""

import numpy as np
import pytest

from repro.adaptive.diff import diff_deployments
from repro.core.cost import RateModel
from repro.query.deployment import Deployment
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec


def make_world():
    rates = RateModel(
        {
            "A": StreamSpec("A", 0, rate=100.0),
            "B": StreamSpec("B", 1, rate=40.0),
            "C": StreamSpec("C", 2, rate=10.0),
        }
    )
    query = Query(
        "q",
        ["A", "B", "C"],
        sink=3,
        predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.05)],
    )
    costs = np.array(
        [
            [0.0, 1.0, 2.0, 3.0],
            [1.0, 0.0, 1.0, 2.0],
            [2.0, 1.0, 0.0, 1.0],
            [3.0, 2.0, 1.0, 0.0],
        ]
    )
    return rates, query, costs


def left_deep(query, nodes):
    """(A x B) x C with the two joins at the given nodes."""
    a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
    ab = Join(a, b)
    abc = Join(ab, c)
    placement = {a: 0, b: 1, c: 2, ab: nodes[0], abc: nodes[1]}
    return Deployment(query=query, plan=abc, placement=placement)


class TestDiffMinimality:
    def test_identical_deployments_are_a_noop(self):
        rates, query, _ = make_world()
        old = left_deep(query, (1, 2))
        new = left_deep(query, (1, 2))
        diff = diff_deployments(old, new, rates)
        assert diff.is_noop
        assert len(diff.kept) == 2
        assert diff.moved == [] and diff.added == [] and diff.removed == []

    def test_single_relocation_moves_exactly_one_operator(self):
        rates, query, costs = make_world()
        old = left_deep(query, (1, 2))
        new = left_deep(query, (0, 2))  # only the A*B join moves 1 -> 0
        diff = diff_deployments(old, new, rates, bytes_per_tuple=8.0)
        assert len(diff.moved) == 1
        move = diff.moved[0]
        assert move.signature.sources == frozenset({"A", "B"})
        assert (move.old_node, move.new_node) == (1, 0)
        # the root join stayed put -- it must NOT be touched
        assert [sig.sources for sig, _ in diff.kept] == [frozenset({"A", "B", "C"})]
        # window state: both input windows at the current rates
        window = query.view_signature(frozenset({"A", "B"})).window
        expected_tuples = (rates.rate_for(query, {"A"}) + rates.rate_for(query, {"B"})) * window
        assert move.state_tuples == pytest.approx(expected_tuples)
        assert move.state_bytes == pytest.approx(expected_tuples * 8.0)
        assert diff.transfer_cost(costs) == pytest.approx(
            move.state_bytes * costs[1, 0]
        )

    def test_join_reorder_adds_and_removes(self):
        rates, query, _ = make_world()
        old = left_deep(query, (1, 2))
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        bc = Join(b, c)
        abc = Join(a, bc)
        new = Deployment(
            query=query, plan=abc, placement={a: 0, b: 1, c: 2, bc: 2, abc: 2}
        )
        diff = diff_deployments(old, new, rates)
        assert [sig.sources for sig, _ in diff.removed] == [frozenset({"A", "B"})]
        assert [sig.sources for sig, _ in diff.added] == [frozenset({"B", "C"})]
        # the full join survives at node 2 in both -> kept, not moved
        assert [sig.sources for sig, _ in diff.kept] == [frozenset({"A", "B", "C"})]
        assert not diff.moved

    def test_reused_view_leaves_are_preserved_not_moved(self):
        rates, query, _ = make_world()
        ab_leaf, c = Leaf.of("A", "B"), Leaf.of("C")
        plan = Join(ab_leaf, c)
        old = Deployment(query=query, plan=plan, placement={ab_leaf: 1, c: 2, plan: 2})
        new = Deployment(query=query, plan=plan, placement={ab_leaf: 1, c: 2, plan: 3})
        diff = diff_deployments(old, new, rates)
        # the reused derived stream belongs to its provider, not to us
        assert [sig.sources for sig in diff.reused_kept] == [frozenset({"A", "B"})]
        assert len(diff.moved) == 1  # only our own root join moved
        assert diff.moved[0].signature.sources == frozenset({"A", "B", "C"})

    def test_cross_query_diff_is_rejected(self):
        rates, query, _ = make_world()
        other = Query(
            "other",
            ["A", "B", "C"],
            sink=3,
            predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.05)],
        )
        with pytest.raises(ValueError):
            diff_deployments(left_deep(query, (1, 2)), left_deep(other, (1, 2)), rates)

    def test_to_dict_is_json_shaped(self):
        rates, query, _ = make_world()
        diff = diff_deployments(
            left_deep(query, (1, 2)), left_deep(query, (0, 2)), rates
        )
        doc = diff.to_dict()
        assert doc["query"] == "q"
        assert len(doc["moved"]) == 1
        assert doc["total_state_bytes"] > 0
