"""Migrator: cutover protocol, atomic swap, faults, rollback.

The acceptance property: a fault in the middle of a cutover leaves the
query either fully on its old deployment or fully on its new one --
never split across both.
"""

import pytest

from repro.adaptive.diff import diff_deployments
from repro.adaptive.migrate import MIGRATION_RETRY, Migrator
from repro.core.cost import RateModel
from repro.errors import DeploymentError
from repro.network.topology import transit_stub_by_size
from repro.query.deployment import Deployment
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec
from repro.resilience.faults import (
    CoordinatorOutage,
    FaultInjector,
    FaultPlan,
    MessageStorm,
)
from repro.runtime.engine import FlowEngine


def make_world():
    net = transit_stub_by_size(16, seed=1)
    rates = RateModel(
        {
            "A": StreamSpec("A", 0, rate=100.0),
            "B": StreamSpec("B", 1, rate=40.0),
            "C": StreamSpec("C", 2, rate=10.0),
        }
    )
    query = Query(
        "q",
        ["A", "B", "C"],
        sink=3,
        predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.05)],
    )
    return net, rates, query


def left_deep(query, nodes):
    a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
    ab = Join(a, b)
    abc = Join(ab, c)
    return Deployment(
        query=query, plan=abc, placement={a: 0, b: 1, c: 2, ab: nodes[0], abc: nodes[1]}
    )


def op_set(deployment):
    """The (operator signature, node) set a deployment pins down."""
    query = deployment.query
    return {
        (query.view_signature(subtree.sources), deployment.placement[subtree])
        for subtree in deployment.plan.subtrees()
        if isinstance(subtree, Join)
    }


def live_ops(engine, name):
    dep = next(d for d in engine.state.deployments if d.query.name == name)
    return op_set(dep)


def outage(node, duration):
    return FaultInjector(
        FaultPlan([CoordinatorOutage(time=0.0, node=node, duration=duration)])
    )


class TestCutoverProtocol:
    def test_clean_cutover_walks_the_three_phases_in_order(self):
        net, rates, query = make_world()
        diff = diff_deployments(
            left_deep(query, (1, 2)), left_deep(query, (0, 3)), rates
        )
        assert len(diff.moved) == 2
        timeline = Migrator(net).simulate_cutover(diff, coordinator=query.sink)
        assert timeline.committed
        assert timeline.retransmissions == 0
        assert (
            timeline.started
            < timeline.pause_done
            < timeline.transfer_done
            < timeline.completed
        )
        assert timeline.operators_moved == 2
        assert timeline.bytes_moved == pytest.approx(diff.total_state_bytes)
        # pause + 2x(command, ack) per phase per operator, at minimum
        assert timeline.messages >= 12

    def test_noop_diff_commits_instantly(self):
        net, rates, query = make_world()
        same = left_deep(query, (1, 2))
        diff = diff_deployments(same, left_deep(query, (1, 2)), rates)
        timeline = Migrator(net).simulate_cutover(diff, coordinator=query.sink)
        assert timeline.committed
        assert timeline.duration == 0.0
        assert timeline.messages == 0

    def test_bigger_state_takes_longer_to_ship(self):
        net, rates, query = make_world()
        old, new = left_deep(query, (1, 2)), left_deep(query, (0, 2))
        small = diff_deployments(old, new, rates, bytes_per_tuple=1.0)
        big = diff_deployments(old, new, rates, bytes_per_tuple=4096.0)
        migrator = Migrator(net, seconds_per_byte=1e-4)
        t_small = migrator.simulate_cutover(small, coordinator=query.sink)
        t_big = migrator.simulate_cutover(big, coordinator=query.sink)
        assert t_big.duration > t_small.duration


class TestAtomicSwap:
    def test_commit_swaps_the_engine_to_the_candidate(self):
        net, rates, query = make_world()
        old, candidate = left_deep(query, (1, 2)), left_deep(query, (0, 3))
        engine = FlowEngine(net, rates)
        engine.deploy(old)
        diff = diff_deployments(old, candidate, rates)
        outcome = Migrator(net).execute(engine, old, candidate, diff, now=5.0)
        assert outcome.committed
        assert outcome.operators_moved == 2
        assert live_ops(engine, "q") == op_set(candidate)
        assert outcome.new_cost == pytest.approx(engine.state.query_cost("q"))
        assert outcome.timeline is not None and outcome.timeline.started == 5.0

    def test_long_outage_aborts_and_leaves_fully_old(self):
        net, rates, query = make_world()
        old, candidate = left_deep(query, (1, 2)), left_deep(query, (0, 3))
        engine = FlowEngine(net, rates)
        engine.deploy(old)
        cost_before = engine.state.query_cost("q")
        diff = diff_deployments(old, candidate, rates)
        migrator = Migrator(net, faults=outage(query.sink, duration=1e9))
        outcome = migrator.execute(engine, old, candidate, diff)
        assert not outcome.committed
        assert not outcome.rolled_back  # aborted before the swap
        assert "retransmission budget" in outcome.reason
        assert live_ops(engine, "q") == op_set(old)
        assert engine.state.query_cost("q") == pytest.approx(cost_before)

    def test_short_outage_rides_out_on_retransmissions(self):
        net, rates, query = make_world()
        old, candidate = left_deep(query, (1, 2)), left_deep(query, (0, 3))
        engine = FlowEngine(net, rates)
        engine.deploy(old)
        diff = diff_deployments(old, candidate, rates)
        # MIGRATION_RETRY retransmits at +0.05/+0.15/+0.35/+0.75; an
        # outage of 0.1 swallows the first send and the first resend.
        migrator = Migrator(net, faults=outage(query.sink, duration=0.1))
        outcome = migrator.execute(engine, old, candidate, diff)
        assert outcome.committed
        assert outcome.timeline.retransmissions > 0
        assert live_ops(engine, "q") == op_set(candidate)

    def test_failed_candidate_install_rolls_back_to_old(self, monkeypatch):
        net, rates, query = make_world()
        old, candidate = left_deep(query, (1, 2)), left_deep(query, (0, 3))
        engine = FlowEngine(net, rates)
        engine.deploy(old)
        diff = diff_deployments(old, candidate, rates)
        real_deploy = engine.deploy

        def flaky_deploy(deployment, time=None):
            if deployment is candidate:
                raise DeploymentError("node lost between planning and install")
            return real_deploy(deployment, time)

        monkeypatch.setattr(engine, "deploy", flaky_deploy)
        outcome = Migrator(net).execute(engine, old, candidate, diff)
        assert not outcome.committed
        assert outcome.rolled_back
        assert "rolled back" in outcome.reason
        assert live_ops(engine, "q") == op_set(old)
        assert outcome.new_cost == pytest.approx(outcome.old_cost)


class TestNeverSplit:
    @pytest.mark.parametrize("seed", range(8))
    def test_storm_leaves_query_fully_old_or_fully_new(self, seed):
        """Property: whatever the storm does to the cutover messages,
        the engine ends on exactly one of the two deployments."""
        net, rates, query = make_world()
        old, candidate = left_deep(query, (1, 2)), left_deep(query, (0, 3))
        engine = FlowEngine(net, rates)
        engine.deploy(old)
        diff = diff_deployments(old, candidate, rates)
        faults = FaultInjector(
            FaultPlan(
                [MessageStorm(time=0.0, duration=1e9, drop=0.55, duplicate=0.2)],
                seed=seed,
            )
        )
        retry = MIGRATION_RETRY
        outcome = Migrator(net, faults=faults, retry=retry).execute(
            engine, old, candidate, diff
        )
        final = live_ops(engine, "q")
        if outcome.committed:
            assert final == op_set(candidate)
        else:
            assert final == op_set(old)
        assert final in (op_set(old), op_set(candidate))  # never a mix
