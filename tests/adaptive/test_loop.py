"""The closed loop end to end: drift in, migrations out, then quiet.

Drives a live :class:`StreamQueryService` through a step-drift timeline
and checks that the adaptive service re-optimizes onto a cheaper
placement than a static one, then settles without flapping.
"""

import pytest

import repro
from repro.adaptive import AdaptivityConfig
from repro.core.cost import RateModel, deployment_cost
from repro.resilience.faults import FaultInjector, FaultPlan, StaleStatistics
from repro.service import StreamQueryService
from repro.workload import drift_timeline


CONFIG = AdaptivityConfig(
    alpha=0.5,
    hysteresis_ticks=2,
    publish_cooldown=2.0,
    query_cooldown=2.0,
    max_migrations_per_tick=4,
)


def build_service(adaptivity=None):
    net = repro.transit_stub_by_size(24, seed=7)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(1, 3)),
        seed=11,
    )
    rates = workload.rate_model()
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    service = StreamQueryService(
        optimizer, net, rates, hierarchy=hierarchy, adaptivity=adaptivity
    )
    for query in workload.queries:
        service.submit(query)
    return service, workload, net


def drive(service, timeline, ticks):
    """Feed the timeline's true rates as observations, tick by tick."""
    reports = []
    for tick in range(1, ticks + 1):
        now = float(tick)
        if service.adaptivity is not None:
            service.adaptivity.observe_rates(timeline.rates_at(now))
        reports.append(service.tick(now))
    return reports


class TestClosedLoop:
    def test_step_drift_migrates_onto_a_cheaper_placement(self):
        adaptive, workload, net = build_service(adaptivity=CONFIG)
        static, _, _ = build_service(adaptivity=None)
        timeline = drift_timeline(
            workload.rate_model().streams, kind="step", at=3.0, factor=6.0
        )
        a_reports = drive(adaptive, timeline, ticks=20)
        drive(static, timeline, ticks=20)

        migrated = [name for r in a_reports for name in r.migrated]
        drifted = {s for r in a_reports for s in r.drift_streams}
        assert migrated, "the step drift must trigger at least one migration"
        assert drifted, "drift publications must surface in tick reports"

        # score both placements under the true post-step rates
        oracle = RateModel(timeline.streams_at(20.0))
        costs = net.cost_matrix()
        adaptive_cost = sum(
            deployment_cost(d, costs, oracle) for d in adaptive.engine.state.deployments
        )
        static_cost = sum(
            deployment_cost(d, costs, oracle) for d in static.engine.state.deployments
        )
        assert adaptive_cost < static_cost

        summary = adaptive.adaptivity.summary()
        assert summary["migrations_committed"] == len(migrated)
        assert summary["operators_moved"] >= len(migrated)
        assert summary["state_bytes_moved"] > 0

    def test_loop_settles_after_the_step(self):
        """Convergence: once the new rates are published and acted on,
        a constant signal must not cause further migrations."""
        service, workload, _ = build_service(adaptivity=CONFIG)
        timeline = drift_timeline(
            workload.rate_model().streams, kind="step", at=3.0, factor=6.0
        )
        reports = drive(service, timeline, ticks=30)
        migrations_per_tick = [len(r.migrated) for r in reports]
        assert sum(migrations_per_tick) >= 1
        assert sum(migrations_per_tick[15:]) == 0, "loop must not flap"
        # and the monitor stops publishing once its estimate is current
        assert sum(1 for r in reports[15:] if r.drift_streams) == 0

    def test_adaptive_metrics_flow_through_the_registry(self):
        service, workload, _ = build_service(adaptivity=CONFIG)
        timeline = drift_timeline(
            workload.rate_model().streams, kind="step", at=3.0, factor=6.0
        )
        drive(service, timeline, ticks=12)
        names = set(service.registry.names())
        assert "adaptive_migrations_total" in names
        assert "adaptive_drift_events_total" in names
        assert service.registry.get("adaptive_migrations_total").value >= 1

    def test_frozen_statistics_window_defers_publication(self):
        """A StaleStatistics fault must gate the monitor's publications
        -- drift detected inside the window only lands after it."""
        faults = FaultInjector(
            FaultPlan([StaleStatistics(time=0.0, duration=8.0)])
        )
        net = repro.transit_stub_by_size(24, seed=7)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(1, 3)),
            seed=11,
        )
        rates = workload.rate_model()
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        service = StreamQueryService(
            optimizer,
            net,
            rates,
            hierarchy=hierarchy,
            faults=faults,
            adaptivity=CONFIG,
        )
        for query in workload.queries:
            service.submit(query)
        timeline = drift_timeline(rates.streams, kind="step", at=1.0, factor=6.0)
        reports = drive(service, timeline, ticks=14)
        in_window = [r for r in reports if r.time <= 8.0]
        after = [r for r in reports if r.time > 8.0]
        assert all(not r.drift_streams for r in in_window)
        assert any(r.drift_streams for r in after)


class TestNullDefault:
    def test_default_service_has_no_adaptivity(self):
        service, _, _ = build_service(adaptivity=None)
        assert service.adaptivity is None
        report = service.tick(1.0)
        assert report.migrated == [] and report.drift_streams == []
        assert not any(n.startswith("adaptive_") for n in service.registry.names())
