"""StatsMonitor: EWMA convergence, drift hysteresis, publication."""

import pytest

from repro.adaptive.stats import EwmaEstimator, StatsMonitor
from repro.core.cost import RateModel
from repro.query.stream import StreamSpec


def make_rates():
    return RateModel(
        {
            "A": StreamSpec("A", 0, rate=100.0),
            "B": StreamSpec("B", 1, rate=40.0),
        }
    )


class TestEwmaEstimator:
    def test_converges_to_a_constant_signal(self):
        est = EwmaEstimator(alpha=0.3, initial=100.0)
        for _ in range(60):
            est.update(400.0)
        assert est.value == pytest.approx(400.0, rel=1e-3)

    def test_first_sample_seeds_an_empty_estimator(self):
        est = EwmaEstimator(alpha=0.5)
        assert est.value is None
        est.update(7.0)
        assert est.value == 7.0
        assert est.samples == 1

    def test_higher_alpha_reacts_faster(self):
        slow, fast = EwmaEstimator(0.1, 100.0), EwmaEstimator(0.6, 100.0)
        for _ in range(5):
            slow.update(200.0)
            fast.update(200.0)
        assert fast.value > slow.value

    def test_alpha_is_validated(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)


class TestDriftDetection:
    def test_no_observations_no_drift(self):
        monitor = StatsMonitor(make_rates())
        assert monitor.drifted() == []
        assert monitor.maybe_publish(1.0) is None

    def test_single_tick_spike_does_not_publish(self):
        """Hysteresis: one breaching check must not fire a publication."""
        monitor = StatsMonitor(
            make_rates(), alpha=1.0, drift_threshold=0.2, hysteresis_ticks=2,
            publish_cooldown=0.0,
        )
        monitor.observe_rate("A", 500.0)  # alpha=1: estimate jumps at once
        assert monitor.maybe_publish(1.0) is None  # first breach: streak 1 < 2
        monitor.observe_rate("A", 100.0)  # spike gone
        assert monitor.maybe_publish(2.0) is None  # streak reset
        assert monitor.rates.version == 0

    def test_sustained_drift_publishes_after_hysteresis(self):
        rates = make_rates()
        monitor = StatsMonitor(
            rates, alpha=1.0, drift_threshold=0.2, hysteresis_ticks=2,
            publish_cooldown=0.0,
        )
        monitor.observe_rate("A", 500.0)
        assert monitor.maybe_publish(1.0) is None
        monitor.observe_rate("A", 500.0)
        event = monitor.maybe_publish(2.0)
        assert event is not None
        assert event.streams == ["A"]
        assert rates.version == 1
        assert rates.stream("A").rate == pytest.approx(500.0)
        # the un-drifted stream is untouched
        assert rates.stream("B").rate == pytest.approx(40.0)

    def test_no_flapping_after_publication(self):
        """Once published, the estimate IS the published rate -- the same
        observations must not re-publish forever."""
        monitor = StatsMonitor(
            make_rates(), alpha=1.0, drift_threshold=0.2, hysteresis_ticks=1,
            publish_cooldown=0.0,
        )
        monitor.observe_rate("A", 500.0)
        assert monitor.maybe_publish(1.0) is not None
        for tick in range(2, 12):
            monitor.observe_rate("A", 500.0)
            assert monitor.maybe_publish(float(tick)) is None
        assert monitor.rates.version == 1

    def test_publish_cooldown_rate_limits(self):
        monitor = StatsMonitor(
            make_rates(), alpha=1.0, drift_threshold=0.1, hysteresis_ticks=1,
            publish_cooldown=5.0,
        )
        monitor.observe_rate("A", 300.0)
        assert monitor.maybe_publish(1.0) is not None
        monitor.observe_rate("A", 900.0)  # drifts again immediately
        assert monitor.maybe_publish(2.0) is None  # inside the cooldown
        assert monitor.maybe_publish(6.0) is not None  # past it

    def test_observation_validation(self):
        monitor = StatsMonitor(make_rates())
        with pytest.raises(KeyError):
            monitor.observe_rate("NOPE", 1.0)
        with pytest.raises(ValueError):
            monitor.observe_rate("A", -1.0)

    def test_selectivity_estimation_is_symmetric(self):
        monitor = StatsMonitor(make_rates(), alpha=1.0)
        monitor.observe_selectivity("A", "B", 0.25)
        assert monitor.estimated_selectivity("B", "A") == pytest.approx(0.25)
        assert monitor.estimated_selectivity("A", "A") is None
        with pytest.raises(ValueError):
            monitor.observe_selectivity("A", "B", 1.5)

    def test_ingest_dataplane_feeds_base_streams_only(self):
        class FakeReport:
            measured_rates = {"A": 250.0, "A*B": 10.0, "UNKNOWN": 5.0}

        monitor = StatsMonitor(make_rates(), alpha=1.0)
        assert monitor.ingest_dataplane(FakeReport()) == 1
        assert monitor.estimated_rate("A") == pytest.approx(250.0)
        assert monitor.estimated_rate("B") == pytest.approx(40.0)

    def test_summary_reports_counters(self):
        monitor = StatsMonitor(make_rates(), alpha=1.0, hysteresis_ticks=1,
                               publish_cooldown=0.0)
        monitor.observe_rate("A", 500.0)
        monitor.maybe_publish(1.0)
        summary = monitor.summary()
        assert summary["streams_monitored"] == 2
        assert summary["publications"] == 1
        assert summary["samples"] == 1
