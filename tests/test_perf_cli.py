"""Smoke tests for ``repro perf`` and the causal ``repro trace`` modes."""

import json

import pytest

from repro.cli import build_parser, main


class TestPerfCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["perf", "run"])
        assert args.perf_command == "run"
        assert args.repeats == 3
        assert args.trajectory == "BENCH_trajectory.json"
        assert args.func.__name__ == "_cmd_perf"

    def test_run_then_compare_then_report(self, tmp_path, capsys):
        trajectory = str(tmp_path / "BENCH_trajectory.json")
        rc = main([
            "perf", "run", "--cases", "plan_top_down", "--repeats", "1",
            "--label", "smoke", "--trajectory", trajectory,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perf lab: ran 1 case(s)" in out
        assert "plan_top_down:" in out
        doc = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
        assert doc["kind"] == "repro.perf_trajectory"
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["label"] == "smoke"
        assert doc["entries"][0]["cases"]["plan_top_down"]["ops"]

        rc = main(["perf", "compare", "--trajectory", trajectory])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out

        rc = main(["perf", "report", "--trajectory", trajectory])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(1 entries)" in out
        assert "label=smoke" in out

    def test_compare_json_output(self, tmp_path, capsys):
        trajectory = str(tmp_path / "BENCH_trajectory.json")
        main([
            "perf", "run", "--cases", "plan_top_down", "--repeats", "1",
            "--trajectory", trajectory,
        ])
        capsys.readouterr()
        rc = main(["perf", "compare", "--trajectory", trajectory, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["findings"]

    def test_compare_fails_on_injected_regression(self, tmp_path, capsys):
        trajectory = tmp_path / "BENCH_trajectory.json"
        doc = {
            "kind": "repro.perf_trajectory",
            "version": 1,
            "entries": [
                {"label": "", "cases": {"plan": {"ops": {"messages": 100}}}},
                {"label": "", "cases": {"plan": {"ops": {"messages": 200}}}},
            ],
        }
        trajectory.write_text(json.dumps(doc))
        rc = main(["perf", "compare", "--trajectory", str(trajectory)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_empty_trajectory_errors(self, tmp_path, capsys):
        trajectory = str(tmp_path / "missing.json")
        rc = main(["perf", "compare", "--trajectory", trajectory])
        assert rc == 2
        assert "no entries" in capsys.readouterr().err

    def test_run_unknown_case_errors(self, tmp_path, capsys):
        rc = main([
            "perf", "run", "--cases", "bogus",
            "--trajectory", str(tmp_path / "t.json"),
        ])
        assert rc == 2
        assert "unknown perf cases" in capsys.readouterr().err


class TestTraceCausalCli:
    ARGS = [
        "trace", "--query", "0", "--nodes", "24", "--streams", "5",
        "--queries", "4", "--max-cs", "4", "--seed", "9",
    ]

    def test_causal_summary_and_tree(self, capsys):
        rc = main(self.ARGS + ["--causal"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "causal trace: top-down deploying" in out
        assert "data-flow cost" in out
        assert "deploy:" in out
        assert "QuerySubmit" in out

    def test_causal_json_envelope(self, capsys):
        rc = main(self.ARGS + ["--causal", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "repro.causal_trace"
        (trace,) = doc["traces"]
        assert trace["hops"]
        assert trace["flow_cost"] > 0

    def test_chrome_export(self, capsys):
        rc = main(self.ARGS + ["--chrome"])
        assert rc == 0
        events = json.loads(capsys.readouterr().out)
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_causal_rejects_flat_algorithms(self, capsys):
        rc = main(self.ARGS + ["--causal", "--algorithm", "optimal"])
        assert rc == 2
        assert "hierarchical" in capsys.readouterr().err
