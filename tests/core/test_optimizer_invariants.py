"""Structural invariants of every optimizer over random instances.

Hypothesis-driven: for any generated workload, every planner must emit a
deployment that (a) covers exactly the query's sources, (b) has one join
per non-reused merge, (c) places leaves at sources/advertised nodes and
joins on real network nodes, (d) reports sane stats, and (e) survives
application to a deployment state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.cost import RateModel
from repro.network.topology import random_geometric

from tests.conftest import make_catalog, make_query

PLANNERS = ["top-down", "bottom-up", "optimal", "plan-then-deploy", "relaxation", "in-network"]


def _env(seed):
    net = random_geometric(18, seed=seed % 6)
    names, streams, sel = make_catalog(net, 6, seed)
    rates = RateModel(streams)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=seed)
    return net, names, sel, rates, hierarchy


def _check_structure(net, rates, query, deployment, state):
    # (a) coverage
    assert deployment.plan.sources == frozenset(query.sources)
    # (b) joins consistent with leaves: K sources split across leaves,
    # one join per merge of the leaf set
    leaves = deployment.plan.leaves()
    assert deployment.plan.num_joins == len(leaves) - 1
    # (c) placements
    for leaf in leaves:
        if leaf.is_base_stream:
            assert deployment.placement[leaf] == rates.source(leaf.stream)
    for join, node in deployment.operator_nodes.items():
        assert net.has_node(node)
    # (d) stats
    assert deployment.stats.get("plans_examined", 0) >= 0
    # (e) state application (validates reuse references too)
    added = state.apply(deployment)
    assert added >= 0


class TestAllPlannersStructure:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_sequential_deployments_all_planners(self, seed):
        net, names, sel, rates, hierarchy = _env(seed)
        rng = np.random.default_rng(seed)
        queries = [make_query(f"q{i}", names, sel, net, rng, k=3) for i in range(3)]
        for name in PLANNERS:
            state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
            optimizer = repro.make_optimizer(name, net, rates, hierarchy=hierarchy)
            for query in queries:
                deployment = optimizer.plan(query, state)
                _check_structure(net, rates, query, deployment, state)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_hierarchical_stats_traces(self, seed):
        """TD/BU must leave protocol-simulable traces with sane linkage."""
        net, names, sel, rates, hierarchy = _env(seed)
        rng = np.random.default_rng(seed + 1)
        query = make_query("q", names, sel, net, rng, k=4)
        for name in ("top-down", "bottom-up"):
            optimizer = repro.make_optimizer(name, net, rates, hierarchy=hierarchy)
            deployment = optimizer.plan(query)
            trace = deployment.stats["task_trace"]
            assert trace, "hierarchical planners must record a task trace"
            for idx, entry in enumerate(trace):
                assert entry["parent"] < idx  # parents precede children
                assert entry["plans"] >= 0
                assert net.has_node(entry["node"])
            assert trace[0]["parent"] == -1
            # deploy targets cover all operator nodes
            deploy_nodes = set().union(*(set(e["deploy_nodes"]) for e in trace))
            operator_nodes = set(deployment.operator_nodes.values())
            assert operator_nodes <= deploy_nodes

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_reuse_deployments_always_applicable(self, seed):
        """With heavy overlap, whatever the planners reuse must apply
        cleanly (no dangling reuse references)."""
        net, names, sel, rates, hierarchy = _env(seed)
        rng = np.random.default_rng(seed + 2)
        # force overlap: every query over the same 4 streams
        fixed = sorted(names[:4])
        queries = []
        for i in range(4):
            queries.append(
                make_query(f"q{i}", fixed, sel, net, rng, k=3)
            )
        for name in ("top-down", "bottom-up", "optimal"):
            state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
            optimizer = repro.make_optimizer(name, net, rates, hierarchy=hierarchy, reuse=True)
            for query in queries:
                deployment = optimizer.plan(query, state)
                state.apply(deployment)
            assert state.total_cost() > 0
