"""Tests for the rate model and the communication-cost objective."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import RateModel, deployment_cost
from repro.core.enumeration import all_join_trees
from repro.query.deployment import Deployment
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import Filter, StreamSpec


@pytest.fixture()
def streams():
    return {
        "A": StreamSpec("A", 0, 100.0),
        "B": StreamSpec("B", 1, 200.0),
        "C": StreamSpec("C", 2, 50.0),
    }


@pytest.fixture()
def rates(streams):
    return RateModel(streams)


class TestRateModel:
    def test_base_rate(self, rates):
        q = Query("q", ["A"], sink=0)
        assert rates.rate_for(q, {"A"}) == 100.0

    def test_filter_scales_rate(self, rates):
        q = Query("q", ["A"], sink=0, filters=[Filter("A", "p", 0.25)])
        assert rates.rate_for(q, {"A"}) == 25.0

    def test_join_rate(self, rates):
        q = Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.01)])
        assert rates.rate_for(q, {"A", "B"}) == pytest.approx(100 * 200 * 0.01)

    def test_missing_predicate_is_cross_product(self, rates):
        q = Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.1)],
        )
        # {A, C} has no predicate: cross product rate
        assert rates.rate_for(q, {"A", "C"}) == pytest.approx(100 * 50)

    def test_unknown_stream(self, rates):
        with pytest.raises(KeyError, match="unknown stream"):
            rates.stream("Z")

    def test_source_lookup(self, rates):
        assert rates.source("B") == 1

    def test_rate_cached_by_signature(self, rates):
        q = Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.01)])
        r1 = rates.rate_for(q, {"A", "B"})
        q2 = Query("q2", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.01)])
        assert rates.rate_for(q2, {"A", "B"}) == r1

    def test_invalid_inflation(self, streams):
        with pytest.raises(ValueError):
            RateModel(streams, reuse_rate_inflation=0.9)

    def test_split_selectivity(self, rates):
        q = Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.01), JoinPredicate("B", "C", 0.1)],
        )
        assert rates.split_selectivity(q, frozenset({"A"}), frozenset({"B", "C"})) == 0.01
        assert rates.split_selectivity(q, frozenset({"A", "C"}), frozenset({"B"})) == pytest.approx(0.001)
        assert rates.split_selectivity(q, frozenset({"A"}), frozenset({"C"})) == 1.0


class TestJoinOrderInvariance:
    """Final output rate must not depend on the chosen tree shape."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_all_trees_same_root_rate(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        names = ["A", "B", "C", "D"]
        streams = {
            n: StreamSpec(n, i, float(rng.uniform(10, 100))) for i, n in enumerate(names)
        }
        rates = RateModel(streams)
        preds = [
            JoinPredicate(names[i], names[i + 1], float(rng.uniform(0.001, 0.5)))
            for i in range(3)
        ]
        q = Query("q", names, sink=0, predicates=preds)
        trees = all_join_trees([frozenset((n,)) for n in names])
        root_rates = {rates.rate_for(q, t.sources) for t in trees}
        assert len(root_rates) == 1

    def test_intermediate_rates_differ_by_shape(self, rates):
        q = Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[JoinPredicate("A", "B", 0.001), JoinPredicate("B", "C", 0.5)],
        )
        t1 = Join(Join(Leaf.of("A"), Leaf.of("B")), Leaf.of("C"))
        t2 = Join(Join(Leaf.of("B"), Leaf.of("C")), Leaf.of("A"))
        v1 = rates.intermediate_volume(q, t1)
        v2 = rates.intermediate_volume(q, t2)
        assert v1 != pytest.approx(v2)


class TestFlowRates:
    def test_reuse_leaf_inflated(self, streams):
        rates = RateModel(streams, reuse_rate_inflation=2.0)
        q = Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.01)])
        reuse = Leaf.of("A", "B")
        flows = rates.flow_rates(q, reuse)
        assert flows[reuse] == pytest.approx(2.0 * rates.rate_for(q, {"A", "B"}))

    def test_base_leaf_not_inflated(self, streams):
        rates = RateModel(streams, reuse_rate_inflation=2.0)
        q = Query("q", ["A"], sink=0)
        leaf = Leaf.of("A")
        assert rates.flow_rates(q, leaf)[leaf] == 100.0


class TestDeploymentCost:
    def test_line_network_hand_computed(self, rates):
        from repro.network.topology import line

        net = line(5, cost=2.0)
        q = Query("q", ["A", "B"], sink=4, predicates=[JoinPredicate("A", "B", 0.01)])
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        d = Deployment(query=q, plan=join, placement={a: 0, b: 1, join: 2})
        cost = deployment_cost(d, net.cost_matrix(), rates)
        expected = 100 * 2 * 2.0 + 200 * 1 * 2.0 + (100 * 200 * 0.01) * 2 * 2.0
        assert cost == pytest.approx(expected)

    def test_sink_colocation_free_delivery(self, rates):
        from repro.network.topology import line

        net = line(3)
        q = Query("q", ["A", "B"], sink=2, predicates=[JoinPredicate("A", "B", 0.01)])
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        d = Deployment(query=q, plan=join, placement={a: 0, b: 1, join: 2})
        cost = deployment_cost(d, net.cost_matrix(), rates)
        assert cost == pytest.approx(100 * 2 + 200 * 1)
