"""Tests for join-tree enumeration and reuse partitioning."""

import pytest

from repro.core.enumeration import (
    all_join_trees,
    connected_join_trees,
    count_bushy_trees,
    reuse_partitions,
    tree_is_connected,
    trees_with_reuse,
)
from repro.query.plan import Leaf
from repro.query.query import JoinPredicate, Query


def _chain_query(names):
    preds = [JoinPredicate(names[i], names[i + 1], 0.1) for i in range(len(names) - 1)]
    return Query("q", names, sink=0, predicates=preds)


class TestCounts:
    @pytest.mark.parametrize("k,expected", [(1, 1), (2, 1), (3, 3), (4, 15), (5, 105), (6, 945)])
    def test_double_factorial(self, k, expected):
        assert count_bushy_trees(k) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            count_bushy_trees(0)


class TestAllJoinTrees:
    def test_counts_match(self):
        for k in range(1, 6):
            views = [frozenset((f"S{i}",)) for i in range(k)]
            trees = all_join_trees(views)
            assert len(trees) == count_bushy_trees(k)

    def test_trees_cover_all_views(self):
        views = [frozenset((c,)) for c in "ABCD"]
        for tree in all_join_trees(views):
            assert tree.sources == frozenset("ABCD")

    def test_no_duplicates(self):
        views = [frozenset((c,)) for c in "ABCDE"]
        trees = all_join_trees(views)
        assert len(set(trees)) == len(trees)

    def test_multi_stream_views_as_leaves(self):
        views = [frozenset({"A", "B"}), frozenset({"C"})]
        trees = all_join_trees(views)
        assert len(trees) == 1
        leaves = trees[0].leaves()
        assert {l.view for l in leaves} == set(views)

    def test_overlapping_views_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            all_join_trees([frozenset({"A", "B"}), frozenset({"B"})])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_join_trees([])


class TestConnectivity:
    def test_chain_connected_trees(self):
        q = _chain_query(["A", "B", "C"])
        trees = connected_join_trees(q)
        # (A x B) x C and A x (B x C) are connected; (A x C) x B is not.
        assert len(trees) == 2
        for t in trees:
            assert tree_is_connected(q, t)

    def test_star_predicates_allow_more_trees(self):
        q = Query(
            "q",
            ["HUB", "X", "Y"],
            sink=0,
            predicates=[JoinPredicate("HUB", "X", 0.1), JoinPredicate("HUB", "Y", 0.1)],
        )
        trees = connected_join_trees(q)
        assert len(trees) == 2  # (H x X) x Y and (H x Y) x X; (X x Y) first is a cross product

    def test_clique_allows_all_trees(self):
        q = Query(
            "q",
            ["A", "B", "C"],
            sink=0,
            predicates=[
                JoinPredicate("A", "B", 0.1),
                JoinPredicate("B", "C", 0.1),
                JoinPredicate("A", "C", 0.1),
            ],
        )
        assert len(connected_join_trees(q)) == count_bushy_trees(3)

    def test_fallback_when_nothing_connected(self):
        q = Query(
            "q",
            ["A", "B"],
            sink=0,
            predicates=[],
            allow_cross_products=True,
        )
        trees = connected_join_trees(q)
        assert len(trees) == 1  # falls back to the cross-product tree

    def test_cross_product_detection(self):
        q = _chain_query(["A", "B", "C"])
        from repro.query.plan import Join

        bad = Join(Join(Leaf.of("A"), Leaf.of("C")), Leaf.of("B"))
        assert not tree_is_connected(q, bad)


class TestReusePartitions:
    def test_identity_always_present(self):
        parts = reuse_partitions(frozenset({"A", "B"}), [])
        assert parts == [[frozenset({"A"}), frozenset({"B"})]]

    def test_single_reusable_view(self):
        parts = reuse_partitions(frozenset({"A", "B", "C"}), [frozenset({"A", "B"})])
        as_sets = [sorted(map(sorted, p)) for p in parts]
        assert len(parts) == 2
        assert [["A", "B"], ["C"]] in as_sets

    def test_full_view_reuse(self):
        full = frozenset({"A", "B"})
        parts = reuse_partitions(full, [full])
        assert [full] in parts

    def test_overlapping_views_generate_alternatives(self):
        sources = frozenset({"A", "B", "C"})
        parts = reuse_partitions(sources, [frozenset({"A", "B"}), frozenset({"B", "C"})])
        # identity, {AB}+C, A+{BC}
        assert len(parts) == 3

    def test_irrelevant_views_ignored(self):
        parts = reuse_partitions(frozenset({"A", "B"}), [frozenset({"C", "D"})])
        assert len(parts) == 1


class TestTreesWithReuse:
    def test_reuse_expands_candidates(self):
        q = _chain_query(["A", "B", "C"])
        without = trees_with_reuse(q, [])
        with_reuse = trees_with_reuse(q, [frozenset({"A", "B"})])
        assert len(with_reuse) > len(without)
        reuse_trees = [
            t for t in with_reuse if any(not l.is_base_stream for l in t.leaves())
        ]
        assert reuse_trees

    def test_full_reuse_single_leaf_tree(self):
        q = _chain_query(["A", "B"])
        trees = trees_with_reuse(q, [frozenset({"A", "B"})])
        leaf_trees = [t for t in trees if isinstance(t, Leaf)]
        assert len(leaf_trees) == 1

    def test_connected_only_filters(self):
        q = _chain_query(["A", "B", "C"])
        trees = trees_with_reuse(q, [], connected_only=True)
        assert all(tree_is_connected(q, t) for t in trees)
