"""Tests for local-search placement refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.random_placement import RandomPlacement
from repro.core.bottom_up import BottomUpOptimizer
from repro.core.cost import RateModel, deployment_cost
from repro.core.placement import optimal_tree_placement
from repro.core.refinement import refine_placement
from repro.hierarchy import build_hierarchy
from repro.network.topology import random_geometric
from repro.query.deployment import DeploymentState

from tests.conftest import make_catalog, make_query


def _instance(seed, nodes=20, streams=5):
    net = random_geometric(nodes, seed=seed % 5)
    names, specs, sel = make_catalog(net, streams, seed)
    rates = RateModel(specs)
    return net, names, sel, rates


class TestRefinement:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_never_worse(self, seed):
        net, names, sel, rates = _instance(seed)
        rng = np.random.default_rng(seed)
        q = make_query("q", names, sel, net, rng)
        d = RandomPlacement(net, rates, seed=seed).plan(q)
        costs = net.cost_matrix()
        refined, moves = refine_placement(d, costs, rates)
        assert deployment_cost(refined, costs, rates) <= deployment_cost(d, costs, rates) + 1e-9

    def test_unrestricted_refinement_reaches_tree_optimum(self):
        """Full-candidate hill climbing on a tree converges to the DP
        optimum for that tree (the placement objective is convex-ish in
        the single-operator coordinate sense on trees)."""
        net, names, sel, rates = _instance(7)
        rng = np.random.default_rng(7)
        q = make_query("q", names, sel, net, rng, k=4)
        d = RandomPlacement(net, rates, seed=1).plan(q)
        costs = net.cost_matrix()
        refined, _ = refine_placement(d, costs, rates, max_rounds=100)
        leaf_positions = {
            leaf: [rates.source(leaf.stream)] for leaf in d.plan.leaves()
        }
        dp = optimal_tree_placement(
            d.plan, net.nodes(), costs, leaf_positions,
            rates.flow_rates(q, d.plan), sink=q.sink,
        )
        assert deployment_cost(refined, costs, rates) == pytest.approx(dp.cost, rel=1e-6)

    def test_plan_structure_preserved(self):
        net, names, sel, rates = _instance(3)
        rng = np.random.default_rng(3)
        q = make_query("q", names, sel, net, rng)
        d = RandomPlacement(net, rates, seed=2).plan(q)
        refined, _ = refine_placement(d, net.cost_matrix(), rates)
        assert refined.plan == d.plan
        for leaf in refined.plan.leaves():
            assert refined.placement[leaf] == d.placement[leaf]

    def test_restricted_candidates_respected(self):
        net, names, sel, rates = _instance(4)
        rng = np.random.default_rng(4)
        q = make_query("q", names, sel, net, rng)
        d = RandomPlacement(net, rates, seed=3).plan(q)
        allowed = [0, 1, 2]
        refined, moves = refine_placement(d, net.cost_matrix(), rates, candidates=allowed)
        if moves:
            moved = [
                refined.placement[j]
                for j in refined.plan.joins()
                if refined.placement[j] != d.placement[j]
            ]
            assert all(n in allowed for n in moved)

    def test_improves_bottom_up(self):
        """Refinement closes part of Bottom-Up's placement gap."""
        net, names, sel, rates = _instance(8, nodes=30, streams=6)
        h = build_hierarchy(net, max_cs=4, seed=0)
        rng = np.random.default_rng(8)
        costs = net.cost_matrix()
        total_before = total_after = 0.0
        for i in range(6):
            q = make_query(f"q{i}", names, sel, net, rng)
            d = BottomUpOptimizer(h, rates, reuse=False).plan(q)
            refined, _ = refine_placement(d, costs, rates)
            total_before += deployment_cost(d, costs, rates)
            total_after += deployment_cost(refined, costs, rates)
        assert total_after <= total_before
        assert total_after < total_before * 0.999  # some improvement found

    def test_refined_deployment_deployable(self):
        net, names, sel, rates = _instance(5)
        rng = np.random.default_rng(5)
        q = make_query("q", names, sel, net, rng)
        d = RandomPlacement(net, rates, seed=4).plan(q)
        refined, _ = refine_placement(d, net.cost_matrix(), rates)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        assert state.apply(refined) > 0
        assert refined.stats.get("refinement_moves") is not None
