"""Tests for the optimal subset-DP planner vs literal brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import RateModel, deployment_cost
from repro.core.exhaustive import BruteForceSearch, OptimalPlanner
from repro.network.topology import line, random_geometric
from repro.query.deployment import DeploymentState
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec


def _random_instance(seed, num_nodes=7, k=3):
    net = random_geometric(num_nodes, seed=seed % 11)
    rng = np.random.default_rng(seed)
    names = [f"S{i}" for i in range(k)]
    streams = {
        n: StreamSpec(n, int(rng.integers(0, num_nodes)), float(rng.uniform(10, 100)))
        for n in names
    }
    rates = RateModel(streams)
    preds = [
        JoinPredicate(names[i], names[i + 1], float(rng.uniform(0.005, 0.2)))
        for i in range(k - 1)
    ]
    q = Query("q", names, sink=int(rng.integers(0, num_nodes)), predicates=preds)
    return net, rates, q


class TestOptimalPlanner:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_matches_brute_force(self, seed):
        net, rates, q = _random_instance(seed)
        costs = net.cost_matrix()
        dp = OptimalPlanner(net, rates).plan(q)
        bf = BruteForceSearch(net, rates).plan(q)
        assert deployment_cost(dp, costs, rates) == pytest.approx(
            deployment_cost(bf, costs, rates)
        )

    def test_matches_brute_force_k4(self):
        net, rates, q = _random_instance(17, num_nodes=6, k=4)
        costs = net.cost_matrix()
        dp = OptimalPlanner(net, rates).plan(q)
        bf = BruteForceSearch(net, rates).plan(q)
        assert deployment_cost(dp, costs, rates) == pytest.approx(
            deployment_cost(bf, costs, rates)
        )

    def test_estimate_matches_realized_cost(self):
        net, rates, q = _random_instance(5)
        dp = OptimalPlanner(net, rates).plan(q)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        assert state.apply(dp) == pytest.approx(dp.stats["cost_estimate"])

    def test_single_source_query(self):
        net, rates, _ = _random_instance(1)
        q = Query("q1", ["S0"], sink=3)
        d = OptimalPlanner(net, rates).plan(q)
        assert isinstance(d.plan, Leaf)
        assert d.placement[d.plan] == rates.source("S0")

    def test_respects_join_connectivity(self):
        net, rates, q = _random_instance(9)
        d = OptimalPlanner(net, rates).plan(q)
        from repro.core.enumeration import tree_is_connected

        assert tree_is_connected(q, d.plan)

    def test_infeasible_cross_product_only(self):
        net = line(4)
        streams = {"A": StreamSpec("A", 0, 10.0), "B": StreamSpec("B", 3, 10.0)}
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=1, predicates=[], allow_cross_products=True)
        d = OptimalPlanner(net, rates).plan(q)  # cross products allowed: fine
        assert d.plan.sources == frozenset({"A", "B"})

    def test_plans_examined_reports_lemma1(self):
        net, rates, q = _random_instance(2)
        from repro.core.bounds import exhaustive_space

        d = OptimalPlanner(net, rates).plan(q)
        assert d.stats["plans_examined"] == exhaustive_space(3, net.num_nodes)


class TestOptimalReuse:
    def test_reuses_deployed_view_when_cheaper(self):
        net = line(6)
        streams = {"A": StreamSpec("A", 0, 100.0), "B": StreamSpec("B", 1, 100.0)}
        rates = RateModel(streams)
        q1 = Query("q1", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.0001)])
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        planner = OptimalPlanner(net, rates, reuse=True)
        state.apply(planner.plan(q1, state))
        q2 = Query("q2", ["A", "B"], sink=4, predicates=[JoinPredicate("A", "B", 0.0001)])
        d2 = planner.plan(q2, state)
        # The tiny-output join already exists; recomputing would ship both
        # full-rate base streams again, so q2 must reuse.
        assert isinstance(d2.plan, Leaf)
        assert not d2.plan.is_base_stream
        cost2 = state.apply(d2)
        rate = rates.rate_for(q2, frozenset({"A", "B"}))
        assert cost2 <= rate * net.cost_matrix().max() + 1e-9

    def test_duplicates_when_reuse_is_far(self):
        # Sink far from the deployed view, sources nearby: duplicate.
        net = line(10)
        streams = {"A": StreamSpec("A", 8, 1.0), "B": StreamSpec("B", 9, 1.0)}
        rates = RateModel(streams)
        q1 = Query("q1", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 1.0)])
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        planner = OptimalPlanner(net, rates, reuse=True)
        d1 = planner.plan(q1, state)
        state.apply(d1)
        q2 = Query("q2", ["A", "B"], sink=9, predicates=[JoinPredicate("A", "B", 1.0)])
        d2 = planner.plan(q2, state)
        cost2 = state.apply(d2)
        # computing next to the sources/sink costs ~2 vs shipping the
        # deployed view from node 0's neighborhood
        assert cost2 <= 3.0

    def test_reuse_disabled_ignores_state(self):
        net = line(6)
        streams = {"A": StreamSpec("A", 0, 100.0), "B": StreamSpec("B", 1, 100.0)}
        rates = RateModel(streams)
        q1 = Query("q1", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.0001)])
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        planner = OptimalPlanner(net, rates, reuse=False)
        state.apply(planner.plan(q1, state))
        q2 = Query("q2", ["A", "B"], sink=4, predicates=[JoinPredicate("A", "B", 0.0001)])
        d2 = planner.plan(q2, state)
        assert not isinstance(d2.plan, Leaf)


class TestBruteForce:
    def test_stats_fields(self):
        net, rates, q = _random_instance(3, num_nodes=5)
        d = BruteForceSearch(net, rates).plan(q)
        assert d.stats["trees_examined"] >= 2
        assert d.stats["plans_examined"] >= d.stats["trees_examined"]

    def test_all_trees_mode(self):
        net, rates, q = _random_instance(4, num_nodes=5)
        connected = BruteForceSearch(net, rates, connected_only=True).plan(q)
        everything = BruteForceSearch(net, rates, connected_only=False).plan(q)
        assert everything.stats["trees_examined"] >= connected.stats["trees_examined"]
        costs = net.cost_matrix()
        assert deployment_cost(everything, costs, rates) <= deployment_cost(
            connected, costs, rates
        ) + 1e-9
