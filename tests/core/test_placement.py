"""Tests for the tree-placement DP against literal brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import RateModel
from repro.core.placement import (
    brute_force_tree_placement,
    nominal_assignments,
    optimal_tree_placement,
)
from repro.network.topology import line, random_geometric
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec


def _setup(seed, num_nodes=7):
    net = random_geometric(num_nodes, seed=seed)
    rng = np.random.default_rng(seed)
    names = ["A", "B", "C"]
    streams = {
        n: StreamSpec(n, int(rng.integers(0, num_nodes)), float(rng.uniform(10, 100)))
        for n in names
    }
    rates = RateModel(streams)
    q = Query(
        "q",
        names,
        sink=int(rng.integers(0, num_nodes)),
        predicates=[
            JoinPredicate("A", "B", float(rng.uniform(0.01, 0.2))),
            JoinPredicate("B", "C", float(rng.uniform(0.01, 0.2))),
        ],
    )
    return net, rates, q


class TestOptimalTreePlacement:
    def test_line_network_hand_checked(self):
        net = line(5)
        streams = {"A": StreamSpec("A", 0, 10.0), "B": StreamSpec("B", 4, 10.0)}
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=2, predicates=[JoinPredicate("A", "B", 0.001)])
        a, b = Leaf.of("A"), Leaf.of("B")
        tree = Join(a, b)
        result = optimal_tree_placement(
            tree,
            net.nodes(),
            net.cost_matrix(),
            {a: [0], b: [4]},
            rates.flow_rates(q, tree),
            sink=2,
        )
        # join output is tiny, so the operator should sit at the sink
        assert result.placement[tree] == 2
        assert result.cost == pytest.approx(10 * 2 + 10 * 2)

    def test_expanding_join_placed_at_sink(self):
        net = line(5)
        streams = {"A": StreamSpec("A", 0, 3.0), "B": StreamSpec("B", 1, 3.0)}
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=4, predicates=[JoinPredicate("A", "B", 1.0)])
        a, b = Leaf.of("A"), Leaf.of("B")
        tree = Join(a, b)
        result = optimal_tree_placement(
            tree, net.nodes(), net.cost_matrix(), {a: [0], b: [1]},
            rates.flow_rates(q, tree), sink=4,
        )
        # the join output (rate 9) dwarfs the inputs (rate 3), so the
        # operator must run at the sink to avoid shipping the big result
        assert result.placement[tree] == 4

    def test_leaf_tree_picks_cheapest_position(self):
        net = line(4)
        streams = {"A": StreamSpec("A", 0, 10.0)}
        rates = RateModel(streams)
        q = Query("q", ["A"], sink=3)
        leaf = Leaf.of("A")
        result = optimal_tree_placement(
            leaf, net.nodes(), net.cost_matrix(), {leaf: [0, 2]},
            rates.flow_rates(q, leaf), sink=3,
        )
        assert result.placement[leaf] == 2  # closer to the sink

    def test_sink_none_skips_delivery(self):
        net = line(3)
        streams = {"A": StreamSpec("A", 0, 5.0), "B": StreamSpec("B", 2, 5.0)}
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.1)])
        a, b = Leaf.of("A"), Leaf.of("B")
        tree = Join(a, b)
        result = optimal_tree_placement(
            tree, net.nodes(), net.cost_matrix(), {a: [0], b: [2]},
            rates.flow_rates(q, tree), sink=None,
        )
        assert result.cost == pytest.approx(min(5 * 2, 5 * 1 + 5 * 1))

    def test_missing_leaf_positions(self):
        net = line(3)
        a, b = Leaf.of("A"), Leaf.of("B")
        tree = Join(a, b)
        with pytest.raises(KeyError, match="no positions"):
            optimal_tree_placement(tree, net.nodes(), net.cost_matrix(), {a: [0]}, {a: 1.0, b: 1.0, tree: 1.0}, sink=None)

    def test_empty_candidates(self):
        a = Leaf.of("A")
        with pytest.raises(ValueError):
            optimal_tree_placement(a, [], np.zeros((2, 2)), {a: [0]}, {a: 1.0}, sink=None)

    def test_empty_leaf_positions(self):
        net = line(3)
        a = Leaf.of("A")
        with pytest.raises(ValueError, match="empty position set"):
            optimal_tree_placement(a, net.nodes(), net.cost_matrix(), {a: []}, {a: 1.0}, sink=None)

    def test_restricted_candidates(self):
        """Operators limited to a cluster; leaves may pin outside it."""
        net = line(6)
        streams = {"A": StreamSpec("A", 0, 10.0), "B": StreamSpec("B", 5, 10.0)}
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.001)])
        a, b = Leaf.of("A"), Leaf.of("B")
        tree = Join(a, b)
        result = optimal_tree_placement(
            tree, [1, 2], net.cost_matrix(), {a: [0], b: [5]},
            rates.flow_rates(q, tree), sink=5,
        )
        assert result.placement[tree] in (1, 2)


class TestAgainstBruteForce:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_dp_equals_brute_force(self, seed):
        net, rates, q = _setup(seed)
        costs = net.cost_matrix()
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        tree = Join(Join(a, b), c)
        leaf_positions = {leaf: [rates.source(leaf.stream)] for leaf in tree.leaves()}
        flow_rates = rates.flow_rates(q, tree)
        dp = optimal_tree_placement(tree, net.nodes(), costs, leaf_positions, flow_rates, sink=q.sink)
        bf = brute_force_tree_placement(tree, net.nodes(), costs, leaf_positions, flow_rates, sink=q.sink)
        assert dp.cost == pytest.approx(bf.cost)

    def test_dp_equals_brute_force_multi_position_leaves(self):
        net, rates, q = _setup(3)
        costs = net.cost_matrix()
        ab = Leaf.of("A", "B")
        c = Leaf.of("C")
        tree = Join(ab, c)
        leaf_positions = {ab: [1, 4], c: [rates.source("C")]}
        flow_rates = rates.flow_rates(q, tree)
        dp = optimal_tree_placement(tree, net.nodes(), costs, leaf_positions, flow_rates, sink=q.sink)
        bf = brute_force_tree_placement(tree, net.nodes(), costs, leaf_positions, flow_rates, sink=q.sink)
        assert dp.cost == pytest.approx(bf.cost)
        assert dp.placement[ab] in (1, 4)


class TestNominalAssignments:
    def test_counts(self):
        a, b, c = Leaf.of("A"), Leaf.of("B"), Leaf.of("C")
        tree = Join(Join(a, b), c)
        assert nominal_assignments(tree, 10) == 100  # 2 joins
        assert nominal_assignments(a, 10) == 1  # leaf only
