"""Tests for the Top-Down hierarchical optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import top_down_suboptimality_bound
from repro.core.cost import RateModel, deployment_cost
from repro.core.exhaustive import OptimalPlanner
from repro.core.top_down import TopDownOptimizer
from repro.hierarchy import AdvertisementIndex, build_hierarchy
from repro.network.topology import random_geometric, transit_stub_by_size
from repro.query.deployment import DeploymentState
from repro.query.plan import Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec

from tests.conftest import make_catalog, make_query


def _instance(seed, num_nodes=24, num_streams=6, max_cs=4):
    net = random_geometric(num_nodes, seed=seed % 7)
    names, streams, sel = make_catalog(net, num_streams, seed)
    rates = RateModel(streams)
    hierarchy = build_hierarchy(net, max_cs=max_cs, seed=seed)
    return net, names, sel, rates, hierarchy


class TestBasics:
    def test_produces_valid_deployment(self):
        net, names, sel, rates, h = _instance(0)
        rng = np.random.default_rng(0)
        q = make_query("q", names, sel, net, rng, k=4)
        opt = TopDownOptimizer(h, rates)
        d = opt.plan(q)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        cost = state.apply(d)  # validates structure and placements
        assert cost > 0
        assert d.stats["algorithm"] == "top-down"
        assert d.stats["plans_examined"] > 0

    def test_single_source_query(self):
        net, names, sel, rates, h = _instance(1)
        q = Query("q1", [names[0]], sink=0)
        d = TopDownOptimizer(h, rates).plan(q)
        assert isinstance(d.plan, Leaf)
        assert d.placement[d.plan] == rates.source(names[0])

    def test_base_leaves_at_sources(self):
        net, names, sel, rates, h = _instance(2)
        rng = np.random.default_rng(2)
        q = make_query("q", names, sel, net, rng, k=5)
        d = TopDownOptimizer(h, rates).plan(q)
        for leaf in d.plan.leaves():
            if leaf.is_base_stream:
                assert d.placement[leaf] == rates.source(leaf.stream)

    def test_operators_on_network_nodes(self):
        net, names, sel, rates, h = _instance(3)
        rng = np.random.default_rng(3)
        q = make_query("q", names, sel, net, rng, k=4)
        d = TopDownOptimizer(h, rates).plan(q)
        for join, node in d.operator_nodes.items():
            assert net.has_node(node)

    def test_unknown_stream_raises(self):
        net, names, sel, rates, h = _instance(4)
        q = Query("q", ["GHOST"], sink=0)
        with pytest.raises(KeyError):
            TopDownOptimizer(h, rates).plan(q)

    def test_levels_visited_start_at_top(self):
        net, names, sel, rates, h = _instance(5)
        rng = np.random.default_rng(5)
        q = make_query("q", names, sel, net, rng, k=3)
        d = TopDownOptimizer(h, rates).plan(q)
        assert d.stats["levels_visited"][0] == h.height


class TestOptimalityRelation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_never_beats_optimal(self, seed):
        net, names, sel, rates, h = _instance(seed)
        rng = np.random.default_rng(seed)
        q = make_query("q", names, sel, net, rng)
        costs = net.cost_matrix()
        td = TopDownOptimizer(h, rates, reuse=False).plan(q)
        opt = OptimalPlanner(net, rates, reuse=False).plan(q)
        assert deployment_cost(td, costs, rates) >= deployment_cost(opt, costs, rates) - 1e-9

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 400))
    def test_theorem3_suboptimality_bound(self, seed):
        """TD cost <= optimal + sum_e s_e * 2 sum d_i (Theorem 3)."""
        net, names, sel, rates, h = _instance(seed, num_nodes=18, max_cs=4)
        rng = np.random.default_rng(seed + 1)
        q = make_query("q", names, sel, net, rng, k=3)
        costs = net.cost_matrix()
        td = TopDownOptimizer(h, rates, reuse=False).plan(q)
        opt = OptimalPlanner(net, rates, reuse=False).plan(q)
        td_cost = deployment_cost(td, costs, rates)
        opt_cost = deployment_cost(opt, costs, rates)
        edge_rates = [
            rates.rate_for(q, child.sources)
            for join in td.plan.joins()
            for child in (join.left, join.right)
        ] + [rates.rate_for(q, td.plan.sources)]
        bound = top_down_suboptimality_bound(
            edge_rates, h.intra_cluster_costs(), h.height
        )
        assert td_cost <= opt_cost + bound + 1e-6

    def test_close_to_optimal_on_transit_stub(self):
        """Average-case sanity: TD within ~40% of optimal on paper-style nets."""
        net = transit_stub_by_size(64, seed=1)
        names, streams, sel = make_catalog(net, 8, 3)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=16, seed=0)
        rng = np.random.default_rng(4)
        costs = net.cost_matrix()
        td_total = opt_total = 0.0
        for i in range(8):
            q = make_query(f"q{i}", names, sel, net, rng)
            td_total += deployment_cost(TopDownOptimizer(h, rates, reuse=False).plan(q), costs, rates)
            opt_total += deployment_cost(OptimalPlanner(net, rates, reuse=False).plan(q), costs, rates)
        assert td_total <= 1.4 * opt_total


class TestReuse:
    def _shared_pair(self, seed=0):
        net, names, sel, rates, h = _instance(seed)
        rng = np.random.default_rng(seed)
        srcs = sorted(names[:3])
        preds = [
            JoinPredicate(srcs[0], srcs[1], sel[frozenset((srcs[0], srcs[1]))]),
            JoinPredicate(srcs[1], srcs[2], sel[frozenset((srcs[1], srcs[2]))]),
        ]
        q1 = Query("q1", srcs, sink=0, predicates=preds)
        q2 = Query("q2", srcs, sink=1, predicates=preds)
        return net, rates, h, q1, q2

    def test_identical_query_fully_reused(self):
        """A tiny-rate view must be reused rather than recomputed."""
        from repro.network.topology import line

        net = line(12)
        streams = {"A": StreamSpec("A", 0, 100.0), "B": StreamSpec("B", 1, 100.0)}
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=3, seed=0)
        pred = [JoinPredicate("A", "B", 0.0001)]
        q1 = Query("q1", ["A", "B"], sink=11, predicates=pred)
        q2 = Query("q2", ["A", "B"], sink=10, predicates=pred)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        opt = TopDownOptimizer(h, rates, reuse=True)
        c1 = state.apply(opt.plan(q1, state))
        d2 = opt.plan(q2, state)
        c2 = state.apply(d2)
        # Recomputing would ship both 100-rate base streams again; reusing
        # ships only the 1-rate view.
        assert d2.reused_leaves()
        assert c2 < 0.1 * c1

    def test_reuse_flag_off_ignores_ads(self):
        net, rates, h, q1, q2 = self._shared_pair(1)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        opt = TopDownOptimizer(h, rates, reuse=False)
        state.apply(opt.plan(q1, state))
        d2 = opt.plan(q2, state)
        assert not d2.reused_leaves()

    def test_reuse_never_increases_cumulative_cost(self):
        for seed in range(3):
            net, names, sel, rates, h = _instance(seed + 10)
            rng = np.random.default_rng(seed)
            queries = [make_query(f"q{i}", names, sel, net, rng) for i in range(6)]
            totals = {}
            for reuse in (False, True):
                ads = AdvertisementIndex(h)
                for n, s in rates.streams.items():
                    ads.advertise_base(n, s.source)
                opt = TopDownOptimizer(h, rates, ads=ads, reuse=reuse)
                state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
                for q in queries:
                    state.apply(opt.plan(q, state))
                totals[reuse] = state.total_cost()
            assert totals[True] <= totals[False] + 1e-6


class TestSearchSpace:
    def test_counter_below_lemma1_exhaustive(self):
        from repro.core.bounds import exhaustive_space

        net = transit_stub_by_size(128, seed=2)
        names, streams, sel = make_catalog(net, 10, 5)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=32, seed=0)
        rng = np.random.default_rng(6)
        q = make_query("q", names, sel, net, rng, k=4)
        d = TopDownOptimizer(h, rates).plan(q)
        assert d.stats["plans_examined"] < exhaustive_space(4, 128)

    def test_smaller_max_cs_smaller_top_level_space(self):
        net = transit_stub_by_size(64, seed=3)
        names, streams, sel = make_catalog(net, 8, 7)
        rates = RateModel(streams)
        rng = np.random.default_rng(8)
        q = make_query("q", names, sel, net, rng, k=4)
        examined = {}
        for cs in (4, 32):
            h = build_hierarchy(net, max_cs=cs, seed=0)
            d = TopDownOptimizer(h, rates).plan(q)
            examined[cs] = d.stats["plans_examined"]
        assert examined[4] < examined[32]
