"""Tests for the analytical formulas (Lemma 1, beta, Theorems 2-4)."""

import math

import pytest

from repro.core.bounds import (
    beta,
    bottom_up_space_bound,
    exhaustive_space,
    hierarchy_estimate_slack,
    hierarchy_height,
    paper_join_orders,
    top_down_space_bound,
    top_down_suboptimality_bound,
)


class TestLemma1:
    @pytest.mark.parametrize("k,expected", [(2, 1.0), (3, 4.0), (4, 10.0), (5, 20.0)])
    def test_paper_join_order_factor(self, k, expected):
        assert paper_join_orders(k) == expected

    def test_exhaustive_space(self):
        # K=3, N=10: 4 * 10^2
        assert exhaustive_space(3, 10) == pytest.approx(400.0)

    def test_k1_trivial(self):
        assert exhaustive_space(1, 100) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            paper_join_orders(1)
        with pytest.raises(ValueError):
            exhaustive_space(3, 0)

    def test_grows_exponentially_in_k(self):
        assert exhaustive_space(5, 64) / exhaustive_space(4, 64) > 64


class TestHierarchyHeight:
    def test_small_network_single_level(self):
        assert hierarchy_height(5, 8) == 1

    def test_two_levels(self):
        assert hierarchy_height(64, 8) == 2

    def test_grows_logarithmically(self):
        assert hierarchy_height(1024, 4) >= hierarchy_height(1024, 32)

    def test_invalid(self):
        with pytest.raises(ValueError):
            hierarchy_height(0, 4)
        with pytest.raises(ValueError):
            hierarchy_height(10, 1)


class TestBeta:
    def test_paper_example(self):
        """K=4 streams, N=1000 nodes, max_cs=10: beta must be tiny."""
        b = beta(4, 1000, 10)
        assert b < 0.01

    def test_decreases_exponentially_with_k(self):
        b3 = beta(3, 1000, 10)
        b5 = beta(5, 1000, 10)
        assert b5 < b3 * 1e-3

    def test_max_cs_equal_n(self):
        # single cluster: beta = h = 1, no savings
        assert beta(3, 16, 16) == pytest.approx(1.0)

    def test_max_cs_clamped_to_n(self):
        assert beta(3, 16, 64) == pytest.approx(1.0)

    def test_explicit_height(self):
        assert beta(3, 100, 10, height=4) == pytest.approx(4 * (0.1) ** 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            beta(1, 10, 2)


class TestSpaceBounds:
    def test_theorem2_closed_form(self):
        """beta * O_exhaustive == h * max_cs^(K-1) * join orders."""
        k, n, cs = 4, 512, 8
        h = hierarchy_height(n, cs)
        expected = h * cs ** (k - 1) * paper_join_orders(k)
        assert top_down_space_bound(k, n, cs) == pytest.approx(expected)

    def test_theorem4_equals_theorem2(self):
        assert bottom_up_space_bound(5, 256, 16) == top_down_space_bound(5, 256, 16)

    def test_bound_below_exhaustive(self):
        for n in (128, 256, 512, 1024):
            assert top_down_space_bound(4, n, 32) < exhaustive_space(4, n)

    def test_savings_exceed_99_percent_at_scale(self):
        """The paper: both algorithms cut the search space by >= 99%."""
        for n in (128, 256, 512, 1024):
            ratio = top_down_space_bound(4, n, 32) / exhaustive_space(4, n)
            assert ratio < 0.01 or n == 128 and ratio < 0.05

    def test_nearly_flat_across_network_sizes(self):
        """Fig 9: the worst-case bounds are nearly identical across N
        because the N^(K-1) growth cancels against beta's decay."""
        values = [top_down_space_bound(4, n, 32) for n in (128, 256, 512, 1024)]
        assert max(values) / min(values) < 3.0


class TestTheorem1Slack:
    def test_level1_no_slack(self):
        assert hierarchy_estimate_slack([5.0, 7.0], 1) == 0.0

    def test_accumulates(self):
        assert hierarchy_estimate_slack([5.0, 7.0], 3) == pytest.approx(24.0)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            hierarchy_estimate_slack([1.0], 0)
        with pytest.raises(ValueError):
            hierarchy_estimate_slack([1.0], 5)


class TestTheorem3:
    def test_bound_formula(self):
        # 3 edges at rates 10, 20, 30; d = [2, 3]; h = 3
        bound = top_down_suboptimality_bound([10, 20, 30], [2.0, 3.0], 3)
        assert bound == pytest.approx(60 * 2 * 5)

    def test_zero_at_height_one(self):
        assert top_down_suboptimality_bound([10.0], [4.0], 1) == 0.0
