"""Tests for reuse helpers, the optimizer facade and consolidation."""

import numpy as np
import pytest

from repro.core.consolidation import consolidate, shared_views
from repro.core.cost import RateModel
from repro.core.optimizer import deploy_query, make_optimizer
from repro.core.reuse import input_partitions, resolve_reuse_leaves, substitute_views
from repro.hierarchy import build_hierarchy
from repro.network.topology import line, random_geometric
from repro.query.deployment import DeploymentState
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec

from tests.conftest import make_catalog, make_query


class TestInputPartitions:
    def test_identity_only_without_reusables(self):
        views = [frozenset("A"), frozenset("B")]
        assert input_partitions(views, set()) == [views]

    def test_groups_matching_union(self):
        views = [frozenset("A"), frozenset("B"), frozenset("C")]
        parts = input_partitions(views, {frozenset({"A", "B"})})
        assert len(parts) == 2
        grouped = [p for p in parts if frozenset({"A", "B"}) in p]
        assert grouped

    def test_union_must_match_exactly(self):
        views = [frozenset({"A", "X"}), frozenset("B")]
        # reusable {A, B} doesn't align with input boundaries
        parts = input_partitions(views, {frozenset({"A", "B"})})
        assert parts == [views]

    def test_multi_view_inputs(self):
        views = [frozenset({"A", "B"}), frozenset("C"), frozenset("D")]
        parts = input_partitions(views, {frozenset({"A", "B", "C"})})
        assert len(parts) == 2

    def test_overlapping_inputs_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            input_partitions([frozenset("A"), frozenset("A")], set())


class TestSubstituteViews:
    def test_replaces_placeholder(self):
        a = Leaf.of("A")
        bc = Leaf.of("B", "C")
        outer = Join(a, bc)
        placement = {a: 0, bc: 5, outer: 2}
        b, c = Leaf.of("B"), Leaf.of("C")
        inner = Join(b, c)
        inner_placement = {b: 1, c: 3, inner: 5}
        tree, merged = substitute_views(
            outer, placement, {frozenset({"B", "C"}): (inner, inner_placement)}
        )
        assert tree.sources == frozenset({"A", "B", "C"})
        assert merged[tree] == 2
        leaves = tree.leaves()
        assert {l.label for l in leaves} == {"A", "B", "C"}
        assert merged[[l for l in leaves if l.label == "B"][0]] == 1

    def test_no_replacements_preserves_structure(self):
        a, b = Leaf.of("A"), Leaf.of("B")
        t = Join(a, b)
        placement = {a: 0, b: 1, t: 2}
        tree, merged = substitute_views(t, placement, {})
        assert tree == t
        assert merged[tree] == 2


class TestResolveReuseLeaves:
    def test_picks_cheapest_ad_node(self):
        net = line(6)
        q = Query("q", ["A", "B"], sink=5, predicates=[JoinPredicate("A", "B", 0.01)])
        leaf = Leaf.of("A", "B")
        placement = {leaf: 0}
        sig = q.view_signature()
        resolve_reuse_leaves(q, leaf, placement, {sig: {0, 4}}, net.cost_matrix())
        assert placement[leaf] == 4  # closest to sink 5

    def test_missing_ad_raises(self):
        net = line(3)
        q = Query("q", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.01)])
        leaf = Leaf.of("A", "B")
        with pytest.raises(ValueError, match="not advertised"):
            resolve_reuse_leaves(q, leaf, {leaf: 0}, {}, net.cost_matrix())


class TestMakeOptimizer:
    def _env(self):
        net = random_geometric(16, seed=0)
        names, streams, sel = make_catalog(net, 5, 0)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=4, seed=0)
        return net, rates, h, names, sel

    @pytest.mark.parametrize(
        "name",
        ["top-down", "bottom-up", "optimal", "brute-force", "relaxation",
         "in-network", "plan-then-deploy", "random"],
    )
    def test_builds_every_planner(self, name):
        net, rates, h, names, sel = self._env()
        opt = make_optimizer(name, net, rates, hierarchy=h)
        rng = np.random.default_rng(1)
        q = make_query("q", names, sel, net, rng, k=3)
        d = opt.plan(q, None)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        assert state.apply(d) >= 0

    def test_underscore_alias(self):
        net, rates, h, *_ = self._env()
        assert make_optimizer("top_down", net, rates, hierarchy=h).name == "top-down"

    def test_hierarchy_required(self):
        net, rates, h, *_ = self._env()
        with pytest.raises(ValueError, match="hierarchy"):
            make_optimizer("top-down", net, rates)

    def test_unknown_name(self):
        net, rates, h, *_ = self._env()
        with pytest.raises(ValueError, match="unknown optimizer"):
            make_optimizer("magic", net, rates)

    def test_deploy_query_helper(self):
        net, rates, h, names, sel = self._env()
        opt = make_optimizer("top-down", net, rates, hierarchy=h)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        rng = np.random.default_rng(2)
        q = make_query("q", names, sel, net, rng, k=3)
        result = deploy_query(opt, q, state)
        assert result.marginal_cost == pytest.approx(state.total_cost())
        assert state.deployments[0].query.name == "q"


class TestSharedViews:
    def _queries(self):
        preds = {
            ("A", "B"): JoinPredicate("A", "B", 0.01),
            ("B", "C"): JoinPredicate("B", "C", 0.02),
            ("C", "D"): JoinPredicate("C", "D", 0.03),
        }
        q1 = Query("q1", ["A", "B", "C"], sink=0,
                   predicates=[preds[("A", "B")], preds[("B", "C")]])
        q2 = Query("q2", ["B", "C", "D"], sink=1,
                   predicates=[preds[("B", "C")], preds[("C", "D")]])
        return q1, q2

    def test_finds_common_connected_subview(self):
        q1, q2 = self._queries()
        views = shared_views([q1, q2])
        labels = {sv.signature.label() for sv in views}
        assert "B*C" in labels

    def test_mismatched_selectivities_not_shared(self):
        q1, _ = self._queries()
        q3 = Query("q3", ["B", "C"], sink=2, predicates=[JoinPredicate("B", "C", 0.5)])
        views = shared_views([q1, q3])
        assert not views

    def test_benefit_ordering(self):
        q1, q2 = self._queries()
        q3 = Query("q3", ["B", "C"], sink=3, predicates=[JoinPredicate("B", "C", 0.02)])
        views = shared_views([q1, q2, q3])
        assert views[0].benefit >= views[-1].benefit


class TestConsolidate:
    def test_consolidation_not_worse_than_naive(self):
        net = random_geometric(20, seed=3)
        names, streams, sel = make_catalog(net, 6, 3)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=4, seed=3)
        rng = np.random.default_rng(3)
        queries = [make_query(f"q{i}", names, sel, net, rng, k=3) for i in range(6)]

        naive_state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        naive_opt = make_optimizer("top-down", net, rates, hierarchy=h)
        for q in queries:
            deploy_query(naive_opt, q, naive_state)

        cons_state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        cons_opt = make_optimizer("top-down", net, rates, hierarchy=h)
        deployments = consolidate(queries, cons_opt, cons_state)
        assert len(deployments) == len(queries)
        # consolidation must produce a working system; its cost should be
        # in the same ballpark or better (it pre-pays shared views).
        assert cons_state.total_cost() <= naive_state.total_cost() * 1.25

    def test_max_views_cap(self):
        net = random_geometric(16, seed=4)
        names, streams, sel = make_catalog(net, 5, 4)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=4, seed=4)
        rng = np.random.default_rng(4)
        queries = [make_query(f"q{i}", names, sel, net, rng, k=3) for i in range(4)]
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        opt = make_optimizer("bottom-up", net, rates, hierarchy=h)
        consolidate(queries, opt, state, max_views=1)
        shared_deployed = [d for d in state.deployments if d.query.name.startswith("__shared__")]
        assert len(shared_deployed) <= 1
