"""Tests for query-containment reuse (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.core.containment import (
    ContainedReuse,
    best_provider_per_node,
    containment_candidates,
    contains,
)
from repro.core.cost import RateModel
from repro.core.exhaustive import OptimalPlanner
from repro.network.topology import line
from repro.query.deployment import Deployment, DeploymentState
from repro.query.plan import Join, Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import Filter, StreamSpec


@pytest.fixture()
def env():
    """Line network with A, B at one end; views deployed mid-line."""
    net = line(10)
    streams = {"A": StreamSpec("A", 0, 100.0), "B": StreamSpec("B", 1, 100.0)}
    rates = RateModel(streams)
    state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
    return net, streams, rates, state


def _deploy_unfiltered_view(state, node=5, sel=0.001):
    """Deploy A x B (no filters) at the given node."""
    q = Query("q_base", ["A", "B"], sink=9, predicates=[JoinPredicate("A", "B", sel)])
    a, b = Leaf.of("A"), Leaf.of("B")
    join = Join(a, b)
    state.apply(Deployment(query=q, plan=join, placement={a: 0, b: 1, join: node}))
    return q


def _filtered_query(name, sink, sel=0.001, fsel=0.1):
    return Query(
        name,
        ["A", "B"],
        sink=sink,
        predicates=[JoinPredicate("A", "B", sel)],
        filters=[Filter("A", "A.v > 7", fsel)],
    )


class TestContains:
    def test_exact_signature_contains_itself(self):
        q = _filtered_query("q", 0)
        sig = q.view_signature()
        assert contains(sig, sig)

    def test_fewer_filters_contains_more(self):
        unfiltered = Query(
            "u", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.001)]
        ).view_signature()
        filtered = _filtered_query("f", 0).view_signature()
        assert contains(unfiltered, filtered)
        assert not contains(filtered, unfiltered)

    def test_different_predicates_not_contained(self):
        a = Query("a", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.5)])
        b = Query("b", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.1)])
        assert not contains(a.view_signature(), b.view_signature())

    def test_different_sources_not_contained(self):
        a = Query("a", ["A", "B"], sink=0, predicates=[JoinPredicate("A", "B", 0.5)])
        sig_a = a.view_signature()
        sig_sub = a.view_signature({"A"})
        assert not contains(sig_a, sig_sub)


class TestCandidates:
    def test_finds_containing_view(self, env):
        net, streams, rates, state = env
        _deploy_unfiltered_view(state)
        q = _filtered_query("q2", 9)
        cands = containment_candidates(q, frozenset({"A", "B"}), state, rates)
        assert len(cands) == 1
        cand = cands[0]
        assert not cand.exact
        assert cand.nodes == (5,)
        assert len(cand.missing_filters) == 1
        # provider ships at the unfiltered (larger) rate
        assert cand.ship_rate > rates.rate_for(q, frozenset({"A", "B"}))

    def test_exact_match_sorts_first(self, env):
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, node=5)
        q = _filtered_query("q2", 9)
        # also deploy the exact filtered view elsewhere
        a, b = Leaf.of("A"), Leaf.of("B")
        join = Join(a, b)
        exact_q = _filtered_query("q_exact", 8)
        state.apply(Deployment(query=exact_q, plan=join, placement={a: 0, b: 1, join: 3}))
        cands = containment_candidates(q, frozenset({"A", "B"}), state, rates)
        assert len(cands) == 2
        assert cands[0].exact
        assert not cands[1].exact

    def test_no_candidates_for_unrelated_view(self, env):
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, sel=0.5)  # different selectivity
        q = _filtered_query("q2", 9, sel=0.001)
        assert containment_candidates(q, frozenset({"A", "B"}), state, rates) == []

    def test_best_provider_per_node(self):
        from repro.query.query import ViewSignature

        sig = ViewSignature(frozenset({"A", "B"}), frozenset(), frozenset())
        big = ContainedReuse(sig, sig, (3, 4), ship_rate=10.0, missing_filters=frozenset())
        small = ContainedReuse(sig, sig, (4,), ship_rate=2.0, missing_filters=frozenset())
        best = best_provider_per_node([big, small])
        assert best[3].ship_rate == 10.0
        assert best[4].ship_rate == 2.0


class TestPlannerIntegration:
    def test_containment_reuse_chosen_when_cheaper(self, env):
        """An unfiltered A x B sits next to the new query's sink; with
        containment the planner ships it instead of recomputing from the
        far-away base streams."""
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, node=8, sel=0.001)
        q = _filtered_query("q2", 9, sel=0.001)
        plain = OptimalPlanner(net, rates, reuse=True).plan(q, state)
        contained = OptimalPlanner(net, rates, reuse=True, containment=True).plan(q, state)
        cost_plain = state.cost_of(plain)
        cost_contained = state.cost_of(contained)
        assert contained.reused_leaves(), "containment plan should reuse"
        assert cost_contained < cost_plain

    def test_containment_never_worse_than_exact_reuse(self, env):
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, node=8, sel=0.001)
        for sink in (2, 5, 9):
            q = _filtered_query(f"q_{sink}", sink)
            plain = OptimalPlanner(net, rates, reuse=True).plan(q, state)
            contained = OptimalPlanner(net, rates, reuse=True, containment=True).plan(q, state)
            assert state.cost_of(contained) <= state.cost_of(plain) + 1e-9

    def test_state_accounting_ships_provider_rate(self, env):
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, node=8, sel=0.001)
        q = _filtered_query("q2", 9, sel=0.001)
        leaf = Leaf.of("A", "B")
        d = Deployment(query=q, plan=leaf, placement={leaf: 8})
        cost = state.apply(d)
        provider_rate = 100.0 * 100.0 * 0.001  # unfiltered view rate
        assert cost == pytest.approx(provider_rate * net.cost_matrix()[8, 9])

    def test_duplicates_when_provider_too_fat(self, env):
        """If the containing view's rate is huge, recomputing wins."""
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, node=8, sel=1.0)  # rate 10,000
        q = _filtered_query("q2", 9, sel=1.0, fsel=0.0001)
        contained = OptimalPlanner(net, rates, reuse=True, containment=True).plan(q, state)
        assert not contained.reused_leaves()

    def test_undeploy_with_containment_reuse(self, env):
        net, streams, rates, state = env
        _deploy_unfiltered_view(state, node=8, sel=0.001)
        q = _filtered_query("q2", 9, sel=0.001)
        leaf = Leaf.of("A", "B")
        state.apply(Deployment(query=q, plan=leaf, placement={leaf: 8}))
        assert state.num_operators == 1
        state.undeploy("q2")
        assert state.num_operators == 1  # provider still owned by q_base
        state.undeploy("q_base")
        assert state.num_operators == 0
