"""Regression: no-op statistics updates must not churn the epoch.

``RateModel.update_streams`` used to bump ``version`` unconditionally,
so periodic re-estimation landing on identical numbers invalidated the
lifecycle service's entire plan cache for nothing.
"""

from repro.core.cost import RateModel
from repro.query.stream import StreamSpec


def make_model():
    return RateModel(
        {
            "A": StreamSpec("A", 0, rate=100.0),
            "B": StreamSpec("B", 1, rate=40.0),
        }
    )


class TestNoOpUpdate:
    def test_identical_update_keeps_the_version(self):
        model = make_model()
        assert model.update_streams(model.streams) is False
        assert model.version == 0

    def test_identical_update_keeps_the_memo_cache_warm(self):
        from repro.query.query import Query

        model = make_model()
        query = Query("q", ["A", "B"], sink=0, allow_cross_products=True)
        model.rate_for(query, {"A", "B"})
        assert len(model._cache) > 0
        model.update_streams(model.streams)
        assert len(model._cache) > 0  # untouched by the no-op

    def test_real_update_still_bumps(self):
        model = make_model()
        streams = model.streams
        streams["A"] = StreamSpec("A", 0, rate=500.0)
        assert model.update_streams(streams) is True
        assert model.version == 1
        assert model.stream("A").rate == 500.0

    def test_source_change_counts_as_a_change(self):
        model = make_model()
        streams = model.streams
        streams["B"] = StreamSpec("B", 7, rate=40.0)
        assert model.update_streams(streams) is True
        assert model.version == 1

    def test_service_epoch_does_not_churn_on_noop_ingest(self):
        """The end-to-end symptom: re-ingesting identical statistics
        used to kill every cached plan."""
        import repro
        from repro.service import StreamQueryService
        from repro.workload.statistics import EstimatedStatistics

        net = repro.transit_stub_by_size(16, seed=3)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=4, num_queries=2, joins_per_query=(1, 2)),
            seed=4,
        )
        rates = workload.rate_model()
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        service = StreamQueryService(optimizer, net, rates, hierarchy=hierarchy)
        before = service.statistics_epoch
        service.ingest_statistics(
            EstimatedStatistics(
                streams=rates.streams,
                selectivities={},
                observation_time=1.0,
                tuples_observed=0,
            )
        )
        assert service.statistics_epoch == before
