"""Tests for the Bottom-Up hierarchical optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bottom_up import BottomUpOptimizer
from repro.core.cost import RateModel, deployment_cost
from repro.core.exhaustive import OptimalPlanner
from repro.core.top_down import TopDownOptimizer
from repro.hierarchy import build_hierarchy
from repro.network.graph import Network
from repro.network.topology import line, random_geometric, transit_stub_by_size
from repro.query.deployment import DeploymentState
from repro.query.plan import Leaf
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec

from tests.conftest import make_catalog, make_query


def _instance(seed, num_nodes=24, num_streams=6, max_cs=4):
    net = random_geometric(num_nodes, seed=seed % 7)
    names, streams, sel = make_catalog(net, num_streams, seed)
    rates = RateModel(streams)
    hierarchy = build_hierarchy(net, max_cs=max_cs, seed=seed)
    return net, names, sel, rates, hierarchy


class TestBasics:
    def test_produces_valid_deployment(self):
        net, names, sel, rates, h = _instance(0)
        rng = np.random.default_rng(0)
        q = make_query("q", names, sel, net, rng, k=4)
        d = BottomUpOptimizer(h, rates).plan(q)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        assert state.apply(d) > 0
        assert d.stats["algorithm"] == "bottom-up"

    def test_single_source_query(self):
        net, names, sel, rates, h = _instance(1)
        q = Query("q1", [names[0]], sink=2)
        d = BottomUpOptimizer(h, rates).plan(q)
        assert isinstance(d.plan, Leaf)

    def test_levels_climb_upward(self):
        net, names, sel, rates, h = _instance(2)
        rng = np.random.default_rng(2)
        q = make_query("q", names, sel, net, rng, k=4)
        d = BottomUpOptimizer(h, rates).plan(q)
        levels = d.stats["climb_levels"]
        assert levels == sorted(levels)
        assert levels[0] == 1

    def test_stops_early_when_sources_are_local(self):
        """Sources co-located with the sink: no climb to the root."""
        net = transit_stub_by_size(64, seed=1)
        h = build_hierarchy(net, max_cs=8, seed=0)
        sink = 10
        cluster = h.leaf_cluster(sink)
        local_nodes = [n for n in cluster.members if n != sink][:2] or cluster.members[:2]
        streams = {
            "A": StreamSpec("A", local_nodes[0], 50.0),
            "B": StreamSpec("B", local_nodes[-1], 50.0),
        }
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=sink, predicates=[JoinPredicate("A", "B", 0.01)])
        d = BottomUpOptimizer(h, rates).plan(q)
        assert d.stats["levels_climbed"] < h.height

    def test_base_leaves_at_sources(self):
        net, names, sel, rates, h = _instance(3)
        rng = np.random.default_rng(3)
        q = make_query("q", names, sel, net, rng, k=5)
        d = BottomUpOptimizer(h, rates).plan(q)
        for leaf in d.plan.leaves():
            if leaf.is_base_stream:
                assert d.placement[leaf] == rates.source(leaf.stream)


class TestOptimalityRelation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_never_beats_optimal(self, seed):
        net, names, sel, rates, h = _instance(seed)
        rng = np.random.default_rng(seed)
        q = make_query("q", names, sel, net, rng)
        costs = net.cost_matrix()
        bu = BottomUpOptimizer(h, rates, reuse=False).plan(q)
        opt = OptimalPlanner(net, rates, reuse=False).plan(q)
        assert deployment_cost(bu, costs, rates) >= deployment_cost(opt, costs, rates) - 1e-9

    def test_usually_worse_than_top_down(self):
        """Aggregate over queries: TD's global view beats BU (paper Fig 7)."""
        net = transit_stub_by_size(64, seed=1)
        names, streams, sel = make_catalog(net, 8, 3)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=16, seed=0)
        rng = np.random.default_rng(4)
        costs = net.cost_matrix()
        td_total = bu_total = 0.0
        for i in range(10):
            q = make_query(f"q{i}", names, sel, net, rng)
            td_total += deployment_cost(TopDownOptimizer(h, rates, reuse=False).plan(q), costs, rates)
            bu_total += deployment_cost(BottomUpOptimizer(h, rates, reuse=False).plan(q), costs, rates)
        assert bu_total > td_total


class TestPathology:
    def test_remote_high_rate_pathology(self):
        """Paper Section 2.3.2: a high-volume remote stream S_r joined with
        two low-volume local streams.  The overall optimal plan joins S_r
        with S_1 remotely; Bottom-Up instead joins S_1 x S_2 locally and
        ships toward S_r, which is (much) worse here."""
        # Two cheap cliques (local & remote) joined by one expensive link.
        net = Network()
        net.add_nodes(8)
        for grp in ([0, 1, 2, 3], [4, 5, 6, 7]):
            for i in range(4):
                for j in range(i + 1, 4):
                    net.add_link(grp[i], grp[j], cost=1.0)
        net.add_link(3, 4, cost=50.0)
        h = build_hierarchy(net, max_cs=4, seed=0)
        streams = {
            "S1": StreamSpec("S1", 0, 10.0),   # local, low volume
            "S2": StreamSpec("S2", 1, 10.0),   # local, low volume
            "Sr": StreamSpec("Sr", 5, 1000.0), # remote, high volume
        }
        rates = RateModel(streams)
        # S_r x S_1 is very selective: its result is tiny.
        q = Query(
            "q",
            ["S1", "S2", "Sr"],
            sink=2,
            predicates=[
                JoinPredicate("S1", "Sr", 0.00001),
                JoinPredicate("S1", "S2", 0.1),
                JoinPredicate("S2", "Sr", 0.00001),
            ],
        )
        costs = net.cost_matrix()
        bu = BottomUpOptimizer(h, rates, reuse=False).plan(q)
        opt = OptimalPlanner(net, rates, reuse=False).plan(q)
        bu_cost = deployment_cost(bu, costs, rates)
        opt_cost = deployment_cost(opt, costs, rates)
        # The optimal plan joins in the remote cluster first.
        assert opt_cost < bu_cost
        # And Bottom-Up's local-first ordering joined S1 x S2 first.
        first_join = bu.plan.joins()[0]
        assert first_join.sources == frozenset({"S1", "S2"})

    def test_bound_relative_to_same_tree_random_placement(self):
        """Paper: BU beats a random placement of the same join tree."""
        rng = np.random.default_rng(9)
        net, names, sel, rates, h = _instance(11)
        q = make_query("q", names, sel, net, rng, k=4)
        costs = net.cost_matrix()
        bu = BottomUpOptimizer(h, rates, reuse=False).plan(q)
        bu_cost = deployment_cost(bu, costs, rates)
        # average random placement of the same tree
        totals = []
        for _ in range(30):
            placement = dict(bu.placement)
            for join in bu.plan.joins():
                placement[join] = int(rng.integers(0, net.num_nodes))
            from repro.query.deployment import Deployment

            totals.append(
                deployment_cost(
                    Deployment(query=q, plan=bu.plan, placement=placement), costs, rates
                )
            )
        assert bu_cost <= np.mean(totals)


class TestReuse:
    def test_reuses_local_view(self):
        net = line(12)
        streams = {"A": StreamSpec("A", 0, 100.0), "B": StreamSpec("B", 1, 100.0)}
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=3, seed=0)
        pred = [JoinPredicate("A", "B", 0.0001)]
        q1 = Query("q1", ["A", "B"], sink=11, predicates=pred)
        q2 = Query("q2", ["A", "B"], sink=10, predicates=pred)
        state = DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        opt = BottomUpOptimizer(h, rates, reuse=True)
        c1 = state.apply(opt.plan(q1, state))
        d2 = opt.plan(q2, state)
        c2 = state.apply(d2)
        assert d2.reused_leaves()
        assert c2 < 0.2 * c1

    def test_search_space_far_below_exhaustive(self):
        """Paper Fig 9: the hierarchical algorithms cut the search space
        by >= 99% relative to Lemma 1's exhaustive count.

        (The paper additionally reports BU ~45% below TD; in our
        implementation TD fragments operators thinly across members so
        its measured combination count is *smaller* -- an honest
        deviation documented in EXPERIMENTS.md.  BU's operational
        advantage, faster deployment, is reproduced by the protocol
        simulation tests.)"""
        from repro.core.bounds import exhaustive_space

        net = transit_stub_by_size(128, seed=2)
        names, streams, sel = make_catalog(net, 10, 5)
        rates = RateModel(streams)
        h = build_hierarchy(net, max_cs=32, seed=0)
        rng = np.random.default_rng(12)
        td_space = bu_space = 0
        for i in range(6):
            q = make_query(f"q{i}", names, sel, net, rng, k=4)
            td_space += TopDownOptimizer(h, rates).plan(q).stats["plans_examined"]
            bu_space += BottomUpOptimizer(h, rates).plan(q).stats["plans_examined"]
        budget = 6 * exhaustive_space(4, 128)
        assert td_space < 0.01 * budget
        assert bu_space < 0.01 * budget
