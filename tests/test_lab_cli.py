"""Smoke tests for ``repro lab`` (the scenario experiment harness)."""

import json
from pathlib import Path

from repro.cli import build_parser, main

SCENARIO_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "scenarios"


def write_tiny_scenario(tmp_path, **extra):
    doc = {
        "name": "cli-tiny",
        "seed": 3,
        "ticks": 3,
        "topology": {"nodes": 16, "max_cs": 4},
        "workload": {"streams": 4, "queries": 4, "joins": [1, 2]},
        "trace": {"mode": "churn", "lifetime": 2.0},
    }
    doc.update(extra)
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(doc))
    return path


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["lab", "run", "s.json"])
        assert args.lab_command == "run"
        assert args.scenario == "s.json"
        assert args.json is None and args.html is None and args.csv is None
        assert not args.quiet
        assert args.func.__name__ == "_cmd_lab"

    def test_list_defaults_to_shipped_scenarios(self):
        args = build_parser().parse_args(["lab", "list"])
        assert args.directory == "benchmarks/scenarios"


class TestLabRun:
    def test_terminal_report(self, tmp_path, capsys):
        rc = main(["lab", "run", str(write_tiny_scenario(tmp_path))])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro lab -- scenario 'cli-tiny'" in out
        assert "no_reuse" in out and "reuse" in out

    def test_artifacts_and_quiet(self, tmp_path, capsys):
        scenario = write_tiny_scenario(tmp_path)
        html = tmp_path / "r.html"
        envelope = tmp_path / "r.json"
        csv = tmp_path / "r.csv"
        rc = main([
            "lab", "run", str(scenario), "--quiet",
            "--html", str(html), "--json", str(envelope), "--csv", str(csv),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro lab --" not in out  # --quiet suppressed the table
        assert html.read_text().startswith("<!DOCTYPE html>")
        doc = json.loads(envelope.read_text())
        assert doc["kind"] == "repro.lab"
        assert csv.read_text().startswith("candidate,series,time,value")

    def test_json_to_stdout(self, tmp_path, capsys):
        rc = main([
            "lab", "run", str(write_tiny_scenario(tmp_path)),
            "--quiet", "--json", "-",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [c["candidate"]["name"] for c in doc["candidates"]] == [
            "no_reuse", "reuse",
        ]

    def test_missing_scenario_is_rc_2(self, tmp_path, capsys):
        rc = main(["lab", "run", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_scenario_is_rc_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"trace": {"mode": "stampede"}}))
        rc = main(["lab", "run", str(bad)])
        assert rc == 2
        assert "trace.mode" in capsys.readouterr().err


class TestLabReport:
    def roundtrip_envelope(self, tmp_path, capsys):
        rc = main([
            "lab", "run", str(write_tiny_scenario(tmp_path)),
            "--quiet", "--json", str(tmp_path / "envelope.json"),
        ])
        assert rc == 0
        capsys.readouterr()
        return tmp_path / "envelope.json"

    def test_rerender_saved_envelope(self, tmp_path, capsys):
        envelope = self.roundtrip_envelope(tmp_path, capsys)
        rc = main(["lab", "report", str(envelope)])
        assert rc == 0
        assert "repro lab -- scenario 'cli-tiny'" in capsys.readouterr().out

    def test_json_summary(self, tmp_path, capsys):
        envelope = self.roundtrip_envelope(tmp_path, capsys)
        rc = main(["lab", "report", str(envelope), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["scenario"]["name"] == "cli-tiny"
        assert summary["table"]

    def test_html_export_suppresses_terminal(self, tmp_path, capsys):
        envelope = self.roundtrip_envelope(tmp_path, capsys)
        html = tmp_path / "report.html"
        rc = main(["lab", "report", str(envelope), "--html", str(html)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro lab -- scenario" not in out
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_non_envelope_is_rc_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"kind": "repro.telemetry"}))
        rc = main(["lab", "report", str(bogus)])
        assert rc == 2
        assert "not a lab envelope" in capsys.readouterr().err


class TestLabList:
    def test_lists_shipped_scenarios(self, capsys):
        rc = main(["lab", "list", "--dir", str(SCENARIO_DIR)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet_reuse.json" in out
        assert "lab_smoke.json" in out

    def test_json_rows(self, capsys):
        rc = main(["lab", "list", "--dir", str(SCENARIO_DIR), "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert {"fleet_reuse", "resources_hotspot"} <= {
            r.get("name") for r in rows
        }

    def test_empty_dir(self, tmp_path, capsys):
        rc = main(["lab", "list", "--dir", str(tmp_path)])
        assert rc == 0
        assert "no scenario files" in capsys.readouterr().out
