"""End-to-end smoke tests for the ``adapt`` subcommand."""

import json

from repro.cli import build_parser, main

SMALL = ["--nodes", "24", "--streams", "5", "--queries", "4", "--ticks", "20"]


class TestAdaptCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["adapt"])
        assert args.seed == 2
        assert args.drift == "step"
        assert args.ticks == 30
        assert args.func.__name__ == "_cmd_adapt"

    def test_step_drill_reports_migrations(self, capsys):
        rc = main(["adapt", "--seed", "2", *SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adaptivity drill: step drift" in out
        assert "drift events published:" in out
        assert "re-optimizations:" in out
        assert "post-drift cumulative cost:" in out

    def test_emit_timeline_is_json(self, capsys):
        rc = main(["adapt", "--seed", "2", *SMALL, "--emit-timeline"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["drift"]["kind"] == "step"
        assert len(doc["ticks"]) == 20
        first = doc["ticks"][0]
        assert {"tick", "static_cost", "adaptive_cost", "drift_streams",
                "migrated"} <= set(first)
        # before the drift lands, both twins pay the same true cost
        assert first["static_cost"] == first["adaptive_cost"]
        assert "summary" in doc and "migrations" in doc

    def test_ramp_and_periodic_kinds_run(self, capsys):
        for extra in (["--drift", "ramp", "--ramp", "6"],
                      ["--drift", "periodic", "--period", "10"]):
            rc = main(["adapt", "--seed", "1", *SMALL, *extra])
            assert rc == 0
            assert "adaptivity drill:" in capsys.readouterr().out

    def test_unknown_stream_is_a_usage_error(self, capsys):
        rc = main(["adapt", *SMALL, "--stream", "NOPE"])
        assert rc == 2
        assert "unknown stream" in capsys.readouterr().err

    def test_explicit_stream_is_respected(self, capsys):
        rc = main(["adapt", "--seed", "2", *SMALL, "--stream", "S0",
                   "--emit-timeline"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["drift"]["events"][0]["stream"] == "S0"
