"""Smoke tests for the ``trace`` and ``metrics`` CLI subcommands."""

import json

from repro.cli import build_parser, main


class TestTraceCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.query == 0
        assert args.algorithm == "top-down"
        assert args.func.__name__ == "_cmd_trace"

    def test_trace_prints_span_tree_and_explanation(self, capsys):
        rc = main([
            "trace", "--query", "0", "--nodes", "24", "--streams", "5",
            "--queries", "4", "--max-cs", "4", "--seed", "9",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimizer trace:" in out
        assert "optimize algorithm=top-down" in out
        assert "plans_examined=" in out
        assert "plan explanation:" in out
        assert "join order:" in out

    def test_trace_bottom_up(self, capsys):
        rc = main([
            "trace", "--query", "1", "--nodes", "16", "--streams", "4",
            "--queries", "3", "--max-cs", "4", "--algorithm", "bottom-up",
            "--seed", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "algorithm=bottom-up" in out
        assert "climb" in out

    def test_trace_json_output(self, capsys):
        rc = main([
            "trace", "--query", "0", "--nodes", "16", "--streams", "4",
            "--queries", "3", "--max-cs", "4", "--json", "--seed", "2",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace"]["kind"] == "repro.trace"
        assert doc["trace"]["root"]["name"] == "optimize"
        assert doc["explanation"]["kind"] == "repro.explanation"
        assert doc["explanation"]["operators"]

    def test_trace_query_index_out_of_range(self, capsys):
        rc = main([
            "trace", "--query", "99", "--nodes", "16", "--streams", "4",
            "--queries", "3", "--max-cs", "4",
        ])
        assert rc == 2
        assert "--query must be in" in capsys.readouterr().err


class TestMetricsCli:
    def test_metrics_prometheus_exposition(self, capsys):
        rc = main([
            "metrics", "--nodes", "16", "--streams", "4", "--queries", "4",
            "--max-cs", "4", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE service_planning_seconds histogram" in out
        assert 'service_planning_seconds_bucket{le="+Inf"}' in out
        assert "# TYPE service_admitted_total counter" in out
        assert "# TYPE runtime_total_cost gauge" in out

    def test_metrics_json_snapshot(self, capsys):
        rc = main([
            "metrics", "--nodes", "16", "--streams", "4", "--queries", "4",
            "--max-cs", "4", "--format", "json", "--seed", "3",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["service_planning_seconds"]["type"] == "histogram"
        assert doc["service_planning_seconds"]["count"] > 0
        assert doc["service_admitted_total"]["value"] > 0
        assert doc["runtime_total_cost"]["type"] == "gauge"
