"""End-to-end integration tests across subsystems.

These exercise full pipelines the way a downstream user would:
topology -> hierarchy -> workload -> optimize -> deploy -> cost,
SQL text -> planned deployment, runtime simulation with adaptation, and
hierarchy churn interleaved with planning.
"""

import numpy as np
import pytest

import repro
from repro.core.cost import deployment_cost


@pytest.fixture(scope="module")
def pipeline_env():
    net = repro.transit_stub_by_size(48, seed=11)
    hierarchy = repro.build_hierarchy(net, max_cs=8, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=8, num_queries=10, joins_per_query=(2, 4)),
        seed=12,
    )
    return net, hierarchy, workload, workload.rate_model()


ALL_PLANNERS = [
    "top-down",
    "bottom-up",
    "optimal",
    "plan-then-deploy",
    "relaxation",
    "in-network",
    "random",
]


class TestFullPipeline:
    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_every_planner_deploys_whole_workload(self, pipeline_env, name):
        net, hierarchy, workload, rates = pipeline_env
        optimizer = repro.make_optimizer(name, net, rates, hierarchy=hierarchy)
        state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        for query in workload:
            result = repro.deploy_query(optimizer, query, state)
            assert result.marginal_cost >= 0
        assert state.total_cost() > 0
        assert len(state.deployments) == len(workload)
        # every base leaf sits at its source; every operator on a real node
        for deployment in state.deployments:
            for leaf in deployment.plan.leaves():
                if leaf.is_base_stream:
                    assert deployment.placement[leaf] == rates.source(leaf.stream)
            for node in deployment.operator_nodes.values():
                assert net.has_node(node)

    def test_cost_ordering_across_planners(self, pipeline_env):
        net, hierarchy, workload, rates = pipeline_env
        totals = {}
        for name in ("optimal", "top-down", "bottom-up", "random"):
            optimizer = repro.make_optimizer(
                name, net, rates, hierarchy=hierarchy, reuse=False
            )
            costs = net.cost_matrix()
            totals[name] = sum(
                deployment_cost(optimizer.plan(q), costs, rates) for q in workload
            )
        assert totals["optimal"] <= totals["top-down"] + 1e-6
        assert totals["optimal"] <= totals["bottom-up"] + 1e-6
        assert totals["top-down"] <= totals["random"]

    def test_marginal_costs_sum_to_total(self, pipeline_env):
        net, hierarchy, workload, rates = pipeline_env
        optimizer = repro.make_optimizer("top-down", net, rates, hierarchy=hierarchy)
        state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        marginals = [repro.deploy_query(optimizer, q, state).marginal_cost for q in workload]
        assert sum(marginals) == pytest.approx(state.total_cost())

    def test_undeploy_everything_returns_to_zero(self, pipeline_env):
        net, hierarchy, workload, rates = pipeline_env
        optimizer = repro.make_optimizer("bottom-up", net, rates, hierarchy=hierarchy)
        state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        for query in workload:
            repro.deploy_query(optimizer, query, state)
        for query in reversed(workload.queries):
            state.undeploy(query.name)
        assert state.total_cost() == pytest.approx(0.0)
        assert state.num_operators == 0


class TestSqlPipeline:
    def test_sql_to_deployment(self):
        """SQL text all the way to a running deployment."""
        net, ids = repro.motivating_network()
        streams = {
            "FLIGHTS": repro.StreamSpec("FLIGHTS", ids["FLIGHTS"], 100.0),
            "WEATHER": repro.StreamSpec("WEATHER", ids["WEATHER"], 40.0),
            "CHECK-INS": repro.StreamSpec("CHECK-INS", ids["CHECK-INS"], 120.0),
        }
        rates = repro.RateModel(streams)
        query = repro.parse_query(
            "SELECT FLIGHTS.STATUS, WEATHER.FORECAST FROM FLIGHTS, WEATHER, CHECK-INS "
            "WHERE FLIGHTS.DESTN = WEATHER.CITY AND FLIGHTS.NUM = CHECK-INS.FLNUM",
            name="sql_q",
            sink=ids["Sink4"],
        )
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        state = repro.DeploymentState(net.cost_matrix(), rates.rate_for, rates.source)
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        deployment = optimizer.plan(query, state)
        cost = state.apply(deployment)
        assert cost > 0
        assert deployment.plan.sources == frozenset(query.sources)


class TestRuntimeIntegration:
    def test_deploy_congest_adapt_cycle(self):
        net = repro.transit_stub_by_size(32, seed=21)
        hierarchy = repro.build_hierarchy(net, max_cs=8, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=6, joins_per_query=(1, 3)),
            seed=22,
        )
        rates = workload.rate_model()
        engine = repro.FlowEngine(net, rates)
        optimizer = repro.TopDownOptimizer(hierarchy, rates)

        timelines = []
        for i, query in enumerate(workload):
            deployment = optimizer.plan(query, engine.state)
            timelines.append(repro.simulate_deployment(net, deployment))
            engine.deploy(deployment, time=float(i))
        assert all(t.duration > 0 for t in timelines)
        baseline = engine.total_cost()

        hot = engine.hottest_links(1)[0]
        net.set_link_cost(hot.u, hot.v, hot.cost * 30)
        middleware = repro.AdaptiveMiddleware(engine, optimizer, improvement_threshold=0.02)
        report = middleware.run_epoch(time=50.0)
        assert report.triggered
        assert report.cost_after <= report.cost_before + 1e-9
        # cost accounting stays consistent after migration
        per_query = sum(
            engine.state.query_cost(q.name) for q in workload
        )
        assert per_query == pytest.approx(engine.total_cost())

    def test_protocol_and_engine_agree_on_operators(self):
        net = repro.transit_stub_by_size(32, seed=23)
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(2, 3)),
            seed=24,
        )
        rates = workload.rate_model()
        optimizer = repro.BottomUpOptimizer(hierarchy, rates)
        for query in workload:
            deployment = optimizer.plan(query)
            timeline = repro.simulate_deployment(net, deployment)
            # one deploy command per (planning visit, distinct node); at
            # least the distinct operator nodes, at most one per join
            distinct_nodes = len(
                {deployment.placement[j] for j in deployment.plan.joins()}
            )
            assert distinct_nodes <= timeline.operators_deployed
            assert timeline.operators_deployed <= max(1, deployment.plan.num_joins)


class TestChurnWithPlanning:
    def test_planning_survives_node_churn(self):
        """Plan, mutate the hierarchy (join/leave), re-plan: all valid."""
        from repro.hierarchy import add_node, remove_node

        net = repro.random_geometric(24, seed=31)
        hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=5, num_queries=4, joins_per_query=(2, 3)),
            seed=32,
        )
        rates = workload.rate_model()
        optimizer = repro.TopDownOptimizer(hierarchy, rates)
        costs = net.cost_matrix()
        first = [optimizer.plan(q) for q in workload]

        rng = np.random.default_rng(33)
        # add nodes (never remove stream sources/sinks: they must remain)
        protected = {s.source for s in rates.streams.values()} | {
            q.sink for q in workload
        }
        for _ in range(4):
            new = net.add_node()
            net.add_link(new, int(rng.integers(0, new)), cost=float(rng.uniform(1, 4)))
            add_node(hierarchy, new, seed=int(rng.integers(0, 1 << 30)))
        removable = [n for n in hierarchy.root.subtree_nodes() if n not in protected]
        for victim in removable[:3]:
            remove_node(hierarchy, victim)
        hierarchy.validate()

        second = [optimizer.plan(q) for q in workload]
        costs = net.cost_matrix()
        for deployment in second:
            assert deployment_cost(deployment, costs, rates) > 0

    def test_multiple_hierarchies_one_network(self):
        """The paper: several hierarchies with different max_cs coexist."""
        net = repro.transit_stub_by_size(48, seed=41)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=5, joins_per_query=(2, 3)),
            seed=42,
        )
        rates = workload.rate_model()
        costs = net.cost_matrix()
        results = {}
        for cs in (4, 16):
            hierarchy = repro.build_hierarchy(net, max_cs=cs, seed=0)
            optimizer = repro.TopDownOptimizer(hierarchy, rates)
            results[cs] = sum(
                deployment_cost(optimizer.plan(q), costs, rates) for q in workload
            )
        assert all(v > 0 for v in results.values())
