"""Executable documentation: the paper's narrative claims, one test each.

Every test cites the paper passage it validates.  These complement the
figure benchmarks: they are fast, deterministic distillations of the
claims, run on every ``pytest`` invocation.
"""

import numpy as np
import pytest

import repro
from repro.core.bounds import beta, exhaustive_space
from repro.core.cost import deployment_cost


class TestIntroductionClaims:
    def test_centralized_processing_is_expensive(self):
        """'It is often too expensive to stream all of the data to a
        centralized query processor' -- in-network placement beats
        shipping every base stream to the sink."""
        net = repro.transit_stub_by_size(64, seed=201)
        w = repro.generate_workload(
            net, repro.WorkloadParams(num_queries=5, joins_per_query=(2, 4)), seed=202
        )
        rates = w.rate_model()
        costs = net.cost_matrix()
        central_total = innet_total = 0.0
        planner = repro.OptimalPlanner(net, rates)
        for q in w:
            d = planner.plan(q)
            innet_total += deployment_cost(d, costs, rates)
            # centralized: every operator at the sink
            placement = dict(d.placement)
            for join in d.plan.joins():
                placement[join] = q.sink
            central = repro.Deployment(query=q, plan=d.plan, placement=placement)
            central_total += deployment_cost(central, costs, rates)
        assert innet_total < central_total

    def test_search_space_grows_exponentially(self):
        """'the number of possible plan and deployment combinations can
        grow exponentially' (Lemma 1)."""
        growth = [exhaustive_space(k, 64) for k in (2, 3, 4, 5)]
        ratios = [b / a for a, b in zip(growth, growth[1:])]
        assert all(r > 64 for r in ratios)

    def test_beta_orders_of_magnitude_below_one(self):
        """'When max_cs << N, beta is orders of magnitude less than 1.'"""
        assert beta(4, 1000, 10) < 1e-3


class TestSection11Examples:
    """The motivating OIS scenario, executed (see also examples/)."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return repro.airline_ois_scenario()

    def test_network_aware_join_ordering(self, scenario):
        """'the network conditions dictate that a more efficient join
        ordering is (FLIGHTS x CHECK-INS) x WEATHER'."""
        from repro.baselines.plan_then_deploy import best_static_tree

        static_tree, _ = best_static_tree(scenario.q1, scenario.rates)
        joint = repro.OptimalPlanner(scenario.network, scenario.rates).plan(scenario.q1)
        assert static_tree.joins()[0].sources == frozenset({"FLIGHTS", "WEATHER"})
        assert joint.plan.joins()[0].sources == frozenset({"FLIGHTS", "CHECK-INS"})

    def test_reuse_requires_alternate_ordering(self, scenario):
        """'in order to reuse the already deployed operator FLIGHTS x
        CHECK-INS, we must pick the alternate join ordering'."""
        rm = scenario.rates
        state = repro.DeploymentState(
            scenario.network.cost_matrix(), rm.rate_for, rm.source
        )
        planner = repro.OptimalPlanner(scenario.network, rm, reuse=True)
        state.apply(planner.plan(scenario.q2, state))
        d1 = planner.plan(scenario.q1, state)
        reused = d1.reused_leaves()
        assert reused and reused[0].view == frozenset({"FLIGHTS", "CHECK-INS"})

    def test_distant_sink_declines_reuse(self, scenario):
        """'if the sinks for the two queries are far apart ... we would
        duplicate the FLIGHTS x CHECK-INS operator'."""
        # Make the deployed view's output expensive to ship: huge join
        # selectivity (fat view) deployed, then a sink right next to the
        # sources prefers recomputation.
        net, ids = scenario.network, scenario.node_ids
        streams = scenario.streams
        rm = repro.RateModel(streams)
        fat = repro.Query(
            "fat", ["FLIGHTS", "CHECK-INS"], sink=ids["Sink1"],
            predicates=[repro.JoinPredicate("FLIGHTS", "CHECK-INS", 1.0)],
        )
        state = repro.DeploymentState(net.cost_matrix(), rm.rate_for, rm.source)
        planner = repro.OptimalPlanner(net, rm, reuse=True)
        state.apply(planner.plan(fat, state))
        same_fat_far = repro.Query(
            "fat2", ["FLIGHTS", "CHECK-INS"], sink=ids["Sink5"],
            predicates=[repro.JoinPredicate("FLIGHTS", "CHECK-INS", 1.0)],
        )
        d2 = planner.plan(same_fat_far, state)
        # whatever the planner chose must beat *forced* reuse of the fat
        # remote view (with a rate-10,000 view, duplication usually wins)
        leaf = repro.Leaf.of("CHECK-INS", "FLIGHTS")
        forced = repro.Deployment(
            query=same_fat_far, plan=leaf,
            placement={leaf: state.advertised_views()[fat.view_signature()].pop()},
        )
        assert state.cost_of(d2) <= state.cost_of(forced) + 1e-9


class TestSection2Claims:
    def test_higher_levels_approximate_more(self):
        """Theorem 1: 'the maximum approximation is incurred at the top
        most level of the hierarchy' -- slack grows with level."""
        net = repro.transit_stub_by_size(64, seed=205)
        h = repro.build_hierarchy(net, max_cs=4, seed=0)
        slacks = [h.estimate_slack(l) for l in range(1, h.height + 1)]
        assert slacks == sorted(slacks)
        assert slacks[0] == 0.0
        assert slacks[-1] > 0.0

    def test_top_down_considers_reuse_automatically(self):
        """'operator reuse is automatically considered in the planning
        process' -- no extra flag beyond the advertisements."""
        net = repro.transit_stub_by_size(32, seed=206)
        streams = {
            "A": repro.StreamSpec("A", 0, 100.0),
            "B": repro.StreamSpec("B", 1, 100.0),
        }
        rm = repro.RateModel(streams)
        h = repro.build_hierarchy(net, max_cs=4, seed=0)
        pred = [repro.JoinPredicate("A", "B", 0.0001)]
        td = repro.TopDownOptimizer(h, rm, reuse=True)
        state = repro.DeploymentState(net.cost_matrix(), rm.rate_for, rm.source)
        state.apply(td.plan(
            repro.Query("q1", ["A", "B"], sink=20, predicates=pred), state
        ))
        d2 = td.plan(repro.Query("q2", ["A", "B"], sink=21, predicates=pred), state)
        assert d2.reused_leaves()

    def test_bottom_up_stops_below_root_when_local(self):
        """'The climb stops as soon as every input is local' (the basis
        of the deployment-time advantage)."""
        net = repro.transit_stub_by_size(64, seed=207)
        h = repro.build_hierarchy(net, max_cs=8, seed=0)
        sink = 11
        cluster = h.leaf_cluster(sink)
        members = cluster.members
        streams = {
            "A": repro.StreamSpec("A", members[0], 10.0),
            "B": repro.StreamSpec("B", members[-1], 10.0),
        }
        rm = repro.RateModel(streams)
        bu = repro.BottomUpOptimizer(h, rm)
        d = bu.plan(repro.Query(
            "q", ["A", "B"], sink=sink,
            predicates=[repro.JoinPredicate("A", "B", 0.1)],
        ))
        assert d.stats["levels_climbed"] == 1


class TestSection3Claims:
    def test_exhaustive_on_128_nodes_is_infeasible(self):
        """'An exhaustive search on a 128 node network for the deployment
        of a single query took nearly 3 hours' -- Lemma 1 explains why:
        billions of combinations for K=5."""
        assert exhaustive_space(5, 128) > 5e9

    def test_hierarchical_algorithms_in_milliseconds(self):
        """The same planning task is milliseconds hierarchically."""
        import time

        net = repro.transit_stub_by_size(128, seed=208)
        w = repro.generate_workload(
            net, repro.WorkloadParams(num_queries=1, joins_per_query=(4, 4)), seed=209
        )
        rm = w.rate_model()
        h = repro.build_hierarchy(net, max_cs=32, seed=0)
        td = repro.TopDownOptimizer(h, rm)
        start = time.perf_counter()
        td.plan(w.queries[0])
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # generous CI bound; typically ~20 ms
