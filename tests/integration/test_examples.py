"""Smoke tests: the shipped examples must run end to end.

Each example is executed in-process (importing its module and calling
``main()``), asserting it completes and prints its headline sections.
The slowest examples are exercised at reduced scale by the benchmarks
instead.
"""

import importlib.util
import io
import pathlib
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run_example(stem: str) -> str:
    spec = importlib.util.spec_from_file_location(stem, EXAMPLES_DIR / f"{stem}.py")
    assert spec and spec.loader
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_airline_ois(self):
        out = _run_example("airline_ois")
        assert "Network-aware join ordering" in out
        assert "Operator reuse" in out
        assert "reused the deployed" in out

    def test_network_monitoring(self):
        out = _run_example("network_monitoring")
        assert "deploying the dashboards" in out
        assert "saved by sharing" in out

    def test_quickstart(self):
        out = _run_example("quickstart")
        assert "Cumulative communication cost" in out
        assert "top-down is within" in out

    def test_adaptive_runtime(self):
        out = _run_example("adaptive_runtime")
        assert "adaptation recovered" in out
        assert "queries migrated" in out
