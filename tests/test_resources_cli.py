"""End-to-end smoke tests for the ``resources`` subcommand."""

import json

from repro.cli import build_parser, main

SMALL = [
    "--nodes", "24", "--streams", "5", "--queries", "8",
    "--repeats", "2", "--lifetime", "3",
    "--max-cs", "4", "--seed", "9",
]


class TestResourcesCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["resources"])
        assert args.capacity_profile == "uniform"
        assert args.utilization_bound == 1.0
        assert args.load_weight == 0.0
        assert not args.no_shed
        assert args.func.__name__ == "_cmd_resources"

    ROOMY = ["--cpu", "5000", "--memory", "5000", "--bandwidth", "5000"]

    def test_uniform_profile_feasible(self, capsys):
        rc = main(["resources", *self.ROOMY, *SMALL])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resource-aware placement: top-down" in out
        assert "profile uniform" in out
        assert "max utilization" in out
        assert "feasibility: ok" in out

    def test_unbounded_profile_is_passive(self, capsys):
        rc = main(["resources", "--capacity-profile", "unbounded", *SMALL])
        assert rc == 0
        assert "unconstrained" in capsys.readouterr().out

    def test_starved_fleet_exits_1(self, capsys):
        rc = main([
            "resources", "--cpu", "10", "--memory", "10", "--bandwidth", "10",
            "--lifetime", "50", *SMALL[:-4],
        ])
        assert rc == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_json_report(self, capsys):
        rc = main(["resources", "--json", *self.ROOMY, *SMALL])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["capacity_profile"] == "uniform"
        assert payload["infeasible"] is False
        assert payload["resources"]["ledger"]["constrained"] is True
        assert payload["resources"]["utilization_bound"] == 1.0
        assert payload["admitted"] > 0

    def test_json_infeasible_exits_1(self, capsys):
        rc = main([
            "resources", "--json",
            "--cpu", "10", "--memory", "10", "--bandwidth", "10",
            "--lifetime", "50", *SMALL[:-4],
        ])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["infeasible"] is True
        assert payload["resources"]["parked"]

    def test_hotspot_profile_runs(self, capsys):
        rc = main([
            "resources", "--capacity-profile", "hotspot",
            "--cpu", "2000", "--memory", "2000", "--bandwidth", "2000",
            *SMALL,
        ])
        out = capsys.readouterr().out
        assert "profile hotspot" in out
        assert rc in (0, 1)

    def test_heterogeneous_profile_runs(self, capsys):
        rc = main([
            "resources", "--capacity-profile", "heterogeneous", *SMALL,
        ])
        out = capsys.readouterr().out
        assert "profile heterogeneous" in out
        assert rc in (0, 1)

    def test_bad_bound_exits_2(self, capsys):
        rc = main(["resources", "--utilization-bound", "-1", *SMALL])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
