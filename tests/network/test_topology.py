"""Tests for topology generators."""

import numpy as np
import pytest

from repro.network.topology import (
    TransitStubParams,
    grid,
    line,
    motivating_network,
    random_geometric,
    ring,
    star,
    transit_stub,
    transit_stub_by_size,
)


class TestTransitStub:
    def test_default_shape(self):
        net = transit_stub(seed=0)
        params = TransitStubParams()
        assert net.num_nodes == params.total_nodes()
        assert net.is_connected()

    def test_node_kinds(self):
        net = transit_stub(seed=1)
        assert len(net.nodes_of_kind("transit")) == 4
        assert len(net.nodes_of_kind("stub")) == net.num_nodes - 4

    def test_stub_links_cheaper_than_transit_links(self):
        """The paper requires intranet links far cheaper than long-haul."""
        net = transit_stub(seed=2)
        stub_costs = [l.cost for l in net.links() if l.kind == "stub"]
        transit_costs = [l.cost for l in net.links() if l.kind == "transit"]
        assert stub_costs and transit_costs
        assert max(stub_costs) < min(transit_costs)

    def test_delays_in_paper_band(self):
        net = transit_stub(seed=3)
        for link in net.links():
            assert 0.001 <= link.delay <= 0.060

    def test_each_stub_domain_reaches_backbone_via_gateway(self):
        net = transit_stub(seed=4)
        gateways = [l for l in net.links() if l.kind == "gateway"]
        params = TransitStubParams()
        assert len(gateways) == params.transit_nodes * params.stubs_per_transit

    def test_reproducible_with_seed(self):
        a = transit_stub(seed=42)
        b = transit_stub(seed=42)
        assert a.num_links == b.num_links
        assert [(l.u, l.v, l.cost) for l in a.links()] == [
            (l.u, l.v, l.cost) for l in b.links()
        ]

    def test_different_seeds_differ(self):
        a = transit_stub(seed=1)
        b = transit_stub(seed=2)
        assert [(l.u, l.v) for l in a.links()] != [(l.u, l.v) for l in b.links()]

    def test_single_transit_node(self):
        params = TransitStubParams(transit_nodes=1, stubs_per_transit=2, stub_size=3)
        net = transit_stub(params, seed=0)
        assert net.num_nodes == 7
        assert net.is_connected()

    def test_two_transit_nodes(self):
        params = TransitStubParams(transit_nodes=2, stubs_per_transit=1, stub_size=2)
        net = transit_stub(params, seed=0)
        assert net.is_connected()
        assert net.has_link(0, 1)

    def test_explicit_stub_sizes(self):
        params = TransitStubParams(transit_nodes=2, stubs_per_transit=2, stub_size=1)
        net = transit_stub(params, seed=0, stub_sizes=[1, 2, 3, 4])
        assert net.num_nodes == 2 + 10

    def test_bad_stub_sizes_length(self):
        with pytest.raises(ValueError, match="entries"):
            transit_stub(seed=0, stub_sizes=[1, 2])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            transit_stub(TransitStubParams(transit_nodes=0), seed=0)
        with pytest.raises(ValueError):
            transit_stub(TransitStubParams(stub_size=0), seed=0)


class TestTransitStubBySize:
    @pytest.mark.parametrize("n", [32, 64, 128, 256, 512])
    def test_exact_size(self, n):
        net = transit_stub_by_size(n, seed=n)
        assert net.num_nodes == n
        assert net.is_connected()

    def test_small_network_shrinks_backbone(self):
        net = transit_stub_by_size(24, seed=0)
        assert net.num_nodes == 24
        assert net.is_connected()

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            transit_stub_by_size(3, seed=0)


class TestSimpleTopologies:
    def test_line(self):
        net = line(5)
        assert net.num_links == 4
        assert net.traversal_cost(0, 4) == pytest.approx(4.0)

    def test_ring_requires_three_nodes(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_star_hub(self):
        net = star(6)
        assert net.degree(0) == 5
        assert net.traversal_cost(1, 2) == pytest.approx(2.0)

    def test_grid_dimensions(self):
        net = grid(3, 4)
        assert net.num_nodes == 12
        assert net.num_links == 3 * 3 + 2 * 4  # horizontal + vertical
        assert net.traversal_cost(0, 11) == pytest.approx(5.0)

    def test_invalid_sizes(self):
        for factory, arg in [(line, 0), (star, 1)]:
            with pytest.raises(ValueError):
                factory(arg)
        with pytest.raises(ValueError):
            grid(0, 3)


class TestRandomGeometric:
    def test_connected_and_sized(self):
        net = random_geometric(40, seed=7)
        assert net.num_nodes == 40
        assert net.is_connected()

    def test_costs_positive(self):
        net = random_geometric(20, seed=8)
        assert all(l.cost > 0 for l in net.links())

    def test_reproducible(self):
        a = random_geometric(25, seed=9)
        b = random_geometric(25, seed=9)
        assert [(l.u, l.v) for l in a.links()] == [(l.u, l.v) for l in b.links()]


class TestMotivatingNetwork:
    def test_has_all_named_nodes(self):
        net, ids = motivating_network()
        for name in ["FLIGHTS", "WEATHER", "CHECK-INS", "N1", "N3", "Sink4"]:
            assert name in ids
        assert net.num_nodes == 13
        assert net.is_connected()

    def test_congested_flights_n2_link(self):
        """The Section 1.1 example: FLIGHTS-N2 is the expensive path."""
        net, ids = motivating_network()
        direct = net.link(ids["FLIGHTS"], ids["N2"]).cost
        via_n1 = net.link(ids["FLIGHTS"], ids["N1"]).cost + net.link(ids["N1"], ids["N2"]).cost
        assert via_n1 < direct


class TestMultiDomainTransitStub:
    def test_multi_domain_shape(self):
        params = TransitStubParams(
            transit_domains=3, transit_nodes=3, stubs_per_transit=2, stub_size=4
        )
        net = transit_stub(params, seed=0)
        assert net.num_nodes == params.total_nodes()
        assert net.is_connected()
        assert len(net.nodes_of_kind("transit")) == 9

    def test_inter_domain_links_exist(self):
        params = TransitStubParams(transit_domains=3, transit_nodes=2, stub_size=2)
        net = transit_stub(params, seed=1)
        inter = [l for l in net.links() if l.kind == "inter-domain"]
        assert len(inter) == 3  # ring over 3 domains

    def test_two_domains_single_link(self):
        params = TransitStubParams(transit_domains=2, transit_nodes=2, stub_size=2)
        net = transit_stub(params, seed=2)
        inter = [l for l in net.links() if l.kind == "inter-domain"]
        assert len(inter) == 1
        assert net.is_connected()

    def test_inter_domain_links_expensive(self):
        params = TransitStubParams(transit_domains=2, transit_nodes=3, stub_size=3)
        net = transit_stub(params, seed=3)
        inter_costs = [l.cost for l in net.links() if l.kind == "inter-domain"]
        stub_costs = [l.cost for l in net.links() if l.kind == "stub"]
        assert min(inter_costs) > max(stub_costs)

    def test_by_size_with_domains(self):
        params = TransitStubParams(transit_domains=2)
        net = transit_stub_by_size(150, seed=4, params=params)
        assert net.num_nodes == 150
        assert net.is_connected()

    def test_invalid_domains(self):
        with pytest.raises(ValueError):
            transit_stub(TransitStubParams(transit_domains=0), seed=0)
