"""Unit tests for the Network graph substrate."""

import numpy as np
import pytest

from repro.network import Link, Network
from repro.network.topology import line, ring, star


class TestLink:
    def test_canonical_endpoint_order(self):
        link = Link(5, 2, cost=1.0)
        assert link.endpoints == (2, 5)
        assert (link.u, link.v) == (2, 5)

    def test_preserves_already_sorted_order(self):
        link = Link(1, 7, cost=3.0)
        assert link.endpoints == (1, 7)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link(3, 3, cost=1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError, match="negative link cost"):
            Link(0, 1, cost=-1.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="negative link delay"):
            Link(0, 1, cost=1.0, delay=-0.5)


class TestNetworkConstruction:
    def test_empty_network(self):
        net = Network()
        assert net.num_nodes == 0
        assert net.num_links == 0
        assert net.is_connected()  # vacuously

    def test_add_node_returns_sequential_ids(self):
        net = Network()
        assert net.add_node() == 0
        assert net.add_node() == 1
        assert net.add_nodes(3) == [2, 3, 4]

    def test_node_kind_tagging(self):
        net = Network()
        t = net.add_node(kind="transit")
        s = net.add_node(kind="stub")
        assert net.node_kind(t) == "transit"
        assert net.nodes_of_kind("stub") == [s]

    def test_add_link_and_lookup(self):
        net = Network()
        net.add_nodes(3)
        net.add_link(2, 0, cost=4.0, delay=0.01)
        assert net.has_link(0, 2)
        assert net.has_link(2, 0)
        assert net.link(0, 2).cost == 4.0
        assert net.link(2, 0).delay == 0.01

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_nodes(2)
        net.add_link(0, 1, cost=1.0)
        with pytest.raises(ValueError, match="already exists"):
            net.add_link(1, 0, cost=2.0)

    def test_link_to_missing_node_rejected(self):
        net = Network()
        net.add_node()
        with pytest.raises(KeyError):
            net.add_link(0, 99, cost=1.0)

    def test_neighbors_and_degree(self):
        net = star(5)
        assert net.neighbors(0) == [1, 2, 3, 4]
        assert net.degree(0) == 4
        assert net.degree(3) == 1


class TestNetworkMutation:
    def test_remove_link(self):
        net = ring(4)
        net.remove_link(0, 1)
        assert not net.has_link(0, 1)
        assert net.is_connected()  # ring minus one edge is a path

    def test_remove_missing_link_raises(self):
        net = line(3)
        with pytest.raises(KeyError):
            net.remove_link(0, 2)

    def test_remove_node_drops_incident_links(self):
        net = star(4)
        net.remove_node(0)
        assert net.num_nodes == 3
        assert net.num_links == 0

    def test_set_link_cost(self):
        net = line(2)
        net.set_link_cost(0, 1, 9.0)
        assert net.link(0, 1).cost == 9.0

    def test_set_link_cost_rejects_negative(self):
        net = line(2)
        with pytest.raises(ValueError):
            net.set_link_cost(0, 1, -2.0)

    def test_scale_link_costs_all(self):
        net = line(3, cost=2.0)
        net.scale_link_costs(3.0)
        assert net.link(0, 1).cost == 6.0
        assert net.link(1, 2).cost == 6.0

    def test_scale_link_costs_subset(self):
        net = line(3, cost=2.0)
        net.scale_link_costs(5.0, links=[(1, 2)])
        assert net.link(0, 1).cost == 2.0
        assert net.link(1, 2).cost == 10.0

    def test_mutation_bumps_version(self):
        net = line(2)
        v0 = net.version
        net.set_link_cost(0, 1, 2.0)
        assert net.version > v0

    def test_compact_renumbers_after_removal(self):
        net = line(4)
        net.remove_node(1)
        mapping = net.compact()
        assert net.nodes() == [0, 1, 2]
        assert mapping == {0: 0, 2: 1, 3: 2}
        assert net.has_link(1, 2)  # old (2, 3) link

    def test_copy_is_independent(self):
        net = line(3)
        clone = net.copy()
        clone.set_link_cost(0, 1, 50.0)
        assert net.link(0, 1).cost == 1.0
        assert clone.link(0, 1).cost == 50.0


class TestMatrices:
    def test_cost_matrix_line(self):
        net = line(4, cost=2.0)
        c = net.cost_matrix()
        assert c[0, 3] == pytest.approx(6.0)
        assert c[1, 2] == pytest.approx(2.0)
        assert np.allclose(np.diag(c), 0.0)

    def test_cost_matrix_symmetric(self):
        net = ring(6, cost=1.5)
        c = net.cost_matrix()
        assert np.allclose(c, c.T)

    def test_ring_uses_shorter_arc(self):
        net = ring(6)
        assert net.traversal_cost(0, 3) == pytest.approx(3.0)
        assert net.traversal_cost(0, 5) == pytest.approx(1.0)

    def test_cost_matrix_cached_until_mutation(self):
        net = line(5)
        c1 = net.cost_matrix()
        assert net.cost_matrix() is c1
        net.set_link_cost(0, 1, 7.0)
        c2 = net.cost_matrix()
        assert c2 is not c1
        assert c2[0, 1] == pytest.approx(7.0)

    def test_delay_matrix(self):
        net = line(3, delay=0.01)
        d = net.delay_matrix()
        assert d[0, 2] == pytest.approx(0.02)

    def test_disconnected_network_raises(self):
        net = Network()
        net.add_nodes(2)
        with pytest.raises(ValueError, match="disconnected"):
            net.cost_matrix()

    def test_noncontiguous_ids_raise(self):
        net = line(3)
        net.remove_node(1)
        net.add_link(0, 2, cost=1.0)
        with pytest.raises(ValueError, match="contiguous"):
            net.cost_matrix()

    def test_shortest_path_prefers_cheap_detour(self):
        net = Network()
        net.add_nodes(3)
        net.add_link(0, 2, cost=10.0)
        net.add_link(0, 1, cost=1.0)
        net.add_link(1, 2, cost=1.0)
        assert net.traversal_cost(0, 2) == pytest.approx(2.0)


class TestExport:
    def test_to_networkx_roundtrip(self):
        net = ring(5, cost=2.0)
        g = net.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 5
        assert g.edges[0, 1]["cost"] == 2.0
