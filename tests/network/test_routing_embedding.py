"""Tests for routing tables, path reconstruction and cost-space embedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.embedding import classical_mds, embed_network, embedding_stress
from repro.network.routing import RoutingTables, all_pairs_costs, path_links, shortest_path_nodes
from repro.network.topology import line, random_geometric, ring, transit_stub_by_size


class TestShortestPathNodes:
    def test_trivial_path(self):
        net = line(3)
        assert shortest_path_nodes(net, 1, 1) == [1]

    def test_line_path(self):
        net = line(5)
        assert shortest_path_nodes(net, 0, 4) == [0, 1, 2, 3, 4]

    def test_path_links(self):
        net = line(4)
        assert path_links(net, 0, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_path_cost_matches_matrix(self):
        net = random_geometric(30, seed=3)
        c = net.cost_matrix()
        for src, dst in [(0, 29), (5, 17), (12, 3)]:
            hops = path_links(net, src, dst)
            total = sum(net.link(u, v).cost for u, v in hops)
            assert total == pytest.approx(c[src, dst])


class TestRoutingTables:
    def test_capture_and_query(self):
        net = ring(5, cost=2.0)
        tables = RoutingTables.of(net)
        assert tables.cost(0, 2) == pytest.approx(4.0)
        assert tables.delay(0, 1) == pytest.approx(0.001)
        assert not tables.stale

    def test_staleness_and_refresh(self):
        net = ring(5)
        tables = RoutingTables.of(net)
        net.set_link_cost(0, 1, 10.0)
        assert tables.stale
        fresh = tables.fresh()
        assert not fresh.stale
        assert fresh.cost(0, 1) == pytest.approx(min(10.0, 4.0))

    def test_fresh_is_noop_when_current(self):
        net = line(4)
        tables = RoutingTables.of(net)
        assert tables.fresh() is tables

    def test_all_pairs_costs_wrapper(self):
        net = line(3)
        assert np.array_equal(all_pairs_costs(net), net.cost_matrix())


class TestTriangleInequality:
    """Shortest-path matrices are metrics -- the hierarchy bounds rely on it."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_geometric_triangle_inequality(self, seed):
        net = random_geometric(15, seed=seed)
        c = net.cost_matrix()
        lhs = c[:, None, :]  # c[i, k]
        rhs = c[:, :, None] + c[None, :, :]  # c[i, j] + c[j, k]
        assert (lhs <= rhs + 1e-9).all()

    def test_transit_stub_triangle_inequality(self):
        net = transit_stub_by_size(64, seed=11)
        c = net.cost_matrix()
        assert (c[:, None, :] <= c[:, :, None] + c[None, :, :] + 1e-9).all()


class TestClassicalMds:
    def test_recovers_euclidean_configuration(self):
        rng = np.random.default_rng(0)
        pts = rng.random((12, 3))
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        coords = classical_mds(dist, dim=3)
        rec = np.sqrt(((coords[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2))
        assert np.allclose(rec, dist, atol=1e-8)

    def test_line_metric_needs_one_dimension(self):
        net = line(6)
        coords = classical_mds(net.cost_matrix(), dim=1)
        order = np.argsort(coords[:, 0])
        spacing = np.diff(np.sort(coords[:, 0]))
        assert np.allclose(spacing, 1.0, atol=1e-8)
        assert list(order) in ([0, 1, 2, 3, 4, 5], [5, 4, 3, 2, 1, 0])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            classical_mds(np.zeros((3, 4)))

    def test_rejects_asymmetric(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            classical_mds(bad)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="dim"):
            classical_mds(np.zeros((3, 3)), dim=0)

    def test_embed_network_metrics(self):
        net = ring(8)
        c = embed_network(net, dim=2, metric="cost")
        d = embed_network(net, dim=2, metric="delay")
        assert c.shape == (8, 2)
        assert d.shape == (8, 2)
        with pytest.raises(ValueError, match="unknown metric"):
            embed_network(net, metric="hops")

    def test_stress_zero_for_perfect_embedding(self):
        rng = np.random.default_rng(1)
        pts = rng.random((10, 2))
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        coords = classical_mds(dist, dim=2)
        assert embedding_stress(dist, coords) < 1e-7

    def test_stress_reasonable_on_transit_stub(self):
        """The 3-D cost space should capture most of the structure."""
        net = transit_stub_by_size(64, seed=5)
        c = net.cost_matrix()
        coords = classical_mds(c, dim=3)
        assert embedding_stress(c, coords) < 0.5
