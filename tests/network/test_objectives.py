"""Tests for objective re-weighting (latency / hop-count optimization)."""

import numpy as np
import pytest

from repro.core.cost import RateModel, deployment_cost
from repro.core.exhaustive import OptimalPlanner
from repro.hierarchy import build_hierarchy
from repro.network.graph import Network
from repro.network.objectives import delay_weighted, hop_weighted
from repro.network.topology import transit_stub_by_size
from repro.query.query import JoinPredicate, Query
from repro.query.stream import StreamSpec


class TestReweighting:
    def test_delay_weighted_costs_equal_delays(self):
        net = transit_stub_by_size(32, seed=1)
        lat = delay_weighted(net)
        assert np.allclose(lat.cost_matrix(), net.delay_matrix())

    def test_hop_weighted_counts_hops(self):
        net = transit_stub_by_size(32, seed=2)
        hops = hop_weighted(net)
        c = hops.cost_matrix()
        assert np.allclose(c, np.round(c))  # integral hop counts
        assert c[0, 0] == 0

    def test_original_untouched(self):
        net = transit_stub_by_size(32, seed=3)
        before = net.cost_matrix().copy()
        delay_weighted(net)
        assert np.array_equal(net.cost_matrix(), before)


class TestLatencyObjectivePlanning:
    def _net_with_conflicting_metrics(self):
        """cheap-but-slow path vs expensive-but-fast path from 0 to 3."""
        net = Network()
        net.add_nodes(4)
        net.add_link(0, 1, cost=1.0, delay=0.5)   # cheap, slow
        net.add_link(1, 3, cost=1.0, delay=0.5)
        net.add_link(0, 2, cost=50.0, delay=0.001)  # expensive, fast
        net.add_link(2, 3, cost=50.0, delay=0.001)
        return net

    def test_objective_changes_routing_preference(self):
        net = self._net_with_conflicting_metrics()
        lat = delay_weighted(net)
        assert net.traversal_cost(0, 3) == pytest.approx(2.0)      # via 1
        assert lat.traversal_cost(0, 3) == pytest.approx(0.002)    # via 2

    def test_planner_follows_objective(self):
        """The same query places differently under cost vs latency."""
        net = transit_stub_by_size(48, seed=4)
        streams = {
            "A": StreamSpec("A", 0, 80.0),
            "B": StreamSpec("B", 20, 80.0),
        }
        rates = RateModel(streams)
        q = Query("q", ["A", "B"], sink=40, predicates=[JoinPredicate("A", "B", 0.01)])
        cost_plan = OptimalPlanner(net, rates).plan(q)
        lat_net = delay_weighted(net)
        lat_plan = OptimalPlanner(lat_net, rates).plan(q)
        # each plan is optimal under its own objective
        assert deployment_cost(cost_plan, net.cost_matrix(), rates) <= deployment_cost(
            lat_plan, net.cost_matrix(), rates
        ) + 1e-9
        assert deployment_cost(lat_plan, lat_net.cost_matrix(), rates) <= deployment_cost(
            cost_plan, lat_net.cost_matrix(), rates
        ) + 1e-9

    def test_hierarchy_clusters_by_delay(self):
        """The paper: response-time metric => cluster by inter-node delay."""
        net = transit_stub_by_size(64, seed=5)
        lat = delay_weighted(net)
        h = build_hierarchy(lat, max_cs=8, seed=0)
        h.validate(full_coverage=True)
        # Theorem 1 holds in the delay metric too
        c = lat.cost_matrix()
        rng = np.random.default_rng(0)
        for u, v in rng.integers(0, 64, size=(40, 2)):
            for level in range(1, h.height + 1):
                est = h.estimated_cost(int(u), int(v), level)
                assert c[u, v] <= est + h.estimate_slack(level) + 1e-9
