"""Round-trip tests for network/query/workload serialization."""

import numpy as np
import pytest

import repro
from repro.serialization import (
    network_from_json,
    network_to_json,
    query_from_json,
    query_to_json,
    workload_from_json,
    workload_to_json,
)


class TestNetworkRoundTrip:
    def test_structure_preserved(self):
        net = repro.transit_stub_by_size(48, seed=171)
        restored = network_from_json(network_to_json(net))
        assert restored.num_nodes == net.num_nodes
        assert restored.num_links == net.num_links
        assert np.allclose(restored.cost_matrix(), net.cost_matrix())
        assert np.allclose(restored.delay_matrix(), net.delay_matrix())

    def test_kinds_preserved(self):
        net = repro.transit_stub_by_size(32, seed=172)
        restored = network_from_json(network_to_json(net))
        assert restored.nodes_of_kind("transit") == net.nodes_of_kind("transit")
        for link in net.links():
            assert restored.link(link.u, link.v).kind == link.kind

    def test_infinite_bandwidth_round_trips(self):
        net = repro.transit_stub_by_size(32, seed=173)
        restored = network_from_json(network_to_json(net))
        sample = restored.links()[0]
        assert sample.bandwidth == float("inf")

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a serialized network"):
            network_from_json('{"kind": "something"}')


class TestQueryRoundTrip:
    def test_full_query(self):
        q = repro.Query(
            "q",
            ["A", "B", "C"],
            sink=7,
            predicates=[
                repro.JoinPredicate("A", "B", 0.01, "x", "y"),
                repro.JoinPredicate("B", "C", 0.02),
            ],
            filters=[repro.Filter("A", "A.v > 1", 0.4)],
            projection=["A.v", "C.w"],
            window=1.25,
        )
        restored = query_from_json(query_to_json(q))
        assert restored == q
        assert restored.window == 1.25
        assert restored.projection == q.projection
        assert restored.view_signature() == q.view_signature()

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a serialized query"):
            query_from_json('{"kind": "x"}')


class TestWorkloadRoundTrip:
    @pytest.fixture(scope="class")
    def workload(self):
        net = repro.transit_stub_by_size(48, seed=174)
        return repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(2, 3)),
            seed=175,
        )

    def test_self_contained_round_trip(self, workload):
        restored = workload_from_json(workload_to_json(workload))
        assert [q.name for q in restored] == [q.name for q in workload]
        assert restored.streams == workload.streams
        assert restored.selectivities == workload.selectivities
        assert restored.params == workload.params
        for a, b in zip(restored.queries, workload.queries):
            assert a == b
            assert a.window == b.window

    def test_equivalent_planning_results(self, workload):
        """Planning against the restored manifest reproduces costs."""
        restored = workload_from_json(workload_to_json(workload))
        for wl in (workload, restored):
            wl.rates = wl.rate_model()
        planner_a = repro.OptimalPlanner(workload.network, workload.rates)
        planner_b = repro.OptimalPlanner(restored.network, restored.rates)
        from repro.core.cost import deployment_cost

        for qa, qb in zip(workload.queries[:3], restored.queries[:3]):
            ca = deployment_cost(
                planner_a.plan(qa), workload.network.cost_matrix(), workload.rates
            )
            cb = deployment_cost(
                planner_b.plan(qb), restored.network.cost_matrix(), restored.rates
            )
            assert ca == pytest.approx(cb)

    def test_external_network_supported(self, workload):
        text = workload_to_json(workload, include_network=False)
        with pytest.raises(ValueError, match="no embedded network"):
            workload_from_json(text)
        restored = workload_from_json(text, network=workload.network)
        assert len(restored) == len(workload)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a serialized workload"):
            workload_from_json('{"kind": "nope"}')
