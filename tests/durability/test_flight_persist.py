"""Flight bundles persist under the state dir and survive a restart."""

import json

import repro
from repro.durability import DurabilityConfig
from repro.obs.flight import FlightRecorder, load_bundles
from repro.obs.telemetry import Telemetry, TelemetryConfig
from repro.service import AdmissionController, StreamQueryService


def _durable_service_with_telemetry(state_dir, seed=13):
    net = repro.transit_stub_by_size(24, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=4, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    telemetry = Telemetry(TelemetryConfig())
    service = StreamQueryService(
        optimizer, net, rates, hierarchy=hierarchy,
        admission=AdmissionController(budget=6),
        telemetry=telemetry,
        durability=DurabilityConfig(state_dir=state_dir),
    )
    return service, workload, telemetry


class TestRecorderPersistence:
    def test_bundles_land_under_state_dir_flight(self, tmp_path):
        state_dir = tmp_path / "state"
        service, workload, telemetry = _durable_service_with_telemetry(state_dir)
        assert telemetry.recorder.persist_dir == state_dir / "flight"
        for query in workload:
            service.submit(query, lifetime=3.0)
        for _ in range(3):
            service.tick()
        telemetry.recorder.bundle("drill", service.clock, scope="service")
        files = sorted((state_dir / "flight").glob("bundle-*.json"))
        assert files
        assert telemetry.recorder.persisted_total == len(files)

    def test_load_bundles_reads_them_back_after_restart(self, tmp_path):
        state_dir = tmp_path / "state"
        service, workload, telemetry = _durable_service_with_telemetry(state_dir)
        for query in workload:
            service.submit(query, lifetime=3.0)
        service.tick()
        doc = telemetry.recorder.bundle("drill", service.clock, scope="service")
        # "Restart": a fresh process only has the directory.
        loaded = load_bundles(state_dir)
        assert [b["reason"] for b in loaded][-1] == "drill"
        assert loaded[-1]["entries"] == doc["entries"]
        # The bundle dir itself also works.
        assert load_bundles(state_dir / "flight") == loaded

    def test_load_bundles_skips_torn_writes(self, tmp_path):
        recorder = FlightRecorder()
        recorder.persist_dir = tmp_path
        recorder.record("tick", 1.0, "service")
        recorder.bundle("first", 1.0)
        recorder.bundle("second", 2.0)
        files = sorted(tmp_path.glob("bundle-*.json"))
        raw = files[-1].read_text()
        files[-1].write_text(raw[: len(raw) // 2])  # torn mid-write
        loaded = load_bundles(tmp_path)
        assert [b["reason"] for b in loaded] == ["first"]

    def test_no_persistence_without_durability(self):
        recorder = FlightRecorder()
        recorder.record("tick", 1.0, "service")
        recorder.bundle("drill", 1.0)
        assert recorder.persist_dir is None
        assert recorder.persisted_total == 0

    def test_recorder_snapshot_still_reports(self, tmp_path):
        recorder = FlightRecorder()
        recorder.persist_dir = tmp_path
        recorder.record("tick", 1.0, "service")
        recorder.bundle("drill", 1.0)
        snap = recorder.snapshot()
        assert snap["bundles_total"] == 1
        json.dumps(snap)


class TestDashFromStateDir:
    def test_dash_reads_persisted_bundles(self, tmp_path, capsys):
        from repro.cli import main

        state_dir = tmp_path / "state"
        service, workload, telemetry = _durable_service_with_telemetry(state_dir)
        for query in workload:
            service.submit(query, lifetime=3.0)
        service.tick()
        telemetry.recorder.bundle("post_crash_drill", service.clock)
        rc = main(["dash", "--from", str(state_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "persisted flight bundles" in out
        assert "post_crash_drill" in out

    def test_dash_json_emits_the_bundle_list(self, tmp_path, capsys):
        from repro.cli import main

        state_dir = tmp_path / "state"
        service, workload, telemetry = _durable_service_with_telemetry(state_dir)
        service.submit(workload.queries[0], lifetime=3.0)
        telemetry.recorder.bundle("drill", 1.0)
        rc = main(["dash", "--from", str(state_dir), "--json"])
        assert rc == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["reason"] for d in docs if d["reason"] == "drill"]
