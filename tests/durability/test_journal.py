"""Write-ahead journal: CRC, LSN discipline, torn tails, crash points."""

import json

import pytest

from repro.durability.journal import (
    COMMAND_KINDS,
    JOURNAL_FILE,
    MARKER_KINDS,
    Journal,
    SimulatedCrash,
    canonical_json,
    record_crc,
    repair_journal,
    scan_journal,
)
from repro.resilience.faults import CrashPoint


@pytest.fixture()
def journal(tmp_path):
    return Journal(tmp_path / JOURNAL_FILE)


class TestAppendScan:
    def test_lsns_are_monotonic_from_one(self, journal):
        for i in range(5):
            assert journal.append("cmd_tick", float(i), {"time": float(i)}) == i + 1
        records, report = scan_journal(journal.path)
        assert [r["lsn"] for r in records] == [1, 2, 3, 4, 5]
        assert report["dropped_lines"] == 0
        assert report["reason"] == ""

    def test_crc_covers_the_whole_record(self, journal):
        journal.append("admit", 1.0, {"query": "q0", "status": "admitted"})
        journal.close()
        (rec,), _ = scan_journal(journal.path)
        assert rec["crc"] == record_crc(
            rec["lsn"], rec["kind"], rec["time"], rec["data"]
        )

    def test_kind_must_be_known(self, journal):
        with pytest.raises(ValueError):
            journal.append("cmd_mystery", 0.0, {})

    def test_command_and_marker_kinds_are_disjoint(self):
        assert not COMMAND_KINDS & MARKER_KINDS

    def test_canonical_json_is_key_ordered(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestTornAndCorrupt:
    def _write_three(self, journal):
        for i in range(3):
            journal.append("cmd_tick", float(i), {"time": float(i)})
        journal.close()

    def test_torn_tail_is_dropped(self, journal):
        self._write_three(journal)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[: len(raw) - 10])
        records, report = scan_journal(journal.path)
        assert [r["lsn"] for r in records] == [1, 2]
        assert report["dropped_lines"] == 1
        assert "JSON" in report["reason"] or "truncated" in report["reason"]

    def test_flipped_byte_fails_crc(self, journal):
        self._write_three(journal)
        lines = journal.path.read_text().splitlines()
        doc = json.loads(lines[2])
        doc["data"]["time"] = 99.0  # mutate payload, keep stale CRC
        lines[2] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        journal.path.write_text("\n".join(lines) + "\n")
        records, report = scan_journal(journal.path)
        assert len(records) == 2
        assert "CRC" in report["reason"]

    def test_corrupt_middle_line_truncates_the_suffix(self, journal):
        self._write_three(journal)
        lines = journal.path.read_text().splitlines()
        lines[1] = "not json at all"
        journal.path.write_text("\n".join(lines) + "\n")
        records, report = scan_journal(journal.path)
        # Prefix-greedy: record 3 is intact but unreachable past the tear.
        assert [r["lsn"] for r in records] == [1]
        assert report["dropped_lines"] == 2

    def test_repair_quarantines_and_truncates(self, journal):
        self._write_three(journal)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[: len(raw) - 7])
        records, report = repair_journal(journal.path)
        assert len(records) == 2
        assert report["quarantined_to"]
        quarantine = journal.path.parent / report["quarantined_to"]
        assert quarantine.exists()
        # The journal itself is now clean.
        rescan, rescan_report = scan_journal(journal.path)
        assert len(rescan) == 2
        assert rescan_report["dropped_lines"] == 0

    def test_repair_never_overwrites_an_older_quarantine(self, journal):
        self._write_three(journal)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[: len(raw) - 7])
        _, first = repair_journal(journal.path)
        journal2 = Journal(journal.path)
        journal2.lsn = 2
        journal2.append("cmd_tick", 9.0, {"time": 9.0})
        journal2.close()
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[: len(raw) - 5])
        _, second = repair_journal(journal.path)
        assert first["quarantined_to"] != second["quarantined_to"]

    def test_missing_file_scans_empty(self, tmp_path):
        records, report = scan_journal(tmp_path / "absent.jsonl")
        assert records == []
        assert report["records"] == 0


class TestCrashPoints:
    def test_clean_crash_keeps_the_record_durable(self, journal):
        journal.arm([CrashPoint(time=0.0, after_lsn=2)])
        journal.append("cmd_tick", 0.0, {"time": 0.0})
        with pytest.raises(SimulatedCrash):
            journal.append("cmd_tick", 1.0, {"time": 1.0})
        records, _ = scan_journal(journal.path)
        assert [r["lsn"] for r in records] == [1, 2]

    def test_torn_crash_drops_the_record(self, journal):
        journal.arm([CrashPoint(time=0.0, after_lsn=2, torn_tail=True)])
        journal.append("cmd_tick", 0.0, {"time": 0.0})
        with pytest.raises(SimulatedCrash):
            journal.append("cmd_tick", 1.0, {"time": 1.0})
        records, report = scan_journal(journal.path)
        assert [r["lsn"] for r in records] == [1]
        assert report["dropped_bytes"] > 0

    def test_each_point_fires_once(self, journal):
        journal.arm([CrashPoint(time=0.0, after_lsn=1)])
        with pytest.raises(SimulatedCrash):
            journal.append("cmd_tick", 0.0, {"time": 0.0})
        # Fired points stay fired: the journal keeps working.
        assert journal.append("cmd_tick", 1.0, {"time": 1.0}) == 2

    def test_replaying_suppresses_appends(self, journal):
        journal.append("cmd_tick", 0.0, {"time": 0.0})
        journal.replaying = True
        assert journal.append("cmd_tick", 1.0, {"time": 1.0}) is None
        journal.replaying = False
        records, _ = scan_journal(journal.path)
        assert len(records) == 1

    def test_fsync_counter(self, tmp_path):
        journal = Journal(tmp_path / JOURNAL_FILE, fsync=True)
        journal.append("cmd_tick", 0.0, {"time": 0.0})
        journal.append("cmd_tick", 1.0, {"time": 1.0})
        assert journal.fsyncs_total == 2
        journal.close()
