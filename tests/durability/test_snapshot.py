"""Snapshot envelope: CRC validation, fallback past corruption, pruning."""

import json

import pytest

from repro.durability.journal import Journal, SimulatedCrash
from repro.durability.snapshot import (
    list_snapshots,
    load_latest,
    snapshot_path,
    write_snapshot,
)
from repro.resilience.faults import CrashPoint


def _write(tmp_path, lsn, state=None, **kwargs):
    return write_snapshot(
        tmp_path, lsn, "service", state or {"lsn": lsn}, **kwargs
    )


class TestRoundTrip:
    def test_latest_valid_snapshot_wins(self, tmp_path):
        _write(tmp_path, 10)
        _write(tmp_path, 25)
        doc, rejected = load_latest(tmp_path)
        assert doc is not None and doc["lsn"] == 25
        assert doc["state"] == {"lsn": 25}
        assert rejected == []

    def test_empty_directory_loads_none(self, tmp_path):
        doc, rejected = load_latest(tmp_path)
        assert doc is None and rejected == []

    def test_retain_prunes_oldest(self, tmp_path):
        for lsn in (5, 10, 15, 20):
            _write(tmp_path, lsn, retain=2)
        files = [s["file"] for s in list_snapshots(tmp_path)]
        assert files == ["snapshot-000000000015.json", "snapshot-000000000020.json"]


class TestCorruption:
    def test_truncated_snapshot_falls_back_to_previous(self, tmp_path):
        _write(tmp_path, 10)
        path = _write(tmp_path, 25)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        doc, rejected = load_latest(tmp_path)
        assert doc is not None and doc["lsn"] == 10
        assert len(rejected) == 1
        assert rejected[0]["file"] == "snapshot-000000000025.json"
        assert "truncated" in rejected[0]["reason"]

    def test_crc_mismatch_is_rejected(self, tmp_path):
        _write(tmp_path, 10)
        path = _write(tmp_path, 25)
        doc = json.loads(path.read_text())
        doc["state"]["lsn"] = 999  # stale CRC
        path.write_text(json.dumps(doc))
        loaded, rejected = load_latest(tmp_path)
        assert loaded is not None and loaded["lsn"] == 10
        assert rejected and "CRC" in rejected[0]["reason"]

    def test_wrong_kind_is_rejected(self, tmp_path):
        path = snapshot_path(tmp_path, 7)
        path.write_text(json.dumps({"kind": "something_else"}))
        loaded, rejected = load_latest(tmp_path)
        assert loaded is None
        assert rejected and "envelope" in rejected[0]["reason"]

    def test_every_snapshot_corrupt_means_full_replay(self, tmp_path):
        for lsn in (10, 25):
            path = _write(tmp_path, lsn)
            raw = path.read_text()
            path.write_text(raw[: len(raw) // 3])
        doc, rejected = load_latest(tmp_path)
        assert doc is None
        assert len(rejected) == 2


class TestMidSnapshotCrash:
    def test_mid_snapshot_crash_leaves_a_torn_file(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("cmd_tick", 0.0, {"time": 0.0})
        journal.arm([CrashPoint(time=0.0, after_lsn=1, mid_snapshot=True)])
        with pytest.raises(SimulatedCrash):
            write_snapshot(
                tmp_path, journal.lsn, "service", {"x": 1}, journal=journal
            )
        # The torn file exists at the final name but never validates.
        entries = list_snapshots(tmp_path)
        assert len(entries) == 1 and not entries[0]["valid"]
        doc, rejected = load_latest(tmp_path)
        assert doc is None and len(rejected) == 1

    def test_unarmed_journal_does_not_crash_snapshots(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("cmd_tick", 0.0, {"time": 0.0})
        path = write_snapshot(
            tmp_path, journal.lsn, "service", {"x": 1}, journal=journal
        )
        doc, rejected = load_latest(tmp_path)
        assert doc is not None and doc["state"] == {"x": 1}
        assert path.exists() and rejected == []
