"""With ``durability=None`` the layer must change nothing.

Mirror of the resilience/adaptivity null-regression contract: a
default-constructed service and a durability-enabled one make identical
planning decisions; the default build declares no ``durability_``
instruments and takes no journal hooks at all.
"""

import repro
from repro.durability import DurabilityConfig
from repro.fleet import FleetController
from repro.service import AdmissionController, StreamQueryService, churn_trace

#: summary keys that depend on wall-clock
_VOLATILE = {"planning_seconds", "queries_per_second"}


def build_service(state_dir=None, seed=47):
    net = repro.transit_stub_by_size(32, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=8, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    ads = repro.AdvertisementIndex(hierarchy)
    optimizer = repro.TopDownOptimizer(hierarchy, rates, ads=ads)
    service = StreamQueryService(
        optimizer,
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=AdmissionController(budget=6),
        durability=(
            None if state_dir is None else DurabilityConfig(state_dir=state_dir)
        ),
    )
    return service, workload


class TestServiceParity:
    def test_replay_is_identical_with_and_without_the_layer(self, tmp_path):
        plain, workload = build_service(state_dir=None)
        durable, _ = build_service(state_dir=tmp_path / "state")
        assert plain.durability is None
        assert durable.durability is not None

        trace = churn_trace(workload, lifetime=4.0, repeats=2)
        report_plain = plain.replay(list(trace))
        report_durable = durable.replay(list(trace))

        assert report_plain.decisions == report_durable.decisions
        assert report_plain.ticks == report_durable.ticks
        clean = lambda s: {  # noqa: E731
            k: v for k, v in s.items() if k not in _VOLATILE
        }
        assert clean(report_plain.summary) == clean(report_durable.summary)
        assert plain.total_cost() == durable.total_cost()
        # and the durable run actually journaled the whole trace
        assert durable.durability.journal.records_total > 0

    def test_default_service_exposes_no_durability_metrics(self, tmp_path):
        plain, _ = build_service(state_dir=None)
        durable, _ = build_service(state_dir=tmp_path / "state")
        plain_names = set(plain.registry.names())
        durable_names = set(durable.registry.names())
        assert not {n for n in plain_names if n.startswith("durability_")}
        assert {n for n in durable_names if n.startswith("durability_")}
        assert plain_names == {
            n for n in durable_names if not n.startswith("durability_")
        }

    def test_default_service_has_no_hooks(self):
        plain, _ = build_service(state_dir=None)
        assert plain.durability is None
        assert plain._in_command is False

    def test_fleet_parity_and_shard_guard(self, tmp_path):
        import pytest

        net = repro.transit_stub_by_size(32, seed=3)
        hierarchy = repro.build_hierarchy(net, max_cs=6, seed=0)
        workload = repro.generate_workload(
            net,
            repro.WorkloadParams(num_streams=6, num_queries=6, joins_per_query=(1, 3)),
            seed=4,
        )
        rates = workload.rate_model()

        def build(durability):
            return FleetController(
                2, net, rates, hierarchy, policy="hash", budget=4,
                durability=durability,
            )

        plain = build(None)
        durable = build(DurabilityConfig(state_dir=tmp_path / "state"))
        for query in workload:
            plain.submit(query, lifetime=4.0)
            durable.submit(query, lifetime=4.0)
        for _ in range(6):
            plain.tick()
            durable.tick()
        assert plain.live_queries == durable.live_queries
        assert plain.total_cost() == durable.total_cost()
        assert plain.check_invariants() == durable.check_invariants() == []
        # Shards must never journal on their own.
        assert all(s.durability is None for s in durable.shards)
        with pytest.raises(repro.ReproError):
            FleetController(
                2, net, rates, hierarchy,
                durability=DurabilityConfig(state_dir=tmp_path / "s2"),
                service_kwargs={
                    "durability": DurabilityConfig(state_dir=tmp_path / "s3")
                },
            )
