"""Recovery: snapshot restore + journal replay converge, for both scopes."""

import json

import pytest

from repro.durability import inspect_state_dir, recover
from repro.durability.harness import (
    digest,
    fleet_scenario,
    resume_index,
    run_steps,
    service_scenario,
)
from repro.durability.journal import JOURNAL_FILE, scan_journal
from repro.durability.snapshot import list_snapshots


class TestServiceRecovery:
    @pytest.fixture(scope="class")
    def scenario(self):
        return service_scenario()

    def test_recover_reaches_the_exact_pre_crash_state(self, scenario, tmp_path):
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)

        # Recover BEFORE digesting: digest() drives further (journaled)
        # ticks, which would otherwise grow the very journal replayed.
        recovered, report = recover(
            state_dir, lambda: scenario.factory(state_dir)
        )
        assert report.scope == "service"
        assert report.snapshot_lsn > 0  # the script crosses a snapshot
        assert report.journal_drop["dropped_lines"] == 0
        # The recovered twin must keep making the same decisions the
        # baseline makes over the next ticks.
        want = digest(scenario, baseline, extra_ticks=4)
        assert digest(scenario, recovered, extra_ticks=4) == want

    def test_recovery_updates_instruments(self, scenario, tmp_path):
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)
        recovered, report = recover(
            state_dir, lambda: scenario.factory(state_dir)
        )
        reg = recovered.registry
        assert (
            reg.get("durability_recovery_replayed_records").total
            == report.replayed_records
        )
        assert reg.get("durability_recovery_ticks").total == report.replayed_ticks
        assert recovered.durability.recovered is True

    def test_factory_without_durability_is_rejected(self, scenario, tmp_path):
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)
        with pytest.raises(ValueError):
            recover(state_dir, lambda: scenario.factory(None))

    def test_corrupt_newest_snapshot_falls_back(self, scenario, tmp_path):
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)
        snaps = list_snapshots(state_dir)
        assert len(snaps) >= 1
        newest = state_dir / snaps[-1]["file"]
        raw = newest.read_text()
        newest.write_text(raw[: len(raw) // 2])

        recovered, report = recover(
            state_dir, lambda: scenario.factory(state_dir)
        )
        assert len(report.snapshots_rejected) == 1
        assert report.snapshot_lsn < snaps[-1]["lsn"]
        want = digest(scenario, baseline, extra_ticks=3)
        assert digest(scenario, recovered, extra_ticks=3) == want

    def test_torn_journal_tail_is_quarantined_and_reported(
        self, scenario, tmp_path
    ):
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)
        journal_path = state_dir / JOURNAL_FILE
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[: len(raw) - 11])

        # Read-only inspection sees the damage without touching disk.
        before = inspect_state_dir(state_dir)
        assert before["journal"]["dropped_lines"] == 1
        assert before["journal"]["dropped_bytes"] > 0
        assert before["journal"]["drop_reason"]

        recovered, report = recover(
            state_dir, lambda: scenario.factory(state_dir)
        )
        assert report.journal_drop["dropped_lines"] == 1
        assert report.journal_drop["quarantined_to"]
        assert (state_dir / report.journal_drop["quarantined_to"]).exists()
        # The recovered journal continues exactly after the last valid LSN.
        assert recovered.durability.journal.lsn == report.last_lsn


class TestFleetRecovery:
    @pytest.fixture(scope="class")
    def scenario(self):
        return fleet_scenario()

    def test_recover_restores_routing_tenancy_and_federation(
        self, scenario, tmp_path
    ):
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)

        recovered, report = recover(
            state_dir, lambda: scenario.factory(state_dir)
        )
        assert report.scope == "fleet"
        assert recovered.check_invariants() == []
        want = digest(scenario, baseline, extra_ticks=4)
        assert digest(scenario, recovered, extra_ticks=4) == want

    def test_scope_mismatch_is_rejected(self, scenario, tmp_path):
        service = service_scenario()
        state_dir = tmp_path / "state"
        baseline = service.factory(state_dir)
        run_steps(service, baseline)
        with pytest.raises(ValueError):
            recover(state_dir, lambda: scenario.factory(state_dir))


class TestInspect:
    def test_inspect_reports_replay_suffix_and_kinds(self, tmp_path):
        scenario = service_scenario()
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)
        doc = inspect_state_dir(state_dir)
        assert doc["journal"]["records"] > 0
        assert doc["journal"]["kinds"]["cmd_submit"] == 6
        assert doc["recovery"]["scope"] == "service"
        assert doc["recovery"]["snapshot_lsn"] > 0
        assert doc["recovery"]["replay_records"] >= 0
        assert doc["in_flight_migrations"] == []
        json.dumps(doc)  # JSON-ready throughout

    def test_resume_index_counts_valid_commands(self, tmp_path):
        scenario = service_scenario()
        state_dir = tmp_path / "state"
        baseline = scenario.factory(state_dir)
        run_steps(scenario, baseline)
        records, _ = scan_journal(state_dir / JOURNAL_FILE)
        assert resume_index(state_dir) == len(scenario.steps)
        assert len(records) > len(scenario.steps)  # markers ride along
