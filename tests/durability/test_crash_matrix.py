"""The acceptance bar: crash-restart equivalence across seeded points.

Every derived crash point -- command boundaries, deploy/retire markers,
each migration barrier phase, mid-snapshot, torn tails -- must recover
to a controller whose deployments, costs, queues and *next-N tick
decisions* are identical to an uncrashed run, with hierarchy and fleet
invariants clean after every recovery.
"""

import pytest

from repro.durability.harness import (
    crash_restart_matrix,
    default_crash_points,
    fleet_scenario,
    run_steps,
    service_scenario,
)
from repro.durability.journal import JOURNAL_FILE, scan_journal


class TestServiceMatrix:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        scenario = service_scenario()
        return crash_restart_matrix(
            scenario, tmp_path_factory.mktemp("service-matrix"), extra_ticks=4
        )

    def test_every_point_converges(self, report):
        assert report["converged"], [
            p for p in report["points"]
            if not p.get("digest_match") or p.get("invariant_violations")
        ]
        assert report["points_fired"] == len(report["points"])
        assert report["points_matched"] == len(report["points"])

    def test_at_least_ten_distinct_points(self, report):
        keys = {
            (p["after_lsn"], p["torn_tail"], p["mid_snapshot"])
            for p in report["points"]
        }
        assert len(keys) >= 10

    def test_matrix_covers_every_barrier_phase_and_mid_snapshot(
        self, tmp_path
    ):
        scenario = service_scenario()
        state_dir = tmp_path / "probe"
        run_steps(scenario, scenario.factory(state_dir))
        records, _ = scan_journal(state_dir / JOURNAL_FILE)
        kinds = {r["kind"] for r in records}
        phases = {
            r["data"]["phase"] for r in records if r["kind"] == "migrate_phase"
        }
        assert {"migrate_begin", "migrate_commit", "snapshot"} <= kinds
        assert phases == {"pause", "transfer", "resume", "swap"}
        points = default_crash_points(records)
        assert any(p.mid_snapshot for p in points)
        assert any(p.torn_tail for p in points)
        # A clean crash point lands on (or immediately after) every
        # barrier record, so recovery resumes mid-migration at each phase.
        barrier_lsns = {
            r["lsn"]
            for r in records
            if r["kind"] in ("migrate_begin", "migrate_phase", "migrate_commit")
        }
        covered = {p.after_lsn for p in points if not p.torn_tail}
        assert len(barrier_lsns & covered) >= 6

    def test_invariants_clean_after_every_recovery(self, report):
        for point in report["points"]:
            assert point["invariant_violations"] == []


class TestFleetMatrix:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        scenario = fleet_scenario()
        return crash_restart_matrix(
            scenario, tmp_path_factory.mktemp("fleet-matrix"), extra_ticks=4
        )

    def test_every_point_converges(self, report):
        assert report["converged"], [
            p for p in report["points"]
            if not p.get("digest_match") or p.get("invariant_violations")
        ]
        assert report["points_fired"] == len(report["points"])

    def test_at_least_ten_distinct_points(self, report):
        assert len(report["points"]) >= 10

    def test_rebalance_barriers_recover(self, report):
        # At least one crash point lands inside the cross-shard
        # rebalance's migrate ladder and still converges.
        mid_migration = [
            p for p in report["points"]
            if p.get("recovery", {}).get("in_flight_migrations")
        ]
        assert mid_migration
        for point in mid_migration:
            assert point["digest_match"]

    def test_invariants_clean_after_every_recovery(self, report):
        for point in report["points"]:
            assert point["invariant_violations"] == []
