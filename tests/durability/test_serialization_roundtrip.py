"""TickReport / AdmissionDecision JSON round-trips (regression guard)."""

import json

import repro
from repro.serialization import (
    admission_decision_from_json,
    admission_decision_to_json,
    tick_report_from_json,
    tick_report_to_json,
)
from repro.service import AdmissionController, StreamQueryService


def _service(seed=11):
    net = repro.transit_stub_by_size(24, seed=seed)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=5, joins_per_query=(1, 3)),
        seed=seed + 1,
    )
    rates = workload.rate_model()
    optimizer = repro.TopDownOptimizer(hierarchy, rates)
    service = StreamQueryService(
        optimizer, net, rates, hierarchy=hierarchy,
        admission=AdmissionController(budget=3),
    )
    return service, workload


class TestTickReportRoundTrip:
    def test_live_reports_round_trip(self):
        service, workload = _service()
        for query in workload:
            service.submit(query, lifetime=2.0)
        reports = [service.tick() for _ in range(4)]
        assert any(r.deployed or r.retired for r in reports)
        for report in reports:
            clone = tick_report_from_json(tick_report_to_json(report))
            assert clone.time == report.time
            assert clone.deployed == report.deployed
            assert clone.retired == report.retired
            assert clone.parked == report.parked
            assert clone.migrated == report.migrated
            assert clone.drift_streams == report.drift_streams

    def test_envelope_is_kind_tagged(self):
        service, workload = _service()
        service.submit(workload.queries[0], lifetime=2.0)
        doc = json.loads(tick_report_to_json(service.tick()))
        assert doc["kind"] == "repro.tick_report"

    def test_double_round_trip_is_stable(self):
        service, workload = _service()
        for query in workload:
            service.submit(query, lifetime=2.0)
        report = service.tick()
        once = tick_report_to_json(report)
        twice = tick_report_to_json(tick_report_from_json(once))
        assert once == twice


class TestAdmissionDecisionRoundTrip:
    def test_all_decision_statuses_round_trip(self):
        service, workload = _service()
        decisions = [
            service.submit(query, lifetime=5.0) for query in workload
        ]
        statuses = {d.status.value for d in decisions}
        assert "admitted" in statuses and "queued" in statuses
        for decision in decisions:
            clone = admission_decision_from_json(
                admission_decision_to_json(decision)
            )
            assert clone.query == decision.query
            assert clone.status is decision.status
            assert clone.reason == decision.reason
            assert clone.queue_position == decision.queue_position

    def test_rejected_decision_round_trips(self):
        service, workload = _service()
        service.submit(workload.queries[0], lifetime=5.0)
        duplicate = service.submit(workload.queries[0], lifetime=5.0)
        assert duplicate.rejected
        clone = admission_decision_from_json(
            admission_decision_to_json(duplicate)
        )
        assert clone.rejected and clone.status is duplicate.status

    def test_envelope_is_kind_tagged(self):
        service, workload = _service()
        decision = service.submit(workload.queries[0], lifetime=5.0)
        doc = json.loads(admission_decision_to_json(decision))
        assert doc["kind"] == "repro.admission_decision"
