"""Candidate panels: validation, building, layer toggles."""

import pytest

from repro.fleet import FleetController
from repro.lab.candidate import Candidate, candidates_from_list, default_panel
from repro.lab.spec import (
    CapacitySpec,
    ScenarioError,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
    build_scenario,
)
from repro.service import StreamQueryService


def tiny_built(**overrides):
    base = dict(
        name="tiny",
        seed=3,
        ticks=3,
        topology=TopologySpec(nodes=16, max_cs=4),
        workload=WorkloadSpec(streams=4, queries=4, joins=(1, 2)),
        trace=TraceSpec(mode="churn", lifetime=2.0),
    )
    base.update(overrides)
    return build_scenario(ScenarioSpec(**base))


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError, match="needs a name"):
            Candidate(name="")

    def test_bad_mode_and_role_rejected(self):
        with pytest.raises(ScenarioError, match="mode"):
            Candidate(name="x", mode="cluster")
        with pytest.raises(ScenarioError, match="role"):
            Candidate(name="x", role="challenger")

    def test_tenants_require_fleet_mode(self):
        with pytest.raises(ScenarioError, match="tenants require fleet"):
            Candidate(name="x", mode="service", tenants=True)

    def test_panel_rejects_duplicates_and_extra_anchors(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            candidates_from_list([{"name": "a"}, {"name": "a"}])
        with pytest.raises(ScenarioError, match="one baseline"):
            candidates_from_list(
                [{"name": "a", "role": "baseline"},
                 {"name": "b", "role": "baseline"}]
            )
        with pytest.raises(ScenarioError, match="one ceiling"):
            candidates_from_list(
                [{"name": "a", "role": "ceiling"},
                 {"name": "b", "role": "ceiling"}]
            )

    def test_empty_panel_rejected(self):
        with pytest.raises(ScenarioError, match="empty"):
            candidates_from_list([])

    def test_unknown_candidate_key_rejected(self):
        with pytest.raises(ScenarioError, match="bad candidate #0"):
            candidates_from_list([{"name": "a", "turbo": True}])

    def test_default_panel_shape(self):
        panel = default_panel()
        assert [c.name for c in panel] == ["no_reuse", "reuse"]
        assert panel[0].role == "baseline" and not panel[0].ads
        assert panel[1].ads


class TestBuilding:
    def test_service_mode_builds_a_service(self):
        built = tiny_built()
        plane = Candidate(name="svc", budget=8, max_per_tick=2).build(built)
        assert isinstance(plane, StreamQueryService)
        assert plane.admission.budget == 8
        assert plane.admission.max_per_tick == 2

    def test_no_ads_disables_planner_reuse(self):
        built = tiny_built()
        plane = Candidate(name="ctl", ads=False).build(built)
        assert plane.ads is None
        assert not plane.optimizer.reuse

    def test_reuse_override_decouples_from_ads(self):
        built = tiny_built()
        plane = Candidate(name="stock", ads=False, reuse=True).build(built)
        assert plane.ads is None
        assert plane.optimizer.reuse

    def test_fleet_mode_builds_a_fleet(self):
        built = tiny_built()
        plane = Candidate(name="f", mode="fleet", shards=2).build(built)
        assert isinstance(plane, FleetController)
        assert len(plane.shards) == 2

    def test_resources_need_a_capacity_profile(self):
        built = tiny_built()
        with pytest.raises(ScenarioError, match="no capacity profile"):
            Candidate(name="r", resources=True).build(built)

    def test_resources_build_against_the_scenario_capacities(self):
        built = tiny_built(capacity=CapacitySpec(profile="uniform"))
        plane = Candidate(name="r", resources=True).build(built)
        assert plane.resources is not None

    def test_faults_need_a_fault_plan(self):
        built = tiny_built()
        with pytest.raises(ScenarioError, match="no fault plan"):
            Candidate(name="f", faults=True).build(built)
