"""Scenario specs: parsing, validation, building, determinism."""

import dataclasses
import json
import sys
from pathlib import Path

import pytest

from repro.lab.spec import (
    BuiltScenario,
    CapacitySpec,
    ScenarioError,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
    build_scenario,
    list_scenarios,
    load_scenario,
    scenario_from_dict,
)

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "scenarios"


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        seed=3,
        ticks=3,
        topology=TopologySpec(nodes=16, max_cs=4),
        workload=WorkloadSpec(streams=4, queries=4, joins=(1, 2)),
        trace=TraceSpec(mode="churn", lifetime=2.0, arrivals_per_tick=2),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestParsing:
    def test_round_trip_through_to_dict(self):
        spec = tiny_spec(capacity=CapacitySpec(profile="hotspot"))
        again = scenario_from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            scenario_from_dict({"name": "x", "bogus": 1})

    def test_wrong_kind_rejected(self):
        with pytest.raises(ScenarioError, match="not a scenario document"):
            scenario_from_dict({"kind": "repro.telemetry"})

    def test_bad_section_key_rejected(self):
        with pytest.raises(ScenarioError, match="bad 'trace' section"):
            scenario_from_dict({"trace": {"cadence": 1}})

    def test_bad_trace_mode_rejected(self):
        with pytest.raises(ScenarioError, match="trace.mode"):
            scenario_from_dict({"trace": {"mode": "stampede"}})

    def test_bad_capacity_profile_rejected(self):
        with pytest.raises(ScenarioError, match="capacity.profile"):
            scenario_from_dict({"capacity": {"profile": "lumpy"}})

    def test_bad_fault_plan_fails_at_parse_time(self):
        with pytest.raises(Exception):
            scenario_from_dict({"faults": {"events": [{"kind": "meteor"}]}})

    def test_joins_list_coerced_to_tuple(self):
        spec = scenario_from_dict({"workload": {"joins": [1, 3]}})
        assert spec.workload.joins == (1, 3)

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        assert load_scenario(path).name == "tiny"

    def test_load_bad_json_reports_path(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="cannot parse"):
            load_scenario(path)

    def test_load_non_table_rejected(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("[1, 2]")
        with pytest.raises(ScenarioError, match="scenario table"):
            load_scenario(path)

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib needs py3.11"
    )
    def test_load_toml_file(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text('name = "from-toml"\nseed = 9\n[trace]\nlifetime = 0.0\n')
        spec = load_scenario(path)
        assert spec.name == "from-toml"
        assert spec.trace.effective_lifetime() is None

    def test_toml_gated_without_tomllib(self, tmp_path, monkeypatch):
        monkeypatch.setitem(sys.modules, "tomllib", None)
        path = tmp_path / "s.toml"
        path.write_text('name = "x"\n')
        with pytest.raises(ScenarioError, match="JSON form"):
            load_scenario(path)


class TestValidation:
    def test_effective_lifetime_zero_and_negative_mean_forever(self):
        assert TraceSpec(lifetime=0.0).effective_lifetime() is None
        assert TraceSpec(lifetime=-1.0).effective_lifetime() is None
        assert TraceSpec(lifetime=None).effective_lifetime() is None
        assert TraceSpec(lifetime=2.5).effective_lifetime() == 2.5

    def test_tiny_topology_rejected(self):
        with pytest.raises(ScenarioError, match="nodes"):
            TopologySpec(nodes=2)

    def test_zero_ticks_rejected(self):
        with pytest.raises(ScenarioError, match="ticks"):
            ScenarioSpec(ticks=0)


class TestBuilding:
    def test_build_is_deterministic(self):
        spec = tiny_spec()
        a, b = build_scenario(spec), build_scenario(spec)
        assert a.network.num_nodes == b.network.num_nodes
        assert [q.name for q in a.env.workload] == [
            q.name for q in b.env.workload
        ]
        assert [(e.time, e.query.name) for e in a.events] == [
            (e.time, e.query.name) for e in b.events
        ]
        assert (a.network.cost_matrix() == b.network.cost_matrix()).all()

    def test_churn_trace_respects_spec_knobs(self):
        built = build_scenario(tiny_spec())
        assert len(built.events) == 4
        assert all(e.lifetime == 2.0 for e in built.events)
        assert built.timeline is None and built.capacities is None

    def test_twin_burst_originals_then_shifted_twins(self):
        spec = tiny_spec(
            trace=TraceSpec(mode="twin_burst", lifetime=0.0, sink_shift=3)
        )
        built = build_scenario(spec)
        originals = [e for e in built.events if e.time == 1.0]
        twins = [e for e in built.events if e.time == 2.0]
        assert len(originals) == len(twins) == 4
        n = built.network.num_nodes
        for orig, twin in zip(originals, twins):
            assert twin.query.name == orig.query.name + "__twin"
            assert twin.query.sink == (orig.query.sink + 3) % n
            assert twin.lifetime is None

    def test_drift_events_compile_to_a_timeline(self):
        spec = tiny_spec(
            drift=[{"kind": "step", "at": 2.0, "factor": 4.0}]
        )
        built = build_scenario(spec)
        assert built.timeline is not None
        base = sum(s.rate for s in built.timeline.streams_at(0.0).values())
        after = sum(s.rate for s in built.timeline.streams_at(10.0).values())
        assert after > base

    def test_capacity_profiles_cover_every_node(self):
        for profile in ("uniform", "hotspot", "heterogeneous"):
            spec = tiny_spec(capacity=CapacitySpec(profile=profile))
            built = build_scenario(spec)
            assert set(built.capacities) == set(built.network.nodes())

    def test_fault_plan_builds_fresh_each_call(self):
        plan_doc = {"events": [{"kind": "node_crash", "time": 1.0, "node": 0}]}
        spec = tiny_spec(faults=plan_doc)
        built = build_scenario(spec)
        assert built.fault_plan() is not built.fault_plan()


class TestCheckedInScenarios:
    def test_all_shipped_scenarios_parse(self):
        rows = list_scenarios(SCENARIO_DIR)
        parsed = [r for r in rows if "error" not in r]
        skipped = [r for r in rows if "error" in r]
        # the TOML scenario is unreadable only below py3.11
        assert all(r["file"].endswith(".toml") for r in skipped)
        if sys.version_info >= (3, 11):
            assert not skipped
        names = {r["name"] for r in parsed}
        assert {"fleet_reuse", "resources_hotspot", "lab_smoke"} <= names
        for row in parsed:
            assert row["candidates"], row["file"]

    def test_list_scenarios_reports_broken_files(self, tmp_path):
        (tmp_path / "bad.json").write_text("{nope")
        rows = list_scenarios(tmp_path)
        assert rows and "error" in rows[0]

    def test_list_scenarios_missing_dir_is_empty(self, tmp_path):
        assert list_scenarios(tmp_path / "nope") == []
