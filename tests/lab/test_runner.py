"""Lab runs: the envelope contract, determinism, and the headline repro."""

import json
from pathlib import Path

import pytest

from repro.lab import LabReport, load_scenario, run_lab
from repro.lab.report import lab_to_json
from repro.lab.runner import ENVELOPE_KIND, LAB_SCOPE
from repro.lab.spec import (
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
    build_scenario,
)

SCENARIO_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "scenarios"


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        seed=3,
        ticks=3,
        topology=TopologySpec(nodes=16, max_cs=4),
        workload=WorkloadSpec(streams=4, queries=4, joins=(1, 2)),
        trace=TraceSpec(mode="churn", lifetime=2.0, arrivals_per_tick=2),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestRunLab:
    def test_default_panel_when_spec_names_none(self):
        result = run_lab(tiny_spec())
        assert [r.candidate.name for r in result.runs] == ["no_reuse", "reuse"]

    def test_unknown_candidate_lookup_raises(self):
        result = run_lab(tiny_spec())
        with pytest.raises(KeyError):
            result.run("nope")

    def test_metrics_carry_the_comparison_keys(self):
        result = run_lab(tiny_spec())
        metrics = result.run("reuse").metrics()
        for key in (
            "final_cost", "cost_ticks", "live", "deployed_total",
            "cache_hit_rate", "plans_computed", "alerts_fired",
            "telemetry_samples", "telemetry_series",
        ):
            assert key in metrics, key
        assert metrics["deployed_total"] > 0
        assert metrics["cost_ticks"] > 0

    def test_each_candidate_gets_its_own_telemetry(self):
        result = run_lab(tiny_spec())
        stores = {id(r.telemetry.store) for r in result.runs}
        assert len(stores) == len(result.runs)
        for r in result.runs:
            names = set(r.telemetry.store.names())
            assert f"{LAB_SCOPE}.total_cost" in names
            assert f"{LAB_SCOPE}.live_queries" in names

    def test_ops_are_profiled_per_candidate(self):
        result = run_lab(tiny_spec())
        for r in result.runs:
            assert r.ops, r.candidate.name
            assert all(isinstance(v, int) for v in r.ops.values())

    def test_envelope_shape(self):
        envelope = run_lab(tiny_spec()).envelope()
        assert envelope["kind"] == ENVELOPE_KIND
        assert envelope["scenario"]["name"] == "tiny"
        assert len(envelope["candidates"]) == 2
        entry = envelope["candidates"][0]
        assert set(entry) == {"candidate", "metrics", "ops", "telemetry"}


class TestDeterminism:
    def test_same_seed_means_byte_identical_envelopes(self):
        spec = tiny_spec()
        first = lab_to_json(run_lab(spec))
        second = lab_to_json(run_lab(spec))
        assert first == second

    def test_no_wall_clock_leaks_into_the_envelope(self):
        text = lab_to_json(run_lab(tiny_spec()))
        assert "wall_seconds" not in text
        assert "service_planning_seconds" not in text

    def test_shipped_smoke_scenario_is_deterministic(self):
        spec = load_scenario(SCENARIO_DIR / "lab_smoke.json")
        assert lab_to_json(run_lab(spec)) == lab_to_json(run_lab(spec))


class TestDriving:
    def test_drive_extends_horizon_past_ticks_for_late_events(self):
        spec = tiny_spec(ticks=1, trace=TraceSpec(mode="twin_burst"))
        built = build_scenario(spec)
        assert max(e.time for e in built.events) == 2.0
        result = run_lab(spec)
        # both bursts were submitted even though ticks=1
        assert result.run("reuse").clock >= 2.0
        assert result.run("reuse").metrics()["deployed_total"] == 8

    def test_drift_scenarios_price_costs_with_an_oracle(self):
        spec = tiny_spec(
            ticks=4,
            trace=TraceSpec(mode="churn", lifetime=0.0),
            drift=[{"kind": "step", "at": 2.0, "factor": 5.0}],
        )
        flat = tiny_spec(ticks=4, trace=TraceSpec(mode="churn", lifetime=0.0))
        drifted = run_lab(spec).run("reuse").metrics()["final_cost"]
        calm = run_lab(flat).run("reuse").metrics()["final_cost"]
        # same deployments, 5x input rates => strictly costlier system
        assert drifted > calm


class TestHeadlineReproduction:
    def test_fleet_reuse_scenario_reproduces_the_bench_fleet_bar(self):
        """The checked-in scenario recovers >= 80% of the single-service
        reuse savings across 4 hash-routed shards (the paper-motivated
        ``bench_fleet`` acceptance bar), straight from the lab."""
        spec = load_scenario(SCENARIO_DIR / "fleet_reuse.json")
        result = run_lab(spec)
        report = LabReport.from_result(result)

        metrics = {name: result.run(name).metrics() for name in report.names}
        ceiling = (
            metrics["no_reuse"]["final_cost"]
            - metrics["single_reuse"]["final_cost"]
        )
        assert ceiling > 0, "workload has no reuse potential to measure"
        recovery = report.recovery()["fleet_hash_4"]
        assert recovery >= 0.80
        assert metrics["fleet_hash_4"]["cross_shard_reuse"] > 0
        assert metrics["fleet_hash_4"]["invariant_violations"] == 0
