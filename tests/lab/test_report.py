"""LabReport: delta math, recovery, rendering, CSV export."""

import json

import pytest

from repro.lab.report import (
    LabReport,
    lab_envelope_from_json,
    lab_envelope_to_csv,
    lab_to_json,
    render_lab_html,
    render_lab_terminal,
)


def entry(name, role, metrics, series=None, ops=None):
    return {
        "candidate": {
            "name": name, "role": role, "mode": "service",
            "description": f"{name} description",
        },
        "metrics": metrics,
        "ops": ops or {},
        "telemetry": {"series": series or {}},
    }


def envelope(*entries):
    return {
        "kind": "repro.lab",
        "version": 1,
        "scenario": {"name": "synthetic", "seed": 1, "ticks": 4},
        "candidates": list(entries),
    }


def three_way():
    return envelope(
        entry("base", "baseline", {"final_cost": 100.0, "live": 4}),
        entry("ceil", "ceiling", {"final_cost": 40.0, "live": 4}),
        entry("mid", "contender", {"final_cost": 55.0, "live": 4}),
    )


class TestValidation:
    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="not a lab envelope"):
            lab_envelope_from_json({"kind": "repro.telemetry"})

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="no candidate runs"):
            lab_envelope_from_json({"kind": "repro.lab", "candidates": []})


class TestComparison:
    def test_deltas_are_relative_to_the_baseline(self):
        report = LabReport(three_way())
        row = next(r for r in report.table() if r["metric"] == "final_cost")
        by_name = {c["candidate"]: c for c in row["cells"]}
        assert by_name["base"]["delta"] is None
        assert by_name["ceil"]["delta"] == -60.0
        assert by_name["mid"]["delta"] == -45.0

    def test_metrics_nobody_reports_are_skipped(self):
        report = LabReport(three_way())
        assert "migrations" not in {r["metric"] for r in report.table()}

    def test_recovery_ratio(self):
        recovery = LabReport(three_way()).recovery()
        assert recovery["ceil"] == pytest.approx(1.0)
        assert recovery["mid"] == pytest.approx(0.75)

    def test_recovery_needs_both_anchors(self):
        doc = envelope(
            entry("base", "baseline", {"final_cost": 100.0}),
            entry("mid", "contender", {"final_cost": 55.0}),
        )
        assert LabReport(doc).recovery() == {}

    def test_recovery_falls_back_to_cost_ticks_for_churn(self):
        doc = envelope(
            entry("base", "baseline", {"final_cost": 0.0, "cost_ticks": 200.0}),
            entry("ceil", "ceiling", {"final_cost": 0.0, "cost_ticks": 100.0}),
            entry("mid", "contender", {"final_cost": 0.0, "cost_ticks": 150.0}),
        )
        assert LabReport(doc).recovery()["mid"] == pytest.approx(0.5)

    def test_summary_is_json_able(self):
        summary = LabReport(three_way()).summary()
        json.dumps(summary)
        assert summary["scenario"]["name"] == "synthetic"
        assert [c["name"] for c in summary["candidates"]] == [
            "base", "ceil", "mid",
        ]


class TestRendering:
    def test_terminal_lists_every_candidate_and_recovery(self):
        text = render_lab_terminal(LabReport(three_way()))
        for name in ("base", "ceil", "mid"):
            assert name in text
        assert "savings recovery" in text
        assert "75.0%" in text

    def test_terminal_draws_lab_series_sparklines(self):
        doc = envelope(
            entry(
                "base", "baseline", {"final_cost": 1.0},
                series={"lab.total_cost": [[1.0, 5.0], [2.0, 3.0]]},
            ),
        )
        text = render_lab_terminal(LabReport(doc))
        assert "[lab.total_cost]" in text

    def test_html_is_self_contained(self):
        doc = three_way()
        doc["candidates"][0]["telemetry"]["series"] = {
            "lab.total_cost": [[1.0, 5.0], [2.0, 3.0]],
        }
        doc["candidates"][0]["ops"] = {"cost_evaluations": 42}
        html = render_lab_html(LabReport(doc))
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html and "<svg" in html
        assert "cost_evaluations" in html
        assert "75.0%" in html
        assert "src=" not in html and "href=" not in html

    def test_html_marks_improvements_against_the_baseline(self):
        html = render_lab_html(LabReport(three_way()))
        assert 'class="num better"' in html

    def test_json_serialization_is_stable(self):
        doc = three_way()
        assert lab_to_json(doc) == lab_to_json(dict(doc))
        assert lab_to_json(doc).endswith("\n")


class TestCsvExport:
    def test_candidate_column_and_single_header(self):
        doc = envelope(
            entry(
                "a", "baseline", {},
                series={"lab.total_cost": [[1.0, 2.0]]},
            ),
            entry(
                "b", "contender", {},
                series={"lab.total_cost": [[1.0, 4.0]]},
            ),
        )
        csv = lab_envelope_to_csv(doc)
        lines = csv.strip().split("\n")
        assert lines[0] == "candidate,series,time,value"
        assert lines[1:] == [
            "a,lab.total_cost,1.0,2.0",
            "b,lab.total_cost,1.0,4.0",
        ]
