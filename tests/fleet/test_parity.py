"""Single-shard parity: a 1-shard, tenant-free fleet IS the bare service."""

import pytest

import repro
from repro.service import churn_trace


def build_single(env, budget):
    net, hierarchy, workload, rates = env
    ads = repro.AdvertisementIndex(hierarchy)
    return repro.StreamQueryService(
        repro.TopDownOptimizer(hierarchy, rates, ads=ads),
        net,
        rates,
        hierarchy=hierarchy,
        ads=ads,
        admission=repro.AdmissionController(budget=budget),
    )


def build_one_shard_fleet(env, budget):
    net, hierarchy, workload, rates = env
    return repro.FleetController(
        1, net, rates, hierarchy, algorithm="top-down", budget=budget
    )


class TestSingleShardParity:
    @pytest.fixture(scope="class")
    def replayed(self, fleet_env):
        _, _, workload, _ = fleet_env
        trace = churn_trace(workload, lifetime=3.0, arrivals_per_tick=2, repeats=2)
        single = build_single(fleet_env, budget=4)
        fleet = build_one_shard_fleet(fleet_env, budget=4)
        single_report = single.replay(list(trace))
        fleet_report = fleet.replay(list(trace))
        return single, fleet, single_report, fleet_report

    def test_identical_decision_sequence(self, replayed):
        single, fleet, single_report, fleet_report = replayed
        assert [
            (d.query, d.status, d.reason, d.queue_position)
            for d in single_report.decisions
        ] == [
            (
                f.decision.query,
                f.decision.status,
                f.decision.reason,
                f.decision.queue_position,
            )
            for f in fleet_report.decisions
        ]

    def test_identical_tick_count(self, replayed):
        _, _, single_report, fleet_report = replayed
        assert single_report.ticks == fleet_report.ticks

    def test_identical_counters(self, replayed):
        single, fleet, single_report, fleet_report = replayed
        shard = fleet.shards[0]
        assert shard.deployed_total == single.deployed_total
        assert shard.retired_total == single.retired_total
        assert shard.plans_computed == single.plans_computed
        assert shard.statistics_epoch == single.statistics_epoch
        assert shard.topology_epoch == single.topology_epoch

    def test_identical_cache_behavior(self, replayed):
        single, fleet, _, _ = replayed
        shard = fleet.shards[0]
        assert shard.cache.hits == single.cache.hits
        assert shard.cache.misses == single.cache.misses
        assert shard.cache.invalidations == single.cache.invalidations

    def test_identical_final_state(self, replayed):
        single, fleet, single_report, fleet_report = replayed
        assert fleet_report.summary["final_live"] == single_report.summary["final_live"]
        assert fleet.total_cost() == single.total_cost()
        assert fleet_report.summary["final_cost"] == single_report.summary["final_cost"]

    def test_no_federation_activity(self, replayed):
        _, fleet, _, _ = replayed
        # a 1-shard fleet has nobody to federate with
        assert fleet.federation.imported_total == 0
        assert fleet.federation.promoted_total == 0
        assert fleet.cross_shard_reuse_total == 0


class TestStepwiseParity:
    def test_submit_tick_retire_trace(self, fleet_env):
        """Drive both planes through an explicit mixed trace, comparing
        decisions and costs at every step."""
        _, _, workload, _ = fleet_env
        single = build_single(fleet_env, budget=2)
        fleet = build_one_shard_fleet(fleet_env, budget=2)

        queries = workload.queries
        script = [
            ("submit", queries[0], 5.0),
            ("submit", queries[1], None),
            ("submit", queries[2], 4.0),  # queued: budget 2
            ("tick", 1.0, None),
            ("submit", queries[3], 2.0),
            ("retire", queries[1].name, None),
            ("tick", 2.0, None),
            ("tick", 5.0, None),
            ("tick", 6.0, None),
        ]
        for op, a, b in script:
            if op == "submit":
                ds = single.submit(a, lifetime=b)
                df = fleet.submit(a, lifetime=b)
                assert (ds.status, ds.reason) == (
                    df.decision.status,
                    df.decision.reason,
                )
            elif op == "tick":
                rs = single.tick(a)
                rf = fleet.tick(a)
                assert rs.deployed == [n for n, _ in rf.deployed]
                assert rs.retired == [n for n, _ in rf.retired]
            elif op == "retire":
                assert single.retire(a) == fleet.retire(a)
            assert single.total_cost() == fleet.total_cost()
            assert sorted(single.live_queries) == sorted(fleet.live_queries)
        assert fleet.check_invariants() == []
