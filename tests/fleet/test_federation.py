"""Cross-shard view reuse: federation, invalidation, promotion."""

import repro
from repro.fleet import FEDERATION_OWNER

from tests.fleet.conftest import ByNamePolicy, build_fleet, renamed


def reuse_pair(fleet_env):
    """Two queries where the second can reuse the first's root view."""
    net, _, workload, _ = fleet_env
    q1 = workload.queries[0]
    q2 = renamed(q1, "reuser", sink=(q1.sink + 5) % len(net.nodes()))
    return q1, q2


def split_fleet(fleet_env, q1, q2, **kwargs):
    """Two shards with q1 pinned to shard 0 and q2 to shard 1."""
    return build_fleet(
        fleet_env,
        num_shards=2,
        policy=ByNamePolicy({q1.name: 0, q2.name: 1}),
        **kwargs,
    )


class TestCrossShardReuse:
    def test_view_deployed_by_shard_a_reused_by_shard_b(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet.tick()  # sync publishes shard 0's views fleet-wide
        fleet.submit(q2)
        deployment = next(
            d for d in fleet.shards[1].engine.state.deployments
            if d.query.name == q2.name
        )
        assert deployment.reused_leaves()
        assert fleet.cross_shard_reuse_total >= 1
        assert fleet.federation.active_imports >= 1

    def test_reuse_cost_parity_with_single_service(self, fleet_env):
        net, hierarchy, _, rates = fleet_env
        q1, q2 = reuse_pair(fleet_env)

        ads = repro.AdvertisementIndex(hierarchy)
        single = repro.StreamQueryService(
            repro.TopDownOptimizer(hierarchy, rates, ads=ads),
            net, rates, hierarchy=hierarchy, ads=ads,
        )
        single.submit(q1)
        base = single.total_cost()
        single.submit(q2)
        single_marginal = single.total_cost() - base

        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet_base = fleet.total_cost()
        fleet.tick()
        fleet.submit(q2)
        fleet_marginal = fleet.total_cost() - fleet_base

        assert fleet_marginal == single_marginal

    def test_no_federation_means_no_cross_shard_reuse(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2, federation=False)
        fleet.submit(q1)
        fleet.tick()
        fleet.submit(q2)
        deployment = next(
            d for d in fleet.shards[1].engine.state.deployments
            if d.query.name == q2.name
        )
        assert not deployment.reused_leaves()
        assert fleet.cross_shard_reuse_total == 0

    def test_imports_are_not_reexported(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet.tick()
        # shard 1 imports shard 0's views but must not offer them back
        for key in fleet.federation.imports(1):
            assert key not in fleet.federation.exports(1)


class TestInvalidation:
    def test_owner_retirement_withdraws_imports(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet.tick()
        imported = fleet.federation.imports(1)
        assert imported
        epoch = fleet.federation.epoch
        fleet.retire(q1.name)  # owner gone, nobody consuming: withdraw
        assert fleet.federation.active_imports == 0
        assert fleet.federation.epoch > epoch
        for sig, node in imported:
            assert node not in fleet.shards[1].ads.view_nodes(sig)
            assert not fleet.shards[1].engine.state.has_view(sig, node)

    def test_withdrawal_evicts_referencing_cached_plans(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet.tick()
        fleet.submit(q2)  # caches a plan on shard 1 referencing the import
        fleet.retire(q2.name)
        invalidations = fleet.shards[1].cache.invalidations
        fleet.retire(q1.name)  # import withdrawn -> cached plan evicted
        assert fleet.shards[1].cache.invalidations > invalidations
        # a resubmission replans cleanly without the remote view
        decision = fleet.submit(renamed(q2, "reuser2", sink=q2.sink))
        assert decision.admitted

    def test_promotion_keeps_consumed_views_alive(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet.tick()
        fleet.submit(q2)
        deployment = next(
            d for d in fleet.shards[1].engine.state.deployments
            if d.query.name == q2.name
        )
        consumed = [
            fleet.federation.import_for(1, leaf.view, deployment.placement[leaf])
            for leaf in deployment.reused_leaves()
        ]
        consumed = [key for key in consumed if key is not None]
        assert consumed
        cost_before = fleet.shards[1].engine.state.query_cost(q2.name)
        fleet.retire(q1.name)  # q2 still consumes: promote, don't withdraw
        assert fleet.federation.promoted_total >= 1
        assert fleet.shards[1].is_live(q2.name)
        assert fleet.shards[1].engine.state.query_cost(q2.name) == cost_before
        for sig, node in consumed:
            # the record survives as a local operator of shard 1 ...
            assert fleet.shards[1].engine.state.has_view(sig, node)
            assert not fleet.federation.is_import(1, sig, node)
            # ... with no federation claim left on it
            consumers = fleet.shards[1].engine.state.queries_using(sig, node)
            assert FEDERATION_OWNER not in consumers

    def test_promoted_view_is_reexported(self, fleet_env):
        q1, q2 = reuse_pair(fleet_env)
        fleet = split_fleet(fleet_env, q1, q2)
        fleet.submit(q1)
        fleet.tick()
        fleet.submit(q2)
        deployment = next(
            d for d in fleet.shards[1].engine.state.deployments
            if d.query.name == q2.name
        )
        consumed = [
            fleet.federation.import_for(1, leaf.view, deployment.placement[leaf])
            for leaf in deployment.reused_leaves()
        ]
        consumed = [key for key in consumed if key is not None]
        fleet.retire(q1.name)
        fleet.tick()
        exports = fleet.federation.exports(1)
        assert any(key in exports for key in consumed)
