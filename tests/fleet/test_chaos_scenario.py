"""Acceptance: the seeded fleet chaos scenario fires deterministic alerts.

The ISSUE's bar: with telemetry on, a seeded chaos drill must fire
breaker-trip and cache-hit-rate alerts at deterministic virtual ticks
and emit flight-recorder bundles whose causal trace ids resolve in the
causal tracer (``repro trace --causal``'s data source).
"""

from repro.fleet.scenario import chaos_telemetry_scenario
from repro.serialization import telemetry_to_json


class TestChaosTelemetryScenario:
    def test_scenario_fires_breaker_and_cache_alerts(self):
        result = chaos_telemetry_scenario(seed=7)
        envelope = result.telemetry.envelope()
        events = envelope["rules"]["events"]
        fired = {
            e["rule"]: e["time"] for e in events if e["to"] == "firing"
        }
        breaker = [r for r in fired if r.endswith(":breaker_tripped")]
        cache = [r for r in fired if r.endswith(":cache_hit_rate_low")]
        assert breaker, f"no breaker alert fired; events={fired}"
        assert cache, f"no cache-hit-rate alert fired; events={fired}"
        # the outage starts at tick 3; trips land inside/just after it
        assert all(3.0 <= fired[r] <= 12.0 for r in breaker)

    def test_firing_ticks_are_deterministic(self):
        def firing_schedule():
            result = chaos_telemetry_scenario(seed=7)
            return [
                (e["rule"], e["time"], e["to"])
                for e in result.telemetry.envelope()["rules"]["events"]
            ]

        assert firing_schedule() == firing_schedule()

    def test_envelope_bytes_are_deterministic(self):
        first = telemetry_to_json(chaos_telemetry_scenario(seed=7).telemetry)
        second = telemetry_to_json(chaos_telemetry_scenario(seed=7).telemetry)
        assert first == second

    def test_bundle_trace_ids_resolve_in_causal_tracer(self):
        result = chaos_telemetry_scenario(seed=7)
        flight = result.telemetry.envelope()["flight"]
        assert flight["bundles_total"] > 0
        bundle_ids = set()
        for bundle in flight["bundles"]:
            bundle_ids.update(bundle["trace_ids"])
        assert bundle_ids, "bundles carry no causal annotations"
        known = set(result.causal.trace_ids())
        assert bundle_ids <= known
        # and every id expands to a real span tree
        for trace_id in bundle_ids:
            tree = result.causal.span_tree(trace_id)
            assert tree is not None

    def test_breaker_open_bundles_emitted(self):
        result = chaos_telemetry_scenario(seed=7)
        flight = result.telemetry.envelope()["flight"]
        reasons = {b["reason"] for b in flight["bundles"]}
        assert any(r == "breaker_open" for r in reasons)
        assert any(r.startswith("alert:") for r in reasons)

    def test_scenario_shape(self):
        result = chaos_telemetry_scenario(seed=7, ticks=10)
        assert result.ticks == 10
        assert result.decisions
        assert len(result.fleet.shards) == 2
        assert result.plan.events  # the outage script is part of the result
        scopes = result.telemetry.scraper.scopes()
        assert scopes == ["fleet", "shard0", "shard1"]
