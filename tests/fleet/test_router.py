"""Router invariants: single ownership, locality, hash determinism."""

import pytest

import repro
from repro.fleet import HashShardPolicy, QueryRouter, SubtreeLocalityPolicy, make_policy
from repro.service import churn_trace

from tests.fleet.conftest import build_fleet, renamed


class TestHashPolicy:
    def test_deterministic_and_name_insensitive(self, fleet_env):
        _, _, workload, _ = fleet_env
        policy = HashShardPolicy()
        for query in workload.queries:
            shard = policy.assign(query, 4, [0, 0, 0, 0])
            assert shard == policy.assign(query, 4, [0, 0, 0, 0])
            # the fingerprint is name-insensitive: a resubmission under a
            # new name hashes to the same shard and hits its plan cache
            assert shard == policy.assign(renamed(query, "other"), 4, [0, 0, 0, 0])

    def test_in_range(self, fleet_env):
        _, _, workload, _ = fleet_env
        policy = HashShardPolicy()
        for n in (1, 2, 3, 5):
            for query in workload.queries:
                assert 0 <= policy.assign(query, n, [0] * n) < n


class TestSubtreeLocality:
    def test_same_subtree_queries_colocate(self, fleet_env):
        net, hierarchy, workload, rates = fleet_env
        policy = SubtreeLocalityPolicy(hierarchy, rates)
        shard_of = {
            q.name: policy.assign(q, 4, [0, 0, 0, 0]) for q in workload.queries
        }
        for a in workload.queries:
            for b in workload.queries:
                if policy.locality_key(a) == policy.locality_key(b):
                    assert shard_of[a.name] == shard_of[b.name]

    def test_locality_key_covers_all_sources(self, fleet_env):
        net, hierarchy, workload, rates = fleet_env
        policy = SubtreeLocalityPolicy(hierarchy, rates)
        for query in workload.queries:
            level, coordinator = policy.locality_key(query)
            cluster = hierarchy.cluster_of(coordinator, level)
            nodes = {rates.source(s) for s in query.sources}
            assert nodes <= cluster.subtree_nodes()

    def test_fleet_colocates_live_queries(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=4, policy="subtree", budget=16)
        _, hierarchy, workload, rates = fleet_env
        for query in workload.queries:
            fleet.submit(query)
        policy = fleet.router.policy
        owners = fleet.router.owners()
        for a in workload.queries:
            for b in workload.queries:
                if policy.locality_key(a) == policy.locality_key(b):
                    assert owners[a.name] == owners[b.name]


class TestMakePolicy:
    def test_resolves_names(self, fleet_env):
        _, hierarchy, _, rates = fleet_env
        assert make_policy("hash").name == "hash"
        assert make_policy("subtree", hierarchy, rates).name == "subtree"

    def test_unknown_policy_rejected(self):
        with pytest.raises(repro.ReproError):
            make_policy("nope")

    def test_subtree_needs_context(self):
        with pytest.raises(repro.ReproError):
            make_policy("subtree")


class TestOwnershipInvariant:
    def test_every_live_query_owned_by_exactly_one_shard(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=3, budget=3)
        _, _, workload, _ = fleet_env
        trace = churn_trace(workload, lifetime=4.0, arrivals_per_tick=3, repeats=2)
        clock = 0.0
        for event in sorted(trace, key=lambda e: e.time):
            while clock < event.time:
                clock += 1.0
                fleet.tick(clock)
                assert fleet.check_invariants() == []
            fleet.submit(event.query, lifetime=event.lifetime)
            live_sets = [set(s.live_queries) for s in fleet.shards]
            for i in range(len(live_sets)):
                for j in range(i + 1, len(live_sets)):
                    assert not (live_sets[i] & live_sets[j])
            for sid, names in enumerate(live_sets):
                for name in names:
                    assert fleet.router.owner(name) == sid
        assert fleet.check_invariants() == []

    def test_duplicate_name_routes_to_owner_and_rejects(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=3)
        _, _, workload, _ = fleet_env
        query = workload.queries[0]
        first = fleet.submit(query)
        assert first.admitted
        dup = fleet.submit(query)
        assert dup.rejected
        assert "already deployed" in dup.decision.reason
        assert dup.shard == first.shard

    def test_release_on_retire(self, fleet_env):
        fleet = build_fleet(fleet_env)
        _, _, workload, _ = fleet_env
        query = workload.queries[0]
        fleet.submit(query)
        assert fleet.router.owner(query.name) is not None
        assert fleet.retire(query.name) is True
        assert fleet.router.owner(query.name) is None
        assert fleet.check_invariants() == []

    def test_router_rejects_double_bind(self):
        router = QueryRouter(HashShardPolicy(), 2)
        router.bind("q", 0)
        with pytest.raises(repro.ReproError):
            router.bind("q", 1)
