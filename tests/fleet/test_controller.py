"""FleetController lifecycle: ticks, retire, rebalance, metrics."""

import pytest

import repro
from repro.errors import UnknownQueryError
from repro.service import AdmissionStatus, churn_trace

from tests.fleet.conftest import ByNamePolicy, build_fleet, renamed


class TestLifecycle:
    def test_replay_drains_everything(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=3, budget=4)
        _, _, workload, _ = fleet_env
        trace = churn_trace(workload, lifetime=3.0, arrivals_per_tick=2, repeats=2)
        report = fleet.replay(trace)
        s = report.summary
        assert s["submitted"] == 2 * len(workload)
        assert s["rejected"] == 0
        assert s["deployed_total"] == s["retired_total"] == s["submitted"]
        assert s["final_live"] == 0
        assert s["cache_hits"] > 0  # second round reuses shard caches
        assert fleet.check_invariants() == []

    def test_shard_queueing_and_tick_drain(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=1, budget=2)
        _, _, workload, _ = fleet_env
        decisions = [
            fleet.submit(q, lifetime=2.0) for q in workload.queries[:4]
        ]
        statuses = [d.status for d in decisions]
        assert statuses[:2] == [AdmissionStatus.ADMITTED] * 2
        assert statuses[2:] == [AdmissionStatus.QUEUED] * 2
        report = fleet.tick(time=2.0)
        assert len(report.retired) == 2
        assert len(report.deployed) == 2
        assert fleet.check_invariants() == []

    def test_retire_unknown_raises(self, fleet_env):
        fleet = build_fleet(fleet_env)
        with pytest.raises(UnknownQueryError):
            fleet.retire("ghost")

    def test_retire_fleet_queued_returns_false(self, fleet_env):
        fleet = build_fleet(
            fleet_env, num_shards=1, budget=1,
            tenants=[repro.Tenant("t")],
        )
        _, _, workload, _ = fleet_env
        fleet.submit(renamed(workload.queries[0], "a"), tenant="t")
        queued = fleet.submit(renamed(workload.queries[1], "b"), tenant="t")
        assert queued.status is AdmissionStatus.QUEUED
        assert fleet.retire("b") is False
        assert fleet.router.owner("b") is None
        assert fleet.check_invariants() == []

    def test_fleet_metrics_present(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=2)
        _, _, workload, _ = fleet_env
        fleet.submit(workload.queries[0])
        fleet.tick()
        names = fleet.registry.names()
        for name in (
            "fleet_live_queries",
            "fleet_queue_depth",
            "fleet_submitted_total",
            "fleet_admitted_total",
            "fleet_rejected_total",
            "fleet_rebalances_total",
            "fleet_cross_shard_reuse_total",
            "fleet_federation_imports",
        ):
            assert name in names
        assert fleet.registry.get("fleet_live_queries").value == 1.0

    def test_shard_epochs_track_shared_models(self, fleet_env):
        """A shared rate-model bump invalidates every shard's cache."""
        fleet = build_fleet(fleet_env, num_shards=2)
        _, _, workload, rates = fleet_env
        for query in workload.queries[:4]:
            fleet.submit(query)
        doubled = {
            name: repro.StreamSpec(name, spec.source, spec.rate * 2.0)
            for name, spec in fleet.rates.streams.items()
        }
        fleet.rates.update_streams(doubled)
        fleet.tick()
        assert all(s.statistics_epoch == 1 for s in fleet.shards)
        # restore: fleet_env is module-scoped
        halved = {
            name: repro.StreamSpec(name, spec.source, spec.rate / 2.0)
            for name, spec in fleet.rates.streams.items()
        }
        fleet.rates.update_streams(halved)


class TestRebalance:
    def test_moves_live_query(self, fleet_env):
        _, _, workload, _ = fleet_env
        query = workload.queries[0]
        fleet = build_fleet(
            fleet_env, num_shards=2, policy=ByNamePolicy({}, default=0)
        )
        fleet.submit(query, lifetime=50.0)
        assert fleet.shard_of(query.name) == 0
        report = fleet.rebalance(query.name, 1)
        assert report.moved
        assert fleet.shard_of(query.name) == 1
        assert fleet.shards[1].is_live(query.name)
        assert not fleet.shards[0].is_live(query.name)
        assert fleet.rebalances_total == 1
        assert fleet.check_invariants() == []
        # the cutover was priced through the migration machinery
        assert report.cutover_completed >= fleet.clock
        assert report.cost_after > 0

    def test_same_shard_is_noop(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=2, policy=ByNamePolicy({}, 0))
        _, _, workload, _ = fleet_env
        fleet.submit(workload.queries[0])
        report = fleet.rebalance(workload.queries[0].name, 0)
        assert not report.moved
        assert "already" in report.reason

    def test_full_target_refused_without_losing_the_query(self, fleet_env):
        fleet = build_fleet(
            fleet_env, num_shards=2, budget=1, policy=ByNamePolicy({}, 0)
        )
        _, _, workload, _ = fleet_env
        fleet.submit(renamed(workload.queries[0], "a"))
        # fill shard 1
        fleet.router.bind("filler", 1)
        fleet.shards[1].submit(renamed(workload.queries[1], "filler"))
        report = fleet.rebalance("a", 1)
        assert not report.moved
        assert "budget" in report.reason
        assert fleet.shards[0].is_live("a")
        assert fleet.check_invariants() == []

    def test_unknown_query_raises(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=2)
        with pytest.raises(UnknownQueryError):
            fleet.rebalance("ghost", 1)

    def test_bad_shard_raises(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=2)
        _, _, workload, _ = fleet_env
        fleet.submit(workload.queries[0])
        with pytest.raises(repro.ReproError):
            fleet.rebalance(workload.queries[0].name, 7)

    def test_rebalance_preserves_total_cost_reporting(self, fleet_env):
        fleet = build_fleet(fleet_env, num_shards=2, policy=ByNamePolicy({}, 0))
        _, _, workload, _ = fleet_env
        fleet.submit(workload.queries[0])
        before = fleet.total_cost()
        report = fleet.rebalance(workload.queries[0].name, 1)
        assert report.moved
        assert report.cost_before == before
        # same planner, same shared models: the replanned deployment on
        # the target shard prices identically
        assert fleet.total_cost() == pytest.approx(before)
