"""Tenants: quotas, backlog bounds, weighted-fair admission."""

import pytest

import repro
from repro.errors import AdmissionError
from repro.fleet import Tenant, TenantDirectory, WeightedFairScheduler

from tests.fleet.conftest import build_fleet, renamed


class TestTenantRecords:
    def test_validation(self):
        with pytest.raises(AdmissionError):
            Tenant("", weight=1.0)
        with pytest.raises(AdmissionError):
            Tenant("t", weight=0.0)
        with pytest.raises(AdmissionError):
            Tenant("t", quota=0)
        with pytest.raises(AdmissionError):
            Tenant("t", max_queue=-1)

    def test_directory_rejects_duplicates(self):
        directory = TenantDirectory([Tenant("a")])
        with pytest.raises(AdmissionError):
            directory.register(Tenant("a"))
        assert directory.names() == ["a"]
        assert "a" in directory and "b" not in directory


class TestWeightedFairScheduler:
    def test_drain_ratio_matches_weights(self):
        directory = TenantDirectory([Tenant("gold", 3.0), Tenant("bronze", 1.0)])
        scheduler = WeightedFairScheduler(directory)
        for i in range(100):
            scheduler.enqueue("gold", f"g{i}")
            scheduler.enqueue("bronze", f"b{i}")
        picks = [scheduler.pick()[0] for _ in range(40)]
        assert picks.count("gold") == 30
        assert picks.count("bronze") == 10

    def test_idle_tenant_banks_no_credit(self):
        directory = TenantDirectory([Tenant("a", 1.0), Tenant("b", 1.0)])
        scheduler = WeightedFairScheduler(directory)
        for i in range(10):
            scheduler.enqueue("a", f"a{i}")
        for _ in range(10):
            assert scheduler.pick()[0] == "a"  # b idle: earns nothing
        for i in range(4):
            scheduler.enqueue("a", f"x{i}")
            scheduler.enqueue("b", f"y{i}")
        picks = [scheduler.pick()[0] for _ in range(8)]
        assert picks.count("a") == 4 and picks.count("b") == 4

    def test_ineligible_head_skipped_without_charge(self):
        directory = TenantDirectory([Tenant("a", 1.0), Tenant("b", 1.0)])
        scheduler = WeightedFairScheduler(directory)
        scheduler.enqueue("a", "blocked")
        scheduler.enqueue("b", "ok")
        picked = scheduler.pick(lambda name, item: item != "blocked")
        assert picked == ("b", "ok")
        assert scheduler.backlog("a") == 1

    def test_unknown_tenant_rejected(self):
        scheduler = WeightedFairScheduler(TenantDirectory([Tenant("a")]))
        with pytest.raises(AdmissionError):
            scheduler.enqueue("ghost", "x")


class TestFleetTenancy:
    def test_quota_enforced(self, fleet_env):
        fleet = build_fleet(
            fleet_env, num_shards=2, budget=8,
            tenants=[Tenant("capped", quota=2), Tenant("free")],
        )
        _, _, workload, _ = fleet_env
        queries = [renamed(workload.queries[i], f"c{i}") for i in range(3)]
        assert fleet.submit(queries[0], tenant="capped").admitted
        assert fleet.submit(queries[1], tenant="capped").admitted
        third = fleet.submit(queries[2], tenant="capped")
        assert third.rejected
        assert "quota" in third.decision.reason
        # another tenant is unaffected
        assert fleet.submit(renamed(workload.queries[3], "f0"), tenant="free").admitted
        # retiring frees quota
        fleet.retire(queries[0].name)
        assert fleet.submit(queries[2], tenant="capped").admitted

    def test_unknown_tenant_rejected(self, fleet_env):
        fleet = build_fleet(fleet_env, tenants=[Tenant("a"), Tenant("b")])
        _, _, workload, _ = fleet_env
        decision = fleet.submit(workload.queries[0], tenant="ghost")
        assert decision.rejected
        assert "unknown tenant" in decision.decision.reason
        decision = fleet.submit(workload.queries[0])  # ambiguous: no default
        assert decision.rejected

    def test_single_tenant_is_implicit_default(self, fleet_env):
        fleet = build_fleet(fleet_env, tenants=[Tenant("only")])
        _, _, workload, _ = fleet_env
        decision = fleet.submit(workload.queries[0])
        assert decision.admitted
        assert decision.tenant == "only"

    def test_tenant_backlog_bound_rejects(self, fleet_env):
        fleet = build_fleet(
            fleet_env, num_shards=1, budget=1,
            tenants=[Tenant("t", max_queue=1)],
        )
        _, _, workload, _ = fleet_env
        assert fleet.submit(renamed(workload.queries[0], "a"), tenant="t").admitted
        queued = fleet.submit(renamed(workload.queries[1], "b"), tenant="t")
        assert queued.status is repro.AdmissionStatus.QUEUED
        overflow = fleet.submit(renamed(workload.queries[2], "c"), tenant="t")
        assert overflow.rejected
        assert "backlog full" in overflow.decision.reason

    def test_overload_admit_rate_proportional_to_weights(self, fleet_env):
        """Acceptance: under 2x overload, admits follow the 3:1 weights."""
        fleet = build_fleet(
            fleet_env, num_shards=2, budget=2,
            tenants=[Tenant("gold", weight=3.0), Tenant("bronze", weight=1.0)],
        )
        _, _, workload, _ = fleet_env
        admitted_at_warmup = None
        n = 0
        for t in range(1, 61):
            fleet.tick(float(t))
            if t == 10:
                admitted_at_warmup = {
                    name: fleet.tenant_summary()[name]["admitted"]
                    for name in ("gold", "bronze")
                }
            # fleet capacity is 4 concurrent with lifetime 1 -> ~4
            # admissions/tick; 8 arrivals/tick = sustained 2x overload
            for k in range(4):
                for tenant in ("gold", "bronze"):
                    base = workload.queries[n % len(workload.queries)]
                    fleet.submit(
                        renamed(base, f"{tenant}-{n}-{k}"),
                        lifetime=1.0, tenant=tenant,
                    )
                n += 1
        summary = fleet.tenant_summary()
        gold = summary["gold"]["admitted"] - admitted_at_warmup["gold"]
        bronze = summary["bronze"]["admitted"] - admitted_at_warmup["bronze"]
        assert gold > bronze
        ratio = gold / bronze
        expected = 3.0  # weight ratio
        assert expected * 0.75 <= ratio <= expected * 1.25
        assert fleet.check_invariants() == []

    def test_tenant_metrics_exposed(self, fleet_env):
        fleet = build_fleet(fleet_env, tenants=[Tenant("gold", 2.0)])
        _, _, workload, _ = fleet_env
        fleet.submit(workload.queries[0], tenant="gold")
        names = fleet.registry.names()
        for name in (
            "tenant_submitted_total_gold",
            "tenant_admitted_total_gold",
            "tenant_rejected_total_gold",
            "tenant_live_gold",
        ):
            assert name in names
        assert fleet.registry.get("tenant_live_gold").value == 1.0
