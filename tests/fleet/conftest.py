"""Shared builders for the fleet control-plane tests."""

import pytest

import repro


@pytest.fixture(scope="module")
def fleet_env():
    """Deterministic (network, hierarchy, workload, rates) quadruple."""
    net = repro.transit_stub_by_size(32, seed=7)
    hierarchy = repro.build_hierarchy(net, max_cs=4, seed=0)
    workload = repro.generate_workload(
        net,
        repro.WorkloadParams(num_streams=6, num_queries=10, joins_per_query=(1, 3)),
        seed=8,
    )
    return net, hierarchy, workload, workload.rate_model()


class ByNamePolicy:
    """Test policy pinning queries to shards by an explicit map."""

    name = "byname"

    def __init__(self, mapping, default=0):
        self.mapping = mapping
        self.default = default

    def assign(self, query, num_shards, loads):
        return self.mapping.get(query.name, self.default)


def build_fleet(env, num_shards=2, **kwargs):
    net, hierarchy, workload, rates = env
    kwargs.setdefault("policy", "hash")
    return repro.FleetController(num_shards, net, rates, hierarchy, **kwargs)


def renamed(query, name, sink=None):
    """A content-identical query under a new name (optionally new sink)."""
    return repro.Query(
        name,
        sources=query.sources,
        sink=query.sink if sink is None else sink,
        predicates=query.predicates,
        filters=query.filters,
        window=query.window,
    )
